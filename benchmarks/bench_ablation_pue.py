"""Ablation — PUE-aware energy accounting (paper §II-A extension hook).

The paper proposes extending its energy model with a power-usage-
effectiveness multiplier to cover cooling/peripheral energy.  This bench makes
the §VII *near/cheap* site (datacenter2) the PUE-inefficient one (1.8 vs
1.15), so a PUE-blind optimizer keeps over-using it, and compares against
PUE-aware optimization over the whole 7-hour window.  Expected shape:
accounting for PUE shifts load toward the efficient site and recovers
profit in every hour where the sites compete.
"""

import dataclasses


from repro.core.objective import evaluate_plan
from repro.core.optimizer import (OptimizerConfig,
                                  ProfitAwareOptimizer)
from repro.experiments.section7 import section7_experiment

PUES = (1.15, 1.8)  # datacenter1 efficient, datacenter2 legacy


def _run():
    exp = section7_experiment()
    topo = exp.topology.with_datacenters([
        dataclasses.replace(dc, pue=pue)
        for dc, pue in zip(exp.topology.datacenters, PUES)
    ])
    hours = range(exp.trace.num_slots)
    out = {"pue-blind": [], "pue-aware": []}
    for label, aware in (("pue-blind", False), ("pue-aware", True)):
        for t in hours:
            arrivals = exp.trace.arrivals_at(t)
            prices = exp.market.prices_at(t)
            plan = ProfitAwareOptimizer(topo, config=OptimizerConfig(apply_pue=aware)).plan_slot(
                arrivals, prices, slot_duration=1.0
            )
            # True costs always include PUE (the cooling power is real).
            outcome = evaluate_plan(plan, arrivals, prices,
                                    slot_duration=1.0, apply_pue=True)
            out[label].append((outcome, plan.dc_loads().sum(axis=0)))
    return out


def test_ablation_pue(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = []
    totals = {}
    for label, slots in results.items():
        profit = sum(o.net_profit for o, _ in slots)
        energy = sum(o.energy_cost for o, _ in slots)
        dc2_share = (sum(loads[1] for _, loads in slots)
                     / sum(loads.sum() for _, loads in slots))
        totals[label] = (profit, energy, dc2_share)
        lines.append(
            f"{label:>9s}: net ${profit:>12,.0f}  energy ${energy:>9,.0f}  "
            f"legacy-site share {dc2_share * 100:5.1f}%"
        )
    report(
        f"Ablation: PUE-aware optimization (PUEs {PUES}, section VII window)",
        lines,
    )
    blind, aware = totals["pue-blind"], totals["pue-aware"]
    # Knowing the true (PUE-inflated) prices can only help.
    assert aware[0] > blind[0]
    # The aware plan spends less on energy overall...
    assert aware[1] < blind[1]
    # ...by steering load away from the legacy-PUE site.
    assert aware[2] < blind[2]
