"""Fig. 10 — §VII workload effect (relatively low / high workload).

Paper shapes: with capacity raised so both approaches complete all
requests (low), Optimized still nets at least as much; with the load
doubled so neither completes everything (high), Optimized's advantage
persists — "our optimization is superior regardless of workloads".
"""

import numpy as np
import pytest

from conftest import series_line
from repro.experiments.figures import fig10_workload_effect
from repro.experiments.section7 import section7_experiment


@pytest.mark.parametrize("regime", ["low", "high"])
def test_fig10_workload_effect(benchmark, report, regime):
    series = benchmark.pedantic(
        fig10_workload_effect, args=(regime,), rounds=1, iterations=1
    )
    opt, bal = series["optimized"], series["balanced"]
    report(
        f"Fig. 10 ({regime} workload): hourly net profit ($)",
        [
            series_line("optimized", opt, fmt="{:>11.0f}"),
            series_line("balanced", bal, fmt="{:>11.0f}"),
            f"totals: optimized ${opt.sum():,.0f} vs balanced "
            f"${bal.sum():,.0f}",
        ],
    )
    assert np.all(opt >= bal - 1e-6)
    assert opt.sum() >= bal.sum()
    if regime == "low":
        # Both approaches complete everything at doubled capacity.
        exp = section7_experiment(capacity_scale=2.0)
        results = exp.run_comparison()
        for result in results.values():
            assert np.allclose(result.completion_fractions, 1.0, atol=1e-3)
    else:
        # Neither approach completes everything at doubled load.
        exp = section7_experiment(load_scale=2.0)
        results = exp.run_comparison()
        for result in results.values():
            assert result.completion_fractions.min() < 1.0
