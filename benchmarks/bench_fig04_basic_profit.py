"""Fig. 4 — §V net profit, Optimized vs Balanced, low and high load.

Paper shapes: Optimized >= Balanced in both regimes; under the high
arrival set neither approach completes everything and Optimized
processes ~16% more requests, covering its higher cost with more profit.
"""

import pytest

from repro.experiments.figures import fig4_basic_profit


@pytest.mark.parametrize("regime", ["low", "high"])
def test_fig04_net_profit(benchmark, report, regime):
    data = benchmark.pedantic(
        fig4_basic_profit, args=(regime,), rounds=1, iterations=1
    )
    opt, bal = data["optimized"], data["balanced"]
    report(
        f"Fig. 4 ({regime} arrival rates)",
        [
            f"optimized: net profit ${opt['net_profit']:>14,.0f}  "
            f"served {opt['requests_processed']:>12,.0f}  "
            f"cost ${opt['total_cost']:>12,.0f}",
            f"balanced : net profit ${bal['net_profit']:>14,.0f}  "
            f"served {bal['requests_processed']:>12,.0f}  "
            f"cost ${bal['total_cost']:>12,.0f}",
            f"profit advantage: "
            f"{(opt['net_profit'] / bal['net_profit'] - 1) * 100:.1f}%",
            f"extra requests processed: "
            f"{(opt['requests_processed'] / bal['requests_processed'] - 1) * 100:.1f}%",
        ],
    )
    assert opt["net_profit"] >= bal["net_profit"] - 1e-6
    if regime == "high":
        # The paper's ~16% more-requests observation (shape: 5-40%).
        extra = opt["requests_processed"] / bal["requests_processed"] - 1
        assert 0.05 < extra < 0.40
