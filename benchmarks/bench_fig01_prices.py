"""Fig. 1 — electricity prices at three locations over a day.

Regenerates the paper's input price curves (Houston / Mountain View /
Atlanta), verifying the multi-electricity-market premise: the cheapest
location changes during the day and the afternoon shows the largest
spread.
"""

import numpy as np

from conftest import series_line
from repro.experiments.figures import fig1_price_series
from repro.market.market import MultiElectricityMarket
from repro.market.prices import paper_locations


def test_fig01_price_curves(benchmark, report):
    series = benchmark(fig1_price_series)
    market = MultiElectricityMarket(list(paper_locations().values()))
    cheapest = [market.cheapest_location(t) for t in range(24)]
    spreads = [market.spread_at(t) for t in range(24)]
    matrix = market.as_matrix()
    volatility = np.abs(np.diff(matrix, axis=1)).mean(axis=0)
    report(
        "Fig. 1: hourly electricity prices ($/kWh)",
        [series_line(name, prices, fmt="{:>7.4f}")
         for name, prices in series.items()]
        + [series_line("cheapest location idx", cheapest, fmt="{:>7.0f}"),
           series_line("price spread", spreads, fmt="{:>7.4f}")],
    )
    assert len(series) == 3
    # Paper premise: no single location is cheapest all day.
    assert len(set(cheapest)) >= 2
    # The 14:00-19:00 window is "representative in terms of large price
    # vibration" (the paper's reason for choosing it in §VII): hour-to-
    # hour volatility there exceeds the overnight hours'.
    assert volatility[13:19].mean() > volatility[0:6].mean()
