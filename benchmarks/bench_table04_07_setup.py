"""Tables IV-VII — §VI experiment setup.

Regenerates the World-Cup study's parameter tables (capacities,
distances, processing energies, TUFs/transfer costs) and validates the
structural claims the paper's Fig. 7 discussion relies on.
"""

import numpy as np

from repro.experiments.section6 import (
    TRANSFER_COSTS,
    TUF_DEADLINES_HOURS,
    TUF_VALUES,
    section6_topology,
)
from repro.utils.tables import render_table


def _build_tables():
    topo = section6_topology()
    t4 = render_table(
        ["capacity (#/hour)", *[dc.name for dc in topo.datacenters]],
        [[f"request{k+1}", *topo.service_rates[k].tolist()] for k in range(3)],
        title="Table IV: processing capacities",
    )
    t5 = render_table(
        ["distance (miles)", *[dc.name for dc in topo.datacenters]],
        [[fe.name, *topo.distances[s].tolist()]
         for s, fe in enumerate(topo.frontends)],
        title="Table V: front-end to data-center distances",
    )
    t6 = render_table(
        ["processing cost (kWh)", *[dc.name for dc in topo.datacenters]],
        [[f"request{k+1}", *topo.energy_per_request[k].tolist()]
         for k in range(3)],
        title="Table VI: per-request processing energy",
    )
    t7 = render_table(
        ["TUF", "max value ($)", "deadline (hour)", "transfer ($/mile)"],
        [[f"request{k+1}", TUF_VALUES[k], TUF_DEADLINES_HOURS[k],
          TRANSFER_COSTS[k]] for k in range(3)],
        title="Table VII: TUFs and transfer costs",
    )
    return topo, "\n\n".join([t4, t5, t6, t7])


def test_table04_07_setup(benchmark, report):
    topo, text = benchmark(_build_tables)
    report("Tables IV-VII (section VI setup)", text.splitlines())
    mu = topo.service_rates
    # Paper §VI-B2: DC1 == DC2 for request1; DC3 highest.
    assert mu[0, 0] == mu[0, 1]
    assert mu[0, 2] == mu[0].max()
    # Paper §VI-B2: DC2 farthest from all four front-ends.
    assert np.all(topo.distances[:, 1] == topo.distances.max(axis=1))
    # Transfer costs follow the paper's 0.003/0.005/0.007 $/mile.
    assert TRANSFER_COSTS.tolist() == [0.003, 0.005, 0.007]
