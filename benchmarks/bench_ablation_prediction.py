"""Ablation — arrival forecasting (paper §III's prediction hook).

The paper plans on known average rates and defers forecasting to
"existing prediction methods (e.g. the Kalman Filter)".  This bench runs
the §VI day with oracle rates, a Kalman filter, and an EWMA forecaster.
Expected shape: forecast-driven profit is below the oracle (prediction
error costs money) but remains well above zero, and the smarter filter
does no worse than naive EWMA on this diurnal workload.
"""

from repro.core.optimizer import ProfitAwareOptimizer
from repro.experiments.section6 import section6_experiment
from repro.sim.slotted import run_simulation
from repro.workload.prediction import EWMAPredictor, KalmanFilterPredictor


def _run():
    exp = section6_experiment()
    mean_rate = float(exp.trace.rates.mean())
    factories = {
        "oracle": None,
        "kalman": lambda: KalmanFilterPredictor(
            process_var=mean_rate**2 * 0.25,
            observation_var=mean_rate**2 * 0.25,
            initial_estimate=mean_rate,
            initial_var=mean_rate**2,
        ),
        "ewma": lambda: EWMAPredictor(alpha=0.7, initial=mean_rate),
    }
    out = {}
    for label, factory in factories.items():
        result = run_simulation(
            ProfitAwareOptimizer(exp.topology), exp.trace, exp.market,
            predictor_factory=factory,
        )
        out[label] = result.total_net_profit
    return out


def test_ablation_prediction(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    oracle = results["oracle"]
    report(
        "Ablation: arrival forecasting (section VI day)",
        [f"{name:>7s}: ${profit:>13,.0f}  ({profit / oracle * 100:5.1f}% "
         f"of oracle)" for name, profit in results.items()],
    )
    assert results["kalman"] <= oracle + 1e-6
    assert results["ewma"] <= oracle + 1e-6
    # Forecasting is imperfect but far from catastrophic on a diurnal day.
    assert results["kalman"] > 0.5 * oracle
    assert results["ewma"] > 0.5 * oracle
