"""Fig. 11 — computation time vs number of servers per data center.

Paper shape: the slot-solve time of the two-level formulation grows
super-linearly ("the computation time increased exponentially") with the
server count.  We measure the paper-faithful *per-server* MILP
formulation solved by the library's own branch-and-bound — its binary
count grows with the number of servers, and the measured wall time grows
exponentially (16 ms at 1 server/DC to over a minute at 6; the bench
stops at 5 to stay fast).  The aggregated fast path is flat by
construction and is reported by the aggregation ablation instead.
"""

import numpy as np

from repro.experiments.figures import fig11_computation_time

COUNTS = (1, 2, 3, 4, 5)


def test_fig11_computation_time(benchmark, report):
    times = benchmark.pedantic(
        fig11_computation_time,
        kwargs={"server_counts": COUNTS, "repeats": 1, "milp_method": "bb"},
        rounds=1, iterations=1,
    )
    report(
        "Fig. 11: slot-solve wall time vs servers per data center "
        "(per-server MILP, own branch-and-bound)",
        [f"servers/DC = {m}: {times[m] * 1e3:10.2f} ms" for m in COUNTS],
    )
    values = np.array([times[m] for m in COUNTS])
    assert np.all(values > 0)
    # Super-linear growth across the sweep...
    assert values[-1] > 5.0 * values[0]
    # ...and accelerating: the last step's increase dwarfs the first's.
    assert (values[-1] - values[-2]) > (values[1] - values[0])
