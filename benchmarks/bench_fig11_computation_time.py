"""Fig. 11 — computation time vs number of servers per data center.

Paper shape: the slot-solve time of the two-level formulation grows
super-linearly ("the computation time increased exponentially") with the
server count.  We measure the paper-faithful *per-server* MILP
formulation solved by the library's own branch-and-bound — its binary
count grows with the number of servers, and the measured wall time grows
exponentially (16 ms at 1 server/DC to over a minute at 6; the bench
stops at 5 to stay fast).  The aggregated fast path is flat by
construction and is reported by the aggregation ablation instead.
"""

import numpy as np

from repro.experiments.figures import fig11_computation_time

COUNTS = (1, 2, 3, 4, 5)


def test_fig11_computation_time(timed, report):
    timing, times = timed(
        lambda: fig11_computation_time(
            server_counts=COUNTS, repeats=1, milp_method="bb"
        ),
        repeats=1, warmup=0,
    )
    report(
        "Fig. 11: slot-solve wall time vs servers per data center "
        "(per-server MILP, own branch-and-bound)",
        [f"servers/DC = {m}: {times[m] * 1e3:10.2f} ms" for m in COUNTS]
        + [f"sweep total: {timing.median_s:10.2f} s"],
    )
    values = np.array([times[m] for m in COUNTS])
    assert np.all(values > 0)
    # Super-linear growth across the sweep...
    assert values[-1] > 5.0 * values[0]
    # ...and accelerating: the last step's increase dwarfs the first's.
    assert (values[-1] - values[-2]) > (values[1] - values[0])
