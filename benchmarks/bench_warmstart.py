"""Warm vs cold slot-pipeline timing on the Fig. 11 setup.

The paper's Fig. 11 study re-solves the per-server slot problem for a
growing server count; its hourly controller re-solves a *structurally
identical* problem every slot.  This bench measures what the warm-start
layer buys on that pipeline: the §VII experiment at a fixed server
count, solved slot by slot cold (``warm_start=False``, every slot built
and solved from scratch) and warm (``warm_start=True``, cached
formulation skeleton + solver state chained across slots).

The measured configuration is the greedy level search over the
per-server LP with the library's own interior-point backend — the pair
that exercises both halves of the layer (formulation cache + iterate
re-centering).  Warm and cold must agree on every slot's objective;
the speedup is reported as the median across repeats.

Run directly for a JSON record::

    PYTHONPATH=src python benchmarks/bench_warmstart.py --quick
    PYTHONPATH=src python benchmarks/bench_warmstart.py --output out.json

or through pytest (``pytest benchmarks/bench_warmstart.py``), which
also asserts the acceptance threshold.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

import numpy as np

from repro.bench.runner import summarize_times
from repro.core.optimizer import OptimizerConfig, ProfitAwareOptimizer
from repro.experiments.section7 import section7_experiment
from repro.obs.collectors import InMemoryCollector

SPEEDUP_TARGET = 1.5


def _run_pipeline(optimizer, exp, num_slots: int):
    """Solve ``num_slots`` slots in trace order, instrumented.

    Per-slot wall times and objectives are read back from the
    :class:`~repro.obs.trace.SlotTrace` records the optimizer emits —
    the bench consumes the telemetry layer it shares with ``repro
    trace`` rather than keeping its own stopwatch.  The collector is
    returned too, for warm-start outcome accounting.
    """
    collector = InMemoryCollector()
    optimizer.collector = collector
    for t in range(num_slots):
        arrivals = exp.trace.arrivals_at(t)
        prices = exp.market.prices_at(t)
        optimizer.plan_slot(arrivals, prices, slot_duration=1.0)
    traces = collector.slot_traces
    times = np.array([trace.total_time for trace in traces])
    objectives = np.array([trace.objective for trace in traces])
    return times, objectives, collector


def measure_warmstart(
    servers_per_dc: int = 3,
    num_slots: int | None = None,
    repeats: int = 3,
    seed: int = 2010,
) -> Dict:
    """Measure cold vs warm per-slot time; returns a JSON-ready record."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    exp = section7_experiment(seed=seed)
    topology = exp.topology.with_servers_per_datacenter(int(servers_per_dc))
    if num_slots is None:
        num_slots = exp.trace.num_slots
    num_slots = min(int(num_slots), exp.trace.num_slots)
    base = OptimizerConfig(
        level_method="greedy", lp_method="ipm", formulation="per_server"
    )

    speedups: List[float] = []
    cold_means: List[float] = []
    warm_means: List[float] = []
    cold_slots = warm_slots = None
    warm_outcomes: Dict[str, int] = {}
    max_obj_diff = 0.0
    for _ in range(repeats):
        # Fresh optimizers each repeat: cold must not keep caches, warm
        # must pay its first-slot structure build inside the measurement.
        cold_t, cold_obj, _ = _run_pipeline(
            ProfitAwareOptimizer(topology, config=base.replace(warm_start=False)),
            exp, num_slots,
        )
        warm_t, warm_obj, warm_collector = _run_pipeline(
            ProfitAwareOptimizer(topology, config=base.replace(warm_start=True)),
            exp, num_slots,
        )
        rel = np.max(np.abs(warm_obj - cold_obj)
                     / (1.0 + np.abs(cold_obj)))
        max_obj_diff = max(max_obj_diff, float(rel))
        speedups.append(float(cold_t.mean() / warm_t.mean()))
        cold_means.append(float(cold_t.mean()))
        warm_means.append(float(warm_t.mean()))
        cold_slots, warm_slots = cold_t, warm_t
        warm_outcomes = warm_collector.warm_start_counts()

    # Aggregate across repeats through the shared repro.bench runner so
    # this bench, Fig. 11, and the `repro bench` scenarios all report the
    # same notion of "median" (see tests/test_bench.py, which pins it).
    return {
        "benchmark": "warmstart",
        "setup": {
            "experiment": "section7 (Fig. 11 per-server formulation)",
            "servers_per_dc": int(servers_per_dc),
            "num_slots": int(num_slots),
            "repeats": int(repeats),
            "seed": int(seed),
            "level_method": base.level_method,
            "lp_method": base.lp_method,
            "formulation": base.formulation,
        },
        "warm_outcomes": warm_outcomes,
        "cold_mean_s": summarize_times(cold_means)["median_s"],
        "warm_mean_s": summarize_times(warm_means)["median_s"],
        "cold_per_slot_s": [float(x) for x in cold_slots],
        "warm_per_slot_s": [float(x) for x in warm_slots],
        "speedup_per_repeat": speedups,
        "speedup": summarize_times(speedups)["median_s"],
        "max_objective_rel_diff": max_obj_diff,
        "speedup_target": SPEEDUP_TARGET,
    }


def test_warmstart_speedup(benchmark, report):
    record = benchmark.pedantic(
        measure_warmstart, kwargs={}, rounds=1, iterations=1
    )
    report(
        "Warm-start: cold vs warm per-slot time "
        "(Fig. 11 setup, per-server formulation)",
        [
            f"cold mean: {record['cold_mean_s'] * 1e3:8.2f} ms/slot",
            f"warm mean: {record['warm_mean_s'] * 1e3:8.2f} ms/slot",
            f"speedup:   {record['speedup']:8.2f}x "
            f"(per repeat: "
            f"{', '.join(f'{s:.2f}' for s in record['speedup_per_repeat'])})",
            f"max objective rel diff: "
            f"{record['max_objective_rel_diff']:.2e}",
        ],
    )
    # Warm-starting must not change any slot's planned profit...
    assert record["max_objective_rel_diff"] <= 1e-6
    # ...and must clear the acceptance threshold.
    assert record["speedup"] >= SPEEDUP_TARGET


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Warm vs cold slot-pipeline timing (Fig. 11 setup)."
    )
    parser.add_argument("--quick", action="store_true",
                        help="fewer slots and repeats (CI smoke run)")
    parser.add_argument("--servers-per-dc", type=int, default=3)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--output", type=str, default=None,
                        help="write the JSON record here instead of stdout")
    args = parser.parse_args(argv)
    repeats = (args.repeats if args.repeats is not None
               else (2 if args.quick else 3))
    if repeats < 1:
        parser.error("--repeats must be >= 1")
    if args.servers_per_dc < 1:
        parser.error("--servers-per-dc must be >= 1")

    # Quick mode trims repeats, not slots: warm-starting needs the slot
    # sequence to amortize, and the full §VII trace is only 7 slots.
    record = measure_warmstart(
        servers_per_dc=args.servers_per_dc,
        repeats=repeats,
    )
    payload = json.dumps(record, indent=2)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(payload + "\n")
    else:
        print(payload)
    ok = (record["max_objective_rel_diff"] <= 1e-6
          and record["speedup"] >= SPEEDUP_TARGET)
    if not ok:
        print(f"FAIL: speedup {record['speedup']:.2f}x below target "
              f"{SPEEDUP_TARGET}x or objectives diverged", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
