"""Fig. 5 — World-Cup-like request traces at four front-end servers.

Regenerates the §VI input workload: one day of hourly request rates per
front-end, with the diurnal swing and match-time bursts of the 1998
World Cup logs, plus the paper's time-shift fabrication of three
request types.
"""

import numpy as np

from conftest import series_line
from repro.experiments.figures import fig5_trace_series
from repro.experiments.section6 import section6_experiment


def test_fig05_request_traces(benchmark, report):
    series = benchmark(fig5_trace_series)
    report(
        "Fig. 5: request traces per front-end (class request1, #/hour)",
        [series_line(name, values, fmt="{:>8.0f}")
         for name, values in series.items()],
    )
    assert len(series) == 4
    for values in series.values():
        day, night = values[12:22].mean(), values[0:5].mean()
        assert day > 1.5 * night  # diurnal swing

    # Time-shift fabrication: class 1 is class 0 rolled by the shift.
    exp = section6_experiment()
    base = exp.trace.class_series(0, 0)
    shifted = exp.trace.class_series(1, 0)
    assert np.allclose(np.roll(base, 2), shifted)
