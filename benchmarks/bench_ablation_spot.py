"""Ablation — price-spike stress test (deregulated spot markets).

The paper's premise is exploiting price differences across locations;
its Fig.-1 profiles vary gently.  Real deregulated markets also see
scarcity events — ERCOT's price cap of $9,000/MWh is ~400x the baseload
price.  This bench overlays independent Markov scarcity spikes (400x for
a few hours at a time) on the §VII window and compares Optimized vs
Balanced on calm and spiky markets.
Expected shape: both lose profit to spikes, but the optimizer dodges
spiked locations and keeps a larger share of its calm-market profit
than the price-greedy-but-static Balanced keeps of its own.
"""


from repro.experiments.section7 import section7_experiment
from repro.market.spot import spot_market
from repro.sim.slotted import compare_dispatchers


def _run():
    exp = section7_experiment()
    spiky_market = spot_market(
        exp.market, spike_prob=0.3, persist_prob=0.3, magnitude=400.0, seed=11
    )
    out = {}
    for label, market in (("calm", exp.market), ("spiky", spiky_market)):
        out[label] = compare_dispatchers(
            [exp.optimizer(), exp.balanced()], exp.trace, market
        )
    return out


def test_ablation_spot_prices(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = []
    for label, comparison in results.items():
        opt = comparison["optimized"].total_net_profit
        bal = comparison["balanced"].total_net_profit
        lines.append(
            f"{label:>6s}: optimized ${opt:>13,.0f}  "
            f"balanced ${bal:>13,.0f}  (gap ${opt - bal:,.0f})"
        )
    report("Ablation: spot-market price spikes (section VII window)", lines)

    calm, spiky = results["calm"], results["spiky"]
    # The optimizer stays profitable and ahead under spikes.
    assert spiky["optimized"].total_net_profit > 0
    assert (spiky["optimized"].total_net_profit
            > spiky["balanced"].total_net_profit)
    # Spikes hurt the optimizer proportionally no more than Balanced.
    opt_retention = (spiky["optimized"].total_net_profit
                     / calm["optimized"].total_net_profit)
    bal_retention = (spiky["balanced"].total_net_profit
                     / calm["balanced"].total_net_profit)
    assert opt_retention >= bal_retention - 0.02
