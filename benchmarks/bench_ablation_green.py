"""Ablation — green-energy extension (DESIGN.md §5 extensions).

Equips the §VII data centers with renewables (wind at Houston, solar at
Mountain View) and reruns the study on the effective-price market.
Expected shape: energy dollars drop substantially, load shifts toward
the renewable-rich location in its high-coverage hours, and net profit
weakly improves (prices only got cheaper).
"""

import numpy as np
import pytest

from repro.core.optimizer import ProfitAwareOptimizer
from repro.experiments.section7 import PRICE_WINDOW, section7_experiment
from repro.market.green import (
    GreenEnergyProfile,
    apply_green_energy,
    brown_energy_fraction,
    solar_profile,
    wind_profile,
)
from repro.sim.slotted import run_simulation


def _window(profile: GreenEnergyProfile) -> GreenEnergyProfile:
    idx = np.arange(*PRICE_WINDOW) % len(profile)
    return GreenEnergyProfile(profile.name, profile.availability[idx])


def _run():
    exp = section7_experiment()
    profiles = [
        _window(wind_profile(mean_coverage=0.35, seed=42)),
        _window(solar_profile(peak_coverage=0.7)),
    ]
    green_market = apply_green_energy(exp.market, profiles)
    out = {}
    for label, market in (("brown", exp.market), ("green", green_market)):
        result = run_simulation(
            ProfitAwareOptimizer(exp.topology), exp.trace, market
        )
        slot = exp.trace.slot_duration
        energy = np.stack([
            (r.outcome.dc_loads * exp.topology.energy_per_request).sum(axis=0)
            * slot
            for r in result.records
        ], axis=1)
        frac = brown_energy_fraction(
            list(profiles) if label == "green" else [None, None], energy
        )
        out[label] = (result, frac)
    return out


def test_ablation_green_energy(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = []
    for label, (result, frac) in results.items():
        lines.append(
            f"{label:>6s}: profit ${result.total_net_profit:>13,.0f}  "
            f"cost ${result.total_cost:>9,.0f}  brown {frac * 100:5.1f}%"
        )
    report("Ablation: green-energy extension (section VII window)", lines)
    brown, brown_frac = results["brown"]
    green, green_frac = results["green"]
    # Renewables only lower effective prices: profit weakly improves.
    assert green.total_net_profit >= brown.total_net_profit - 1e-6
    # Costs drop noticeably and the grid draw falls.
    assert green.total_cost < 0.95 * brown.total_cost
    assert green_frac < 0.8
    assert brown_frac == pytest.approx(1.0)
