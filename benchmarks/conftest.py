"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures: the
``benchmark`` fixture measures the computation, and the bench prints the
same rows/series the paper reports (run with ``-s`` to see them; the
printed blocks are also what EXPERIMENTS.md records).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.runner import time_callable


@pytest.fixture
def timed():
    """Time a callable through the shared :mod:`repro.bench` runner.

    Yields :func:`repro.bench.runner.time_callable` so every bench that
    keeps its own stopwatch measures and aggregates (warmup, repeats,
    median) exactly like the ``repro bench`` scenarios — one timing code
    path instead of per-bench copies that drift.
    """
    return time_callable


@pytest.fixture
def report():
    """Print a titled block of series/rows, flush-visible under -s."""

    def _report(title: str, lines) -> None:
        print()
        print(f"=== {title} ===")
        for line in lines:
            print(line)

    return _report


def series_line(name: str, values, fmt: str = "{:>12.1f}") -> str:
    """Format one labelled numeric series on a single line."""
    body = " ".join(fmt.format(float(v)) for v in np.asarray(values).ravel())
    return f"{name:>28s}: {body}"
