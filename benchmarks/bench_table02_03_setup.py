"""Tables II-III — §V experiment setup.

Regenerates (and prints) the basic-characteristics study's parameter
tables: the two arrival-rate sets, per-data-center service rates,
per-request energies, and slot prices, and validates the structural
facts the study relies on.
"""

import numpy as np

from repro.experiments.section5 import (
    HIGH_ARRIVALS,
    LOW_ARRIVALS,
    PRICES,
    section5_topology,
)
from repro.utils.tables import render_table


def _build_tables():
    topo = section5_topology()
    t2a = render_table(
        ["front-end", "request1 (#/s)", "request2 (#/s)", "request3 (#/s)"],
        [[f"server{i+1}", *row] for i, row in enumerate(LOW_ARRIVALS)],
        title="Table II(a): low arrival rates",
    )
    t2b = render_table(
        ["front-end", "request1 (#/s)", "request2 (#/s)", "request3 (#/s)"],
        [[f"server{i+1}", *row] for i, row in enumerate(HIGH_ARRIVALS)],
        title="Table II(b): high arrival rates",
    )
    rows = []
    for l, dc in enumerate(topo.datacenters):
        rows.append([
            dc.name,
            "/".join(f"{r:g}" for r in dc.service_rates),
            "/".join(f"{e:g}" for e in dc.energy_per_request),
            f"{PRICES[l]:g}",
        ])
    t3 = render_table(
        ["data center", "mu1/mu2/mu3 (#/s)", "P1/P2/P3 (kWh)", "p ($/kWh)"],
        rows, title="Table III: data center parameters",
    )
    return topo, "\n\n".join([t2a, t2b, t3])


def test_table02_03_setup(benchmark, report):
    topo, text = benchmark(_build_tables)
    report("Tables II-III (section V setup)", text.splitlines())
    assert topo.num_servers == 18
    assert HIGH_ARRIVALS.sum() > 3 * LOW_ARRIVALS.sum()
    # Feasibility: every server can reserve all classes' minimum shares.
    from repro.core.formulation import feasibility_margin
    assert np.all(feasibility_margin(topo) > 0)
