"""Ablation — aggregated vs per-server formulation.

DESIGN.md's server-aggregation claim: because servers within a data
center are homogeneous, the aggregated formulation reaches the same
optimum as the paper-faithful per-server layout for fixed-level
problems, at a fraction of the size and time.  (For multi-level TUFs the
per-server layout may mix levels across servers and edge slightly
ahead.)  This bench quantifies both sides on §VI and §VII slots.
"""

import time

import pytest

from repro.core.objective import evaluate_plan
from repro.core.optimizer import (OptimizerConfig,
                                  ProfitAwareOptimizer)
from repro.experiments.section6 import section6_experiment
from repro.experiments.section7 import section7_experiment


def _measure(topology, arrivals, prices, formulation):
    optimizer = ProfitAwareOptimizer(topology, config=OptimizerConfig(formulation=formulation))
    start = time.perf_counter()
    plan = optimizer.plan_slot(arrivals, prices, slot_duration=1.0)
    elapsed = time.perf_counter() - start
    profit = evaluate_plan(plan, arrivals, prices).net_profit
    return profit, elapsed, optimizer.last_stats.num_variables


def _run():
    out = {}
    exp6 = section6_experiment()
    a6, p6 = exp6.trace.arrivals_at(14), exp6.market.prices_at(14)
    out["onelevel/aggregated"] = _measure(exp6.topology, a6, p6, "aggregated")
    out["onelevel/per_server"] = _measure(exp6.topology, a6, p6, "per_server")
    exp7 = section7_experiment()
    a7, p7 = exp7.trace.arrivals_at(2), exp7.market.prices_at(2)
    out["twolevel/aggregated"] = _measure(exp7.topology, a7, p7, "aggregated")
    out["twolevel/per_server"] = _measure(exp7.topology, a7, p7, "per_server")
    return out


def test_ablation_aggregation(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "Ablation: aggregated vs per-server formulation",
        [f"{name:>22s}: profit ${profit:>12,.0f}  "
         f"vars {nvars:>5d}  wall {elapsed * 1e3:8.2f} ms"
         for name, (profit, elapsed, nvars) in results.items()],
    )
    # One-level: formulations provably equivalent.
    assert results["onelevel/aggregated"][0] == pytest.approx(
        results["onelevel/per_server"][0], rel=1e-6
    )
    # Two-level: per-server may only improve (mixing levels per server).
    assert (results["twolevel/per_server"][0]
            >= results["twolevel/aggregated"][0] - 1e-6)
    # Aggregation shrinks the problem by the servers-per-DC factor.
    assert (results["onelevel/aggregated"][2]
            < results["onelevel/per_server"][2])
