"""Ablation — shadow prices of capacity and demand (DESIGN.md §5).

Dual values of the slot LP answer provisioning questions in dollars: how
much net profit would one more server add at each data center, and what
is one more offered request worth?  This bench prints the §VI values at
a peak hour and a quiet hour.  Expected shape: at peak, servers at the
capacity-bound data centers carry positive value; overnight, capacity is
worthless while every offered request still has (utility-sized) value.
"""

import numpy as np

from repro.core.formulation import SlotInputs
from repro.core.sensitivity import slot_sensitivity
from repro.experiments.section6 import section6_experiment

PEAK_HOUR = 17
QUIET_HOUR = 4


def _run():
    exp = section6_experiment()
    out = {}
    for label, hour in (("peak", PEAK_HOUR), ("quiet", QUIET_HOUR)):
        inputs = SlotInputs(
            exp.topology, exp.trace.arrivals_at(hour),
            exp.market.prices_at(hour), 1.0,
        )
        out[label] = slot_sensitivity(inputs)
    return exp, out


def test_ablation_shadow_prices(benchmark, report):
    exp, results = benchmark.pedantic(_run, rounds=1, iterations=1)
    dc_names = [dc.name for dc in exp.topology.datacenters]
    lines = []
    for label, sens in results.items():
        server_vals = ", ".join(
            f"{name}=${v:,.0f}" for name, v in zip(dc_names, sens.server_value)
        )
        demand = sens.demand_value.mean(axis=1)
        demand_vals = ", ".join(
            f"{rc.name}=${v:,.2f}"
            for rc, v in zip(exp.topology.request_classes, demand)
        )
        lines += [
            f"{label:>5s} hour: net profit ${sens.net_profit:,.0f}",
            f"      marginal server value/hour: {server_vals}",
            f"      marginal demand value/request: {demand_vals}",
        ]
    report("Ablation: shadow prices (section VI, peak vs quiet hour)", lines)

    peak, quiet = results["peak"], results["quiet"]
    # Peak: at least one data center's capacity is worth real money.
    assert peak.server_value.max() > 0
    # Quiet: capacity is free, demand still valuable.
    assert np.allclose(quiet.server_value, 0.0, atol=1e-6)
    assert np.all(quiet.demand_value > 0)
    # Demand value never exceeds the class's top utility.
    for k, rc in enumerate(exp.topology.request_classes):
        assert np.all(quiet.demand_value[k] <= rc.tuf.max_value + 1e-6)
