"""Fig. 8 — §VII hourly net profit with two-level TUFs.

Paper shapes: Optimized significantly outperforms Balanced in every
hour; the advantage is driven by completing more requests at better TUF
levels, and price volatility in the 14:00-19:00 window moves the slot
profits around.
"""

import numpy as np

from conftest import series_line
from repro.experiments.figures import fig8_profit_series


def test_fig08_hourly_net_profit(benchmark, report):
    series = benchmark.pedantic(fig8_profit_series, rounds=1, iterations=1)
    opt, bal = series["optimized"], series["balanced"]
    report(
        "Fig. 8: hourly net profit ($) with two-level TUFs",
        [
            series_line("optimized", opt, fmt="{:>11.0f}"),
            series_line("balanced", bal, fmt="{:>11.0f}"),
            f"totals: optimized ${opt.sum():,.0f}  balanced ${bal.sum():,.0f}"
            f"  (x{opt.sum() / bal.sum():.2f})",
        ],
    )
    assert opt.shape == (7,)
    # Optimized wins every hour, and clearly overall.
    assert np.all(opt >= bal - 1e-6)
    assert opt.sum() > 1.2 * bal.sum()
