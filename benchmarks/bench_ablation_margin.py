"""Ablation — the deadline-margin robustness knob (DESIGN.md §5).

Sweeps ``deadline_margin`` on a busy §VI hour and executes each plan in
the whole-cluster DES.  Expected shape: the analytic (planned) profit
decreases slowly as the margin tightens admission, while the *realized*
mean-delay profit first rises sharply (VMs move off the TUF cliff) and
then follows the analytic curve down — an interior margin wins.
"""

import numpy as np

from repro.core.objective import evaluate_plan
from repro.core.optimizer import (OptimizerConfig,
                                  ProfitAwareOptimizer)
from repro.des.cluster import simulate_plan
from repro.experiments.section6 import section6_experiment

HOUR = 15
MARGINS = (1.0, 0.95, 0.9, 0.85, 0.75)


def _run():
    exp = section6_experiment()
    arrivals = exp.trace.arrivals_at(HOUR)
    prices = exp.market.prices_at(HOUR)
    out = {}
    for margin in MARGINS:
        plan = ProfitAwareOptimizer(exp.topology, config=OptimizerConfig(deadline_margin=margin)).plan_slot(arrivals, prices, slot_duration=1.0)
        analytic = evaluate_plan(plan, arrivals, prices, 1.0).net_profit
        realized = simulate_plan(
            plan, prices, slot_duration=1.0, seed=21, warmup_fraction=0.05
        ).net_profit_mean_delay
        out[margin] = (analytic, realized)
    return out


def test_ablation_deadline_margin(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    report(
        "Ablation: deadline margin (planned vs DES-realized profit, "
        f"section VI hour {HOUR})",
        [f"margin {m:4.2f}: planned ${planned:>12,.0f}  "
         f"realized ${realized:>12,.0f}  "
         f"({realized / planned * 100:5.1f}% captured)"
         for m, (planned, realized) in results.items()],
    )
    planned = np.array([results[m][0] for m in MARGINS])
    realized = np.array([results[m][1] for m in MARGINS])
    # Planned profit is monotone non-increasing as the margin tightens.
    assert np.all(np.diff(planned) <= 1e-6)
    # The paper-exact margin (1.0) captures the smallest fraction of its
    # plan; some tighter margin realizes strictly more in absolute terms.
    capture = realized / planned
    assert capture[0] == capture.min()
    assert realized.max() > realized[0]
