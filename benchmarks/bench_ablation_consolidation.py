"""Ablation — right-sizing consolidation (DESIGN.md §5).

Runs the §VI day with and without the consolidation pass.  Expected
shape: identical net profit (the per-request energy model makes
consolidation profit-neutral) with substantially fewer powered-on
servers, especially in the light overnight hours.
"""

import numpy as np
import pytest

from repro.core.optimizer import (OptimizerConfig,
                                  ProfitAwareOptimizer)
from repro.experiments.section6 import section6_experiment
from repro.sim.metrics import powered_on_series
from repro.sim.slotted import run_simulation


def _run():
    exp = section6_experiment()
    out = {}
    for label, consolidate in (("spread", False), ("consolidated", True)):
        result = run_simulation(
            ProfitAwareOptimizer(exp.topology, config=OptimizerConfig(consolidate=consolidate)),
            exp.trace, exp.market,
        )
        out[label] = result
    return out


def test_ablation_consolidation(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    spread, packed = results["spread"], results["consolidated"]
    on_spread = powered_on_series(spread.records).sum(axis=1)
    on_packed = powered_on_series(packed.records).sum(axis=1)
    report(
        "Ablation: consolidation (section VI day)",
        [
            f"net profit: spread ${spread.total_net_profit:,.0f}  "
            f"consolidated ${packed.total_net_profit:,.0f}",
            f"powered-on servers (hourly mean): spread {on_spread.mean():.1f}"
            f"  consolidated {on_packed.mean():.1f} of 18",
            "hourly powered-on, spread      : "
            + " ".join(f"{v:2d}" for v in on_spread),
            "hourly powered-on, consolidated: "
            + " ".join(f"{v:2d}" for v in on_packed),
        ],
    )
    # Profit-neutral...
    assert packed.total_net_profit == pytest.approx(
        spread.total_net_profit, rel=1e-6
    )
    # ...with a materially smaller fleet on average.
    assert on_packed.mean() < on_spread.mean()
    assert np.all(on_packed <= on_spread)