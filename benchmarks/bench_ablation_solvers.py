"""Ablation — solver paths for the multi-level slot problem.

DESIGN.md calls out three interchangeable level-selection strategies
standing in for the paper's CPLEX/AIMMS: the exact MILP (own B&B and
HiGHS), the paper-literal big-M nonlinear series, and the greedy
coordinate-descent heuristic.  This bench compares their realized net
profit and wall time on the §VII slot problem.
"""

import time


from repro.core.objective import evaluate_plan
from repro.core.optimizer import OptimizerConfig, ProfitAwareOptimizer
from repro.experiments.section7 import section7_experiment

PATHS = [
    ("milp/highs", dict(level_method="milp", milp_method="highs")),
    ("milp/bb", dict(level_method="milp", milp_method="bb")),
    ("greedy", dict(level_method="greedy")),
    ("bigm", dict(level_method="bigm")),
]


def _run_all():
    exp = section7_experiment()
    arrivals = exp.trace.arrivals_at(2)
    prices = exp.market.prices_at(2)
    out = {}
    for name, kwargs in PATHS:
        optimizer = ProfitAwareOptimizer(exp.topology,
                                         config=OptimizerConfig(**kwargs))
        start = time.perf_counter()
        plan = optimizer.plan_slot(arrivals, prices, slot_duration=1.0)
        elapsed = time.perf_counter() - start
        profit = evaluate_plan(plan, arrivals, prices).net_profit
        out[name] = (profit, elapsed)
    return out


def test_ablation_solver_paths(benchmark, report):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    reference = results["milp/highs"][0]
    report(
        "Ablation: multi-level solver paths (one §VII slot)",
        [f"{name:>12s}: net profit ${profit:>12,.0f} "
         f"({profit / reference * 100:6.2f}% of exact)  "
         f"wall {elapsed * 1e3:8.2f} ms"
         for name, (profit, elapsed) in results.items()],
    )
    # Exact paths agree; heuristics land within documented gaps.
    assert results["milp/bb"][0] == pytest.approx(reference, rel=1e-6)
    assert results["greedy"][0] >= 0.9 * reference
    assert results["bigm"][0] >= 0.8 * reference


import pytest  # noqa: E402  (used in assertions above)
