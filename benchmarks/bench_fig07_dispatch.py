"""Fig. 7 — §VI Request1 dispatching to each data center.

Paper shapes: considering transfer costs and capacities, Datacenter1 and
Datacenter3 are better choices for Request1 than Datacenter2 (farthest,
equal capacity to DC1); DC2 still processes *some* requests but far
fewer than DC1/DC3 under Optimized.
"""

import numpy as np

from conftest import series_line
from repro.experiments.figures import fig7_request1_allocation


def test_fig07_request1_allocation(benchmark, report):
    data = benchmark.pedantic(
        fig7_request1_allocation, rounds=1, iterations=1
    )
    lines = []
    totals = {}
    for approach, per_dc in data.items():
        for dc_name, series in per_dc.items():
            lines.append(
                series_line(f"{approach}/{dc_name}", series, fmt="{:>9.0f}")
            )
            totals[(approach, dc_name)] = float(np.sum(series))
    lines.append(f"day totals: {totals}")
    report("Fig. 7: hourly Request1 load per data center (#/hour)", lines)

    opt = data["optimized"]
    opt_totals = {name: float(np.sum(s)) for name, s in opt.items()}
    # DC2 receives the least Request1 traffic under Optimized...
    assert opt_totals["datacenter2"] == min(opt_totals.values())
    # ...much smaller than both DC1 and DC3 (paper: "much smaller").
    assert opt_totals["datacenter2"] < 0.8 * opt_totals["datacenter1"]
    assert opt_totals["datacenter2"] < 0.8 * opt_totals["datacenter3"]
