"""Fig. 9 + §VII-B2 — request allocations, completions, and cost.

Paper numbers (shape targets): Optimized completes 100% of both request
types; Balanced completes ~99.45% of request1 and ~90.19% of request2;
Optimized spends ~7.74% more total cost yet achieves the higher net
profit.
"""

import numpy as np

from conftest import series_line
from repro.experiments.figures import fig9_allocations


def test_fig09_allocations_and_completion(benchmark, report):
    study = benchmark.pedantic(fig9_allocations, rounds=1, iterations=1)
    lines = []
    for approach, matrix in study.allocations.items():  # (T, K, L)
        for k in range(matrix.shape[1]):
            for l in range(matrix.shape[2]):
                lines.append(series_line(
                    f"{approach}/request{k+1}/dc{l+1}",
                    matrix[:, k, l], fmt="{:>9.0f}",
                ))
    lines += [
        f"completion optimized: {np.round(study.completion['optimized'], 4)}",
        f"completion balanced : {np.round(study.completion['balanced'], 4)}",
        f"total cost optimized ${study.total_cost['optimized']:,.0f} vs "
        f"balanced ${study.total_cost['balanced']:,.0f} "
        f"(ratio {study.cost_ratio:.3f}; paper: 1.0774)",
        f"net profit optimized ${study.net_profit['optimized']:,.0f} vs "
        f"balanced ${study.net_profit['balanced']:,.0f}",
    ]
    report("Fig. 9: §VII allocations and completions", lines)

    # Optimized completes everything; Balanced drops some of each type.
    assert np.allclose(study.completion["optimized"], 1.0, atol=1e-6)
    assert np.all(study.completion["balanced"] < 1.0)
    assert np.all(study.completion["balanced"] > 0.80)
    # Optimized pays at least comparable cost (its extra volume) but nets
    # more profit — the paper's trade-off observation.
    assert study.cost_ratio > 0.95
    assert study.net_profit["optimized"] > study.net_profit["balanced"]
