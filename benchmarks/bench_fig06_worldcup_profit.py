"""Fig. 6 — §VI hourly net profit over the World-Cup day.

Paper shapes: Optimized significantly outperforms Balanced across the
day; the two converge near the end of the trace where load is light
("Optimized and Balanced had similar net profits at the end of the
traces").
"""

import numpy as np

from conftest import series_line
from repro.experiments.figures import fig6_profit_series


def test_fig06_hourly_net_profit(benchmark, report):
    series = benchmark.pedantic(fig6_profit_series, rounds=1, iterations=1)
    opt, bal = series["optimized"], series["balanced"]
    gap = opt - bal
    report(
        "Fig. 6: hourly net profit ($) over the World-Cup day",
        [
            series_line("optimized", opt, fmt="{:>10.0f}"),
            series_line("balanced", bal, fmt="{:>10.0f}"),
            series_line("gap", gap, fmt="{:>10.0f}"),
            f"day totals: optimized ${opt.sum():,.0f}  "
            f"balanced ${bal.sum():,.0f}  "
            f"(+{(opt.sum() / bal.sum() - 1) * 100:.1f}%)",
        ],
    )
    # Optimized wins (or ties) every hour and clearly wins the day.
    assert np.all(opt >= bal - 1e-6)
    assert opt.sum() > 1.02 * bal.sum()
    # Convergence at the light-load end of the trace: the relative gap in
    # the final hour is far below the peak relative gap.
    rel_gap = gap / np.maximum(bal, 1.0)
    assert rel_gap[-1] < 0.5 * rel_gap.max()
