"""Tables VIII-XI — §VII experiment setup.

Regenerates the Google-trace study's parameter tables (capacities,
sub-deadlines, two-level TUF values, per-request energies) and the
distance/transfer configuration.
"""

import numpy as np

from repro.experiments.section7 import (
    DISTANCES,
    PRICE_WINDOW,
    TRANSFER_COSTS,
    TUF_DEADLINES_HOURS,
    TUF_VALUES,
    section7_experiment,
    section7_topology,
)
from repro.utils.tables import render_table


def _build_tables():
    topo = section7_topology()
    t8 = render_table(
        ["capacity (#/hour)", *[dc.name for dc in topo.datacenters]],
        [[rc.name, *topo.service_rates[k].tolist()]
         for k, rc in enumerate(topo.request_classes)],
        title="Table VIII: processing capacities",
    )
    t9 = render_table(
        ["sub-deadline (hour)", "level 1", "level 2"],
        [[name, *TUF_DEADLINES_HOURS[name].tolist()]
         for name in ("request1", "request2")],
        title="Table IX: sub-deadlines",
    )
    t10 = render_table(
        ["TUF value ($)", "level 1", "level 2"],
        [[name, *TUF_VALUES[name].tolist()]
         for name in ("request1", "request2")],
        title="Table X: TUF values",
    )
    t11 = render_table(
        ["power (kWh)", *[dc.name for dc in topo.datacenters]],
        [[rc.name, *topo.energy_per_request[k].tolist()]
         for k, rc in enumerate(topo.request_classes)],
        title="Table XI: per-request energy",
    )
    return topo, "\n\n".join([t8, t9, t10, t11])


def test_table08_11_setup(benchmark, report):
    topo, text = benchmark(_build_tables)
    report(
        "Tables VIII-XI (section VII setup)",
        text.splitlines()
        + [f"distances: {DISTANCES.tolist()} miles",
           f"transfer costs: {TRANSFER_COSTS.tolist()} $/mile",
           f"price window: slots {PRICE_WINDOW} (14:00-19:00 region)"],
    )
    # Two-level TUFs on both classes; level values strictly decreasing.
    assert all(rc.num_levels == 2 for rc in topo.request_classes)
    for name in ("request1", "request2"):
        assert TUF_VALUES[name][0] > TUF_VALUES[name][1]
        assert TUF_DEADLINES_HOURS[name][0] < TUF_DEADLINES_HOURS[name][1]
    # 1000/2000-mile legs, 7 price slots matching the 7-hour trace.
    assert sorted(DISTANCES.ravel().tolist()) == [1000.0, 2000.0]
    exp = section7_experiment()
    assert exp.market.num_slots == exp.trace.num_slots == 7
    assert np.all(exp.trace.rates > 0)
