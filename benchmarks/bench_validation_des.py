"""Supplementary validation — plan execution in the discrete-event sim.

Not a paper figure: this bench executes optimizer plans for a busy §VI
hour in the whole-cluster DES (Poisson arrivals, exponential work,
processor-sharing VMs) and checks the modeling assumptions end to end.

Two plans are executed:

* the paper's exact formulation (``deadline_margin=1.0``) — at
  saturation its mean delays sit exactly on the TUF boundary, so the
  *stochastic* realization loses a large revenue slice to the cliff;
* a robust plan (``deadline_margin=0.85``) — slightly less admission,
  realized mean-delay profit within ~10% of the analytic value.

This quantifies a real limitation of the paper's mean-delay SLA
accounting and the one-line mitigation the library offers.
"""

import pytest

from repro.core.objective import evaluate_plan
from repro.core.optimizer import (OptimizerConfig,
                                  ProfitAwareOptimizer)
from repro.des.cluster import simulate_plan
from repro.experiments.section6 import section6_experiment

HOUR = 15  # a busy afternoon slot


def _run_one(margin: float):
    exp = section6_experiment()
    arrivals = exp.trace.arrivals_at(HOUR)
    prices = exp.market.prices_at(HOUR)
    plan = ProfitAwareOptimizer(exp.topology, config=OptimizerConfig(deadline_margin=margin)).plan_slot(arrivals, prices, slot_duration=1.0)
    analytic = evaluate_plan(plan, arrivals, prices, slot_duration=1.0)
    simulated = simulate_plan(plan, prices, slot_duration=1.0, seed=6,
                              warmup_fraction=0.05)
    return analytic, simulated


def _run():
    return {margin: _run_one(margin) for margin in (1.0, 0.85)}


def test_des_validates_analytic_model(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = []
    for margin, (analytic, simulated) in results.items():
        lines += [
            f"deadline_margin={margin}:",
            f"  analytic net profit      ${analytic.net_profit:>13,.0f}",
            f"  simulated (mean-delay)   "
            f"${simulated.net_profit_mean_delay:>13,.0f}",
            f"  simulated (per-job TUF)  "
            f"${simulated.net_profit_per_job:>13,.0f}",
            f"  jobs generated/completed {simulated.generated:,}/"
            f"{simulated.completed:,}",
            f"  worst Eq.1 delay error   "
            f"{simulated.max_delay_model_error * 100:.1f}%",
        ]
    report(
        f"Supplementary: whole-cluster DES vs analytic evaluation "
        f"(section VI hour {HOUR})", lines,
    )
    exact_analytic, exact_sim = results[1.0]
    robust_analytic, robust_sim = results[0.85]
    # Eq. 1 holds per VM within sampling noise in both runs.
    assert exact_sim.max_delay_model_error < 0.25
    assert robust_sim.max_delay_model_error < 0.25
    # The margin costs little analytically...
    assert robust_analytic.net_profit > 0.9 * exact_analytic.net_profit
    # ...but realized mean-delay profit tracks the analytic value only
    # with the margin; the boundary-tight plan loses a large slice.
    assert robust_sim.net_profit_mean_delay == pytest.approx(
        robust_analytic.net_profit, rel=0.12
    )
    assert (exact_sim.net_profit_mean_delay
            < 0.8 * exact_analytic.net_profit)
    # The robust plan also realizes more than the exact plan.
    assert (robust_sim.net_profit_mean_delay
            > exact_sim.net_profit_mean_delay)
    # With the margin, every VM's mean sits inside its level, so per-job
    # accounting (which sees the sojourn tail) can only be less
    # optimistic than mean-delay accounting.  Without the margin the
    # inequality flips direction for cliff-straddling VMs — mean-delay
    # accounting zeroes them while many individual jobs still made it.
    assert (robust_sim.net_profit_per_job
            <= robust_sim.net_profit_mean_delay + 1e-9)
