"""The ``BENCH_*.json`` record schema, validation, and comparison.

One record describes one benchmark scenario run:

.. code-block:: json

    {
      "schema": "repro-bench/1",
      "scenario": "des_million",
      "mode": "full",
      "seed": 0,
      "created_unix": 1754500000.0,
      "machine": {"platform": "...", "python": "...", ...},
      "config": {"requests": 1000000, ...},
      "determinism": {"generated": 1000000, ...},
      "timing": {
        "wall_s": 2.9, "samples_s": [...], "warmup": 0,
        "per_phase_s": {"horizon": 2.7, "drain": 0.2},
        "peak_rss_mb": 140.2,
        "throughput": {"events_per_s": 690000.0},
        "ratios": {"engine_speedup": 1.7}
      }
    }

Field semantics:

* ``determinism`` holds everything that must be *bit-identical* between
  two runs with the same seed, mode, and scenario (objectives, event
  counts, warm-start outcomes).  ``repro bench`` run twice must agree
  here exactly — that is the regression test's definition of a
  deterministic benchmark.
* ``timing`` (and ``created_unix``) hold everything allowed to vary run
  to run.  ``ratios`` are dimensionless speedups measured *within* one
  run (warm vs cold, new engine vs reference engine) — they transfer
  across machines, so regression gating in CI compares ratios even
  when the committed baseline was recorded on different hardware.
* absolute ``wall_s`` values are only compared when two records share a
  machine fingerprint *and* a mode.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

__all__ = [
    "SCHEMA_VERSION",
    "MODES",
    "NONDETERMINISTIC_KEYS",
    "bench_filename",
    "build_record",
    "validate_record",
    "strip_nondeterministic",
    "ComparisonResult",
    "compare_records",
    "load_record",
]

SCHEMA_VERSION = "repro-bench/1"

#: Valid values for a record's ``mode`` field.
MODES = ("full", "smoke")

#: Top-level keys that may legitimately differ between two runs of the
#: same scenario with the same seed (everything else must be identical).
NONDETERMINISTIC_KEYS = ("timing", "created_unix")

#: Relative tolerance for "identical" determinism floats — covers JSON
#: round-tripping, not algorithmic drift.
DETERMINISM_RTOL = 1e-9

Record = Dict[str, Any]


def bench_filename(scenario: str) -> str:
    """Canonical on-disk name for a scenario's record."""
    return f"BENCH_{scenario}.json"


def build_record(
    scenario: str,
    mode: str,
    seed: int,
    config: Dict[str, Any],
    determinism: Dict[str, Any],
    timing: Dict[str, Any],
    machine: Dict[str, Any],
    created_unix: float,
) -> Record:
    """Assemble a schema-versioned record from its sections."""
    record: Record = {
        "schema": SCHEMA_VERSION,
        "scenario": str(scenario),
        "mode": str(mode),
        "seed": int(seed),
        "created_unix": float(created_unix),
        "machine": dict(machine),
        "config": dict(config),
        "determinism": dict(determinism),
        "timing": dict(timing),
    }
    problems = validate_record(record)
    if problems:
        raise ValueError(
            f"refusing to build an invalid bench record: {'; '.join(problems)}"
        )
    return record


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_record(record: Any) -> List[str]:
    """Validate one record; returns a list of problems ([] when valid)."""
    problems: List[str] = []
    if not isinstance(record, dict):
        return [f"record must be a JSON object, got {type(record).__name__}"]
    schema = record.get("schema")
    if schema != SCHEMA_VERSION:
        problems.append(
            f"schema must be {SCHEMA_VERSION!r}, got {schema!r}"
        )
    if not isinstance(record.get("scenario"), str) or not record.get("scenario"):
        problems.append("scenario must be a non-empty string")
    if record.get("mode") not in MODES:
        problems.append(f"mode must be one of {MODES}, got {record.get('mode')!r}")
    if not isinstance(record.get("seed"), int) or isinstance(record.get("seed"), bool):
        problems.append("seed must be an integer")
    if not _is_number(record.get("created_unix")):
        problems.append("created_unix must be a number")
    for section in ("machine", "config", "determinism"):
        if not isinstance(record.get(section), dict):
            problems.append(f"{section} must be an object")
    timing = record.get("timing")
    if not isinstance(timing, dict):
        problems.append("timing must be an object")
        return problems
    wall = timing.get("wall_s")
    if not _is_number(wall) or wall <= 0 or not math.isfinite(wall):
        problems.append("timing.wall_s must be a positive finite number")
    samples = timing.get("samples_s")
    if (not isinstance(samples, list) or not samples
            or not all(_is_number(s) and s >= 0 for s in samples)):
        problems.append("timing.samples_s must be a non-empty list of numbers")
    if not _is_number(timing.get("peak_rss_mb")) or timing.get("peak_rss_mb") < 0:
        problems.append("timing.peak_rss_mb must be a non-negative number")
    per_phase = timing.get("per_phase_s")
    if (not isinstance(per_phase, dict)
            or not all(isinstance(k, str) and _is_number(v)
                       for k, v in per_phase.items())):
        problems.append("timing.per_phase_s must map phase names to seconds")
    for optional in ("ratios", "throughput"):
        section = timing.get(optional, {})
        if (not isinstance(section, dict)
                or not all(isinstance(k, str) and _is_number(v)
                           for k, v in section.items())):
            problems.append(f"timing.{optional} must map names to numbers")
    return problems


def strip_nondeterministic(record: Record) -> Record:
    """Drop the run-varying sections; what remains must be stable."""
    return {k: v for k, v in record.items() if k not in NONDETERMINISTIC_KEYS}


def _values_match(a: Any, b: Any, rtol: float = DETERMINISM_RTOL) -> bool:
    """Deep equality with a relative tolerance on floats."""
    if _is_number(a) and _is_number(b):
        fa, fb = float(a), float(b)
        if math.isnan(fa) or math.isnan(fb):
            return math.isnan(fa) and math.isnan(fb)
        return abs(fa - fb) <= rtol * max(1.0, abs(fa), abs(fb))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            _values_match(a[k], b[k], rtol) for k in a
        )
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(
            _values_match(x, y, rtol) for x, y in zip(a, b)
        )
    return bool(a == b)


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of comparing a current record against a baseline."""

    scenario: str
    problems: Tuple[str, ...] = ()
    notes: Tuple[str, ...] = field(default=(), compare=False)

    @property
    def ok(self) -> bool:
        """True when no regression or schema problem was found."""
        return not self.problems


def compare_records(
    baseline: Any, current: Any, tolerance: float = 0.25
) -> ComparisonResult:
    """Compare ``current`` against a committed ``baseline`` record.

    Checks, in order:

    1. both records validate against the schema (an old or malformed
       baseline is a hard failure — regenerate it, don't guess);
    2. same scenario;
    3. with matching mode *and* seed, the ``determinism`` sections must
       match exactly (rel. tol. :data:`DETERMINISM_RTOL`);
    4. every ratio present in both records must not regress by more
       than ``tolerance`` (ratios are speedups: bigger is better);
    5. absolute ``wall_s`` must not grow by more than ``tolerance`` —
       only checked when machine fingerprint and mode both match.

    ``tolerance`` is a fraction: ``0.25`` allows a 25% regression.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    scenario = (current or {}).get("scenario", "?") if isinstance(current, dict) \
        else "?"
    problems: List[str] = []
    notes: List[str] = []
    for name, record in (("baseline", baseline), ("current", current)):
        for issue in validate_record(record):
            problems.append(f"{name} record rejected: {issue}")
    if problems:
        return ComparisonResult(scenario=str(scenario),
                                problems=tuple(problems))
    if baseline["scenario"] != current["scenario"]:
        problems.append(
            f"scenario mismatch: baseline {baseline['scenario']!r} "
            f"vs current {current['scenario']!r}"
        )
        return ComparisonResult(scenario=str(scenario),
                                problems=tuple(problems))

    same_mode = baseline["mode"] == current["mode"]
    if same_mode and baseline["seed"] == current["seed"]:
        if not _values_match(baseline["determinism"], current["determinism"]):
            problems.append(
                "determinism drift: non-timing fields differ from the "
                "baseline at identical scenario/mode/seed"
            )
    else:
        notes.append(
            f"determinism skipped (baseline mode={baseline['mode']}/"
            f"seed={baseline['seed']}, current mode={current['mode']}/"
            f"seed={current['seed']})"
        )

    base_ratios = baseline["timing"].get("ratios", {})
    cur_ratios = current["timing"].get("ratios", {})
    for name in sorted(set(base_ratios) & set(cur_ratios)):
        floor = float(base_ratios[name]) * (1.0 - tolerance)
        if float(cur_ratios[name]) < floor:
            problems.append(
                f"ratio regression: {name} {float(cur_ratios[name]):.3f} "
                f"< {floor:.3f} (baseline {float(base_ratios[name]):.3f} "
                f"- {tolerance:.0%})"
            )

    if same_mode and baseline["machine"] == current["machine"]:
        ceiling = float(baseline["timing"]["wall_s"]) * (1.0 + tolerance)
        if float(current["timing"]["wall_s"]) > ceiling:
            problems.append(
                f"wall-time regression: {current['timing']['wall_s']:.4f}s "
                f"> {ceiling:.4f}s (baseline "
                f"{baseline['timing']['wall_s']:.4f}s + {tolerance:.0%})"
            )
    else:
        notes.append("wall-time skipped (different machine or mode)")

    return ComparisonResult(
        scenario=str(current["scenario"]),
        problems=tuple(problems),
        notes=tuple(notes),
    )


def load_record(path: Union[str, Path]) -> Record:
    """Read one ``BENCH_*.json`` file (raises on unreadable JSON)."""
    with Path(path).open() as fh:
        loaded = json.load(fh)
    if not isinstance(loaded, dict):
        raise ValueError(f"{path}: bench record must be a JSON object")
    return loaded
