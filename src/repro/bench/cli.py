"""The ``repro bench`` subcommand.

Runs canonical scenarios from :mod:`repro.bench.scenarios`, writes one
schema-versioned ``BENCH_<scenario>.json`` per scenario into ``--out``,
and (with ``--check``) compares each fresh record against the committed
baseline of the same name in ``--baseline-dir``.

Exit codes follow the repo's analysis CLIs: ``0`` clean, ``1`` a
regression / rejected baseline / failed scenario, ``2`` usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List

from repro.bench.schema import bench_filename, compare_records, load_record
from repro.bench.scenarios import SCENARIOS, available_scenarios, run_scenario
from repro.cli_registry import register_subcommand

__all__ = ["add_bench_arguments", "run_bench"]

#: Default regression tolerance (fraction) for ``--check``.
DEFAULT_TOLERANCE = 0.25


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the bench options to an (sub)parser."""
    parser.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="scenario to run (repeatable); see --list for the catalog",
    )
    parser.add_argument(
        "--all", action="store_true", dest="run_all",
        help="run every scenario in the catalog",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="scaled-down workloads for CI (records are marked mode=smoke)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override every scenario's canonical seed",
    )
    parser.add_argument(
        "--out", type=str, default=".", metavar="DIR",
        help="directory receiving BENCH_<scenario>.json (default: .)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare fresh records against committed baselines",
    )
    parser.add_argument(
        "--baseline-dir", type=str, default=".", metavar="DIR",
        help="directory holding the baseline BENCH_*.json (default: .)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed fractional regression for --check "
             f"(default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="list the scenario catalog and exit",
    )


def _print_catalog() -> None:
    width = max(len(name) for name in available_scenarios())
    for name in available_scenarios():
        print(f"{name:<{width}}  {SCENARIOS[name].description}")


def _summarize(record: Dict[str, Any]) -> str:
    timing = record["timing"]
    parts = [f"{record['scenario']}: {timing['wall_s']:.4f}s"]
    for name, value in sorted(timing.get("throughput", {}).items()):
        parts.append(f"{name}={value:,.0f}")
    for name, value in sorted(timing.get("ratios", {}).items()):
        parts.append(f"{name}={value:.2f}x")
    parts.append(f"rss={timing['peak_rss_mb']:.0f}MiB")
    return "  ".join(parts)


@register_subcommand(
    "bench",
    help_text="canonical perf-benchmark suite emitting BENCH_*.json; "
              "exit 1 on baseline regressions",
    configure=add_bench_arguments,
)
def run_bench(args: argparse.Namespace) -> int:
    """Execute the bench subcommand; returns a process exit code."""
    if args.list_scenarios:
        _print_catalog()
        return 0
    if args.run_all and args.scenario:
        print("error: pass either --all or --scenario, not both",
              file=sys.stderr)
        return 2
    if not args.run_all and not args.scenario:
        print("error: nothing to run; pass --all, --scenario NAME, or "
              "--list", file=sys.stderr)
        return 2
    if args.tolerance < 0:
        print(f"error: --tolerance must be >= 0 (got {args.tolerance})",
              file=sys.stderr)
        return 2
    if args.run_all:
        names = available_scenarios()
    else:
        names = list(dict.fromkeys(args.scenario))
        unknown = [n for n in names if n not in SCENARIOS]
        if unknown:
            print(
                f"error: unknown scenario(s) {', '.join(unknown)}; "
                f"available: {', '.join(available_scenarios())}",
                file=sys.stderr,
            )
            return 2

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    mode = "smoke" if args.smoke else "full"
    failures: List[str] = []
    for name in names:
        record = run_scenario(name, mode=mode, seed=args.seed)
        path = out_dir / bench_filename(name)
        with path.open("w") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(_summarize(record))
        print(f"  wrote {path}")
        if not args.check:
            continue
        baseline_path = Path(args.baseline_dir) / bench_filename(name)
        if not baseline_path.exists():
            print(f"  warning: no baseline at {baseline_path}; "
                  "comparison skipped")
            continue
        try:
            baseline = load_record(baseline_path)
        except (ValueError, json.JSONDecodeError) as exc:
            failures.append(f"{name}: baseline {baseline_path} rejected: {exc}")
            print(f"  FAIL baseline rejected: {exc}")
            continue
        comparison = compare_records(baseline, record,
                                     tolerance=args.tolerance)
        for note in comparison.notes:
            print(f"  note: {note}")
        if comparison.ok:
            print(f"  check vs {baseline_path}: OK "
                  f"(tolerance {args.tolerance:.0%})")
        else:
            for problem in comparison.problems:
                print(f"  FAIL {problem}")
            failures.extend(f"{name}: {p}" for p in comparison.problems)

    if failures:
        print(f"\n{len(failures)} benchmark check(s) failed:",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0
