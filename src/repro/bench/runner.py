"""Timed execution with warmup/repeat/median aggregation.

This is the *single* timing code path for the repo: the ``repro bench``
scenarios, the Fig. 11 computation-time sweep
(:func:`repro.experiments.figures.fig11_computation_time`), and the
``benchmarks/`` pytest harness all aggregate their samples through
:func:`summarize_times`, so "the median wall time" means the same thing
everywhere and cannot drift between benchmark scripts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Sequence, Tuple, TypeVar

__all__ = ["TimingResult", "summarize_times", "time_callable"]

T = TypeVar("T")


def summarize_times(samples: Sequence[float]) -> Dict[str, float]:
    """Aggregate raw wall-time samples into the canonical statistics.

    The headline statistic is the **median** — robust to the one-off
    stalls (page faults, GC, CPU migration) that poison means on shared
    machines.  Min/mean/max ride along for context.
    """
    values = sorted(float(s) for s in samples)
    if not values:
        raise ValueError("summarize_times needs at least one sample")
    n = len(values)
    mid = n // 2
    median = values[mid] if n % 2 else 0.5 * (values[mid - 1] + values[mid])
    return {
        "median_s": median,
        "mean_s": sum(values) / n,
        "min_s": values[0],
        "max_s": values[-1],
    }


@dataclass(frozen=True)
class TimingResult:
    """Wall-time samples of one measured callable."""

    samples_s: Tuple[float, ...]
    warmup: int

    def __post_init__(self) -> None:
        if not self.samples_s:
            raise ValueError("TimingResult needs at least one sample")
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")

    @property
    def repeats(self) -> int:
        """Number of measured (non-warmup) runs."""
        return len(self.samples_s)

    @property
    def median_s(self) -> float:
        """Median wall seconds — the canonical headline statistic."""
        return summarize_times(self.samples_s)["median_s"]

    @property
    def mean_s(self) -> float:
        """Mean wall seconds across the measured runs."""
        return summarize_times(self.samples_s)["mean_s"]

    @property
    def min_s(self) -> float:
        """Fastest measured run."""
        return summarize_times(self.samples_s)["min_s"]

    @property
    def max_s(self) -> float:
        """Slowest measured run."""
        return summarize_times(self.samples_s)["max_s"]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (inverse not needed; records are one-way)."""
        summary: Dict[str, object] = dict(summarize_times(self.samples_s))
        summary["samples_s"] = list(self.samples_s)
        summary["warmup"] = self.warmup
        return summary


def time_callable(
    fn: Callable[[], T],
    repeats: int = 3,
    warmup: int = 1,
) -> Tuple[TimingResult, T]:
    """Run ``fn`` ``warmup + repeats`` times; time the last ``repeats``.

    Returns the timing result and the value from the final run, so a
    scenario can both measure and inspect its workload without running
    it twice.  ``fn`` must be idempotent across calls (each scenario
    builds fresh optimizers/engines inside the callable).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    samples = []
    result: T
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - start)
    return TimingResult(samples_s=tuple(samples), warmup=warmup), result
