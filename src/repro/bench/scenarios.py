"""The canonical benchmark scenario catalog.

Six tracked scenarios, each emitting one ``BENCH_<name>.json``:

* ``paper_scale``   — the §VI World-Cup day end to end (24 hourly slots,
  18 servers), the paper-faithful workload; also times the plan loop
  with the optimality certifier off vs on and tracks certify-on
  overhead as the ``certify_efficiency`` ratio;
* ``streaming_ingest`` — the streaming control plane over a blockified
  (bursty) §VI day: the drift-triggered policy is timed and its solve
  reduction vs per-slot re-planning tracked as ratios, alongside the
  periodic-streaming-equals-slotted equivalence check;
* ``fleet_10x``     — the same day on a 10× fleet (180 servers);
* ``fleet_100x``    — the same day on a 100× fleet (1800 servers),
  tracking the production sparse/decomposed path at ROADMAP scale; both
  fleet scenarios also time a per-server plan loop dense vs sparse and
  record the symmetry-collapse win as the ``sparse_speedup`` ratio;
* ``warm_vs_cold``  — the Fig. 11-setup §VII slot pipeline solved cold
  and warm, recording the warm-start layer's speedup as a ratio;
* ``des_million``   — a ≥10⁶-request M/M/1 validation run on the
  discrete-event engine, with the pre-refactor
  :class:`~repro.des.reference.ReferenceEngine` timed on the identical
  workload so the engine refactor's speedup is a tracked ratio.

Every scenario has a ``full`` mode (the committed baselines) and a
``smoke`` mode (scaled down for CI).  All randomness is seeded: the
``determinism`` section of a record must be bit-identical between two
runs with the same scenario/mode/seed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, cast

from repro.bench.machine import machine_fingerprint, peak_rss_mb
from repro.bench.runner import TimingResult, time_callable
from repro.bench.schema import Record, build_record
from repro.des.engine import Engine
from repro.des.measurements import SojournStats
from repro.des.processes import PoissonArrivals
from repro.des.reference import ReferenceEngine
from repro.des.server import FCFSQueueServer
from repro.obs.collectors import InMemoryCollector
from repro.obs.trace import SlotTrace

__all__ = [
    "Scenario",
    "ScenarioRequest",
    "ScenarioResult",
    "SCENARIOS",
    "register_scenario",
    "available_scenarios",
    "run_scenario",
]


@dataclass(frozen=True)
class ScenarioRequest:
    """How to run one scenario.

    ``overrides`` rescales a scenario's workload knobs (``slots``,
    ``repeats``, ``requests``, ``multiplier``) — the escape hatch the
    test suite uses to exercise the machinery at trivial sizes.
    """

    mode: str = "full"
    seed: Optional[int] = None
    overrides: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.mode not in ("full", "smoke"):
            raise ValueError(f"mode must be 'full' or 'smoke', got {self.mode!r}")

    def param(self, name: str, default: int) -> int:
        """One workload knob, override-aware."""
        return int(self.overrides.get(name, default))


@dataclass(frozen=True)
class ScenarioResult:
    """What one scenario run measured (sections of the JSON record)."""

    seed: int
    config: Dict[str, Any]
    determinism: Dict[str, Any]
    timing: Dict[str, Any]


@dataclass(frozen=True)
class Scenario:
    """One registered benchmark scenario."""

    name: str
    description: str
    run: Callable[[ScenarioRequest], ScenarioResult]


SCENARIOS: Dict[str, Scenario] = {}


def register_scenario(  # reprolint: disable=AR030 # extension point
    name: str, description: str
) -> Callable[[Callable[[ScenarioRequest], ScenarioResult]],
              Callable[[ScenarioRequest], ScenarioResult]]:
    """Class-level decorator registering a scenario runner under ``name``."""

    def decorate(
        fn: Callable[[ScenarioRequest], ScenarioResult]
    ) -> Callable[[ScenarioRequest], ScenarioResult]:
        if name in SCENARIOS:
            raise ValueError(f"scenario {name!r} registered twice")
        SCENARIOS[name] = Scenario(name=name, description=description, run=fn)
        return fn

    return decorate


def available_scenarios() -> List[str]:
    """Registered scenario names, in catalog (cheapest-first) order."""
    return list(SCENARIOS)


def run_scenario(
    name: str,
    mode: str = "full",
    seed: Optional[int] = None,
    overrides: Optional[Mapping[str, int]] = None,
) -> Record:
    """Run one scenario and return its complete, validated record."""
    if name not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {name!r}; available: "
            f"{', '.join(available_scenarios())}"
        )
    request = ScenarioRequest(mode=mode, seed=seed,
                              overrides=dict(overrides or {}))
    result = SCENARIOS[name].run(request)
    return build_record(
        scenario=name,
        mode=mode,
        seed=result.seed,
        config=result.config,
        determinism=result.determinism,
        timing=result.timing,
        machine=machine_fingerprint(),
        created_unix=time.time(),
    )


# ---------------------------------------------------------------------------
# Shared helpers


def _aggregate_phases(traces: List[SlotTrace]) -> Dict[str, float]:
    """Sum per-slot ``SlotTrace`` phase timings across a run."""
    phases: Dict[str, float] = {}
    for trace in traces:
        for phase, seconds in trace.phase_times.items():
            phases[phase] = phases.get(phase, 0.0) + seconds
    return phases


def _timing_section(
    timing: TimingResult,
    per_phase_s: Dict[str, float],
    ratios: Optional[Dict[str, float]] = None,
    throughput: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    section: Dict[str, Any] = {"wall_s": timing.median_s}
    section.update(timing.to_dict())
    section["per_phase_s"] = per_phase_s
    section["peak_rss_mb"] = peak_rss_mb()
    section["ratios"] = dict(ratios or {})
    section["throughput"] = dict(throughput or {})
    return section


def _slot_pipeline_scenario(
    request: ScenarioRequest,
    multiplier: int,
    full_slots: int,
    smoke_slots: int,
    sparse_ratio: bool = False,
    certify_ratio: bool = False,
) -> ScenarioResult:
    """§VI day at ``multiplier``× fleet size through ``run_simulation``.

    With ``sparse_ratio`` (the fleet scenarios) the main timed run uses
    the production sparse/decomposed solve path — so ``per_phase_s``
    records the new build/decompose/solve/expand stage split — and a
    second measurement times a **per-server** plan loop dense vs sparse,
    where symmetry collapse makes thousand-server fleets tractable.
    That win lands in ``ratios.sparse_speedup`` and the dense-vs-sparse
    objectives are pinned in the ``determinism`` section.

    With ``certify_ratio`` (the paper-scale scenario) a second
    measurement times the same plan loop with the optimality
    certifier off vs on (``certify="warn"``).  The dimensionless
    ``ratios.certify_efficiency`` — plain time over certified time —
    is the fraction of plain throughput retained with certification
    active (≤ ~1; a drop means verification got more expensive), so
    the CI ratio gate tracks certify-on overhead across machines.
    """
    from repro.core.optimizer import OptimizerConfig, ProfitAwareOptimizer
    from repro.experiments.section6 import SERVERS_PER_DC, section6_experiment
    from repro.sim.slotted import SimulationResult, run_simulation

    smoke = request.mode == "smoke"
    seed = request.seed if request.seed is not None else 1998
    mult = request.param("multiplier", multiplier)
    slots = request.param("slots", smoke_slots if smoke else full_slots)
    repeats = request.param("repeats", 1 if smoke else 3)
    warmup = request.param("warmup", 0 if smoke else 1)

    exp = section6_experiment(seed=seed)
    topology = exp.topology
    if mult != 1:
        topology = topology.with_servers_per_datacenter(SERVERS_PER_DC * mult)
    slots = min(slots, exp.trace.num_slots)

    def once() -> Tuple[SimulationResult, InMemoryCollector]:
        collector = InMemoryCollector()
        optimizer = ProfitAwareOptimizer(
            topology, config=OptimizerConfig(sparse=sparse_ratio)
        )
        result = run_simulation(
            optimizer, exp.trace, exp.market,
            num_slots=slots, collector=collector,
        )
        return result, collector

    timing, (result, collector) = time_callable(once, repeats=repeats,
                                                warmup=warmup)
    traces = collector.slot_traces
    config: Dict[str, Any] = {
        "experiment": "section6",
        "fleet_multiplier": mult,
        "num_servers": topology.num_servers,
        "num_slots": slots,
        "repeats": repeats,
        "warmup": warmup,
        "sparse": sparse_ratio,
    }
    determinism: Dict[str, Any] = {
        "num_slots": slots,
        "total_net_profit": float(result.total_net_profit),
        "objectives": [float(t.objective) for t in traces],
        "warm_outcomes": collector.warm_start_counts(),
        "fallback_slots": sum(1 for t in traces if t.fallback > 0),
    }
    ratios: Dict[str, float] = {}

    if sparse_ratio:
        # Dense vs sparse on the *per-server* formulation: the dense
        # tableau carries one variable per physical server, the sparse
        # path collapses identical servers before the solve.  Dense at
        # 100x is seconds per slot, so it gets one pass over a few
        # slots; the sparse loop is cheap enough to take a median over.
        ratio_slots = request.param("ratio_slots", 1 if smoke else 2)
        ratio_repeats = request.param("ratio_repeats", 3)
        ratio_slots = min(ratio_slots, exp.trace.num_slots)

        def plan_loop(sparse: bool) -> List[float]:
            optimizer = ProfitAwareOptimizer(topology, config=OptimizerConfig(
                formulation="per_server", sparse=sparse,
            ))
            objectives = []
            for t in range(ratio_slots):
                optimizer.plan_slot(
                    exp.trace.arrivals_at(t), exp.market.prices_at(t),
                    slot_duration=exp.trace.slot_duration,
                )
                objectives.append(float(optimizer.last_stats.objective))
            return objectives

        dense_timing, dense_obj = time_callable(
            lambda: plan_loop(False), repeats=1, warmup=0
        )
        sparse_timing, sparse_obj = time_callable(
            lambda: plan_loop(True), repeats=ratio_repeats, warmup=0
        )
        ratios["sparse_speedup"] = (
            dense_timing.median_s / sparse_timing.median_s
        )
        config.update({
            "ratio_formulation": "per_server",
            "ratio_slots": ratio_slots,
            "ratio_repeats": ratio_repeats,
        })
        determinism.update({
            "ratio_objectives_dense": dense_obj,
            "ratio_objectives_sparse": sparse_obj,
            "ratio_max_rel_diff": max(
                (abs(s - d) / (1.0 + abs(d))
                 for s, d in zip(sparse_obj, dense_obj)),
                default=0.0,
            ),
        })

    if certify_ratio:
        certify_slots = request.param("certify_slots", 2 if smoke else 8)
        certify_repeats = request.param("certify_repeats", 3)
        certify_slots = min(certify_slots, exp.trace.num_slots)

        def certify_loop(certify: str) -> Dict[str, int]:
            collector = InMemoryCollector()
            optimizer = ProfitAwareOptimizer(topology, config=OptimizerConfig(
                sparse=sparse_ratio, certify=certify, collector=collector,
            ))
            for t in range(certify_slots):
                optimizer.plan_slot(
                    exp.trace.arrivals_at(t), exp.market.prices_at(t),
                    slot_duration=exp.trace.slot_duration,
                )
            return {
                "certified": int(collector.counters.get(
                    "optimizer.certifies", 0)),
                "errors": int(collector.counters.get(
                    "optimizer.certify_errors", 0)),
            }

        plain_timing, _ = time_callable(
            lambda: certify_loop("off"), repeats=certify_repeats, warmup=0
        )
        certified_timing, certify_counts = time_callable(
            lambda: certify_loop("warn"), repeats=certify_repeats, warmup=0
        )
        ratios["certify_efficiency"] = (
            plain_timing.median_s / certified_timing.median_s
        )
        config.update({
            "certify_slots": certify_slots,
            "certify_repeats": certify_repeats,
        })
        determinism.update({
            "certified_solves": certify_counts["certified"],
            "certify_error_findings": certify_counts["errors"],
        })

    return ScenarioResult(
        seed=seed,
        config=config,
        determinism=determinism,
        timing=_timing_section(
            timing,
            per_phase_s=_aggregate_phases(traces),
            ratios=ratios,
            throughput={"slots_per_s": slots / timing.median_s},
        ),
    )


# ---------------------------------------------------------------------------
# The catalog (registration order = cheapest first, so the lifetime
# peak-RSS readings stay attributable)


@register_scenario(
    "paper_scale",
    "§VI World-Cup day, paper-faithful scale (24 slots, 18 servers), "
    "plus the certify-off-vs-on certify_efficiency ratio",
)
def _paper_scale(request: ScenarioRequest) -> ScenarioResult:
    return _slot_pipeline_scenario(request, multiplier=1,
                                   full_slots=24, smoke_slots=6,
                                   certify_ratio=True)


@register_scenario(
    "streaming_ingest",
    "streaming control plane on a bursty §VI day: drift-triggered "
    "re-solving vs periodic, plus slotted-equivalence check",
)
def _streaming_ingest(request: ScenarioRequest) -> ScenarioResult:
    import numpy as np

    from repro.core.controller import SlottedController
    from repro.core.optimizer import OptimizerConfig, ProfitAwareOptimizer
    from repro.experiments.section6 import section6_experiment
    from repro.stream import (
        DriftTriggered,
        PeriodicResolve,
        StreamingController,
        StreamingResult,
    )
    from repro.workload.traces import WorkloadTrace

    smoke = request.mode == "smoke"
    seed = request.seed if request.seed is not None else 1998
    slots = request.param("slots", 8 if smoke else 24)
    ticks_per_slot = request.param("ticks_per_slot", 6 if smoke else 12)
    block = request.param("block", 4)
    repeats = request.param("repeats", 1 if smoke else 3)
    warmup = request.param("warmup", 0 if smoke else 1)

    exp = section6_experiment(seed=seed)
    slots = min(slots, exp.trace.num_slots)
    # Piecewise-constant ("bursty") day: each run of `block` slots
    # repeats its first slot, so re-planning is only worth it at edges.
    idx = (np.arange(exp.trace.num_slots) // block) * block
    bursty = WorkloadTrace(exp.trace.rates[:, :, idx],
                           exp.trace.slot_duration)

    def dispatcher() -> ProfitAwareOptimizer:
        return ProfitAwareOptimizer(exp.topology, config=OptimizerConfig())

    def stream(policy: Any,
               collector: Optional[InMemoryCollector] = None
               ) -> StreamingResult:
        return StreamingController(
            dispatcher(), bursty, exp.market, policy,
            ticks_per_slot=ticks_per_slot, collector=collector,
        ).run(num_slots=slots)

    collectors: List[InMemoryCollector] = []

    def timed_drift() -> StreamingResult:
        collector = InMemoryCollector()
        collectors.append(collector)
        return stream(DriftTriggered(), collector)

    timing, drift = time_callable(timed_drift, repeats=repeats,
                                  warmup=warmup)
    collector = collectors[-1]
    periodic = stream(PeriodicResolve())
    slotted = SlottedController(dispatcher(), bursty, exp.market).run(
        num_slots=slots
    )
    # Equivalence pin: periodic streaming reproduces the slotted loop.
    equivalence_rel_diff = max(
        (
            abs(got.outcome.net_profit - ref.outcome.net_profit)
            / (1.0 + abs(ref.outcome.net_profit))
            for got, ref in zip(periodic.records, slotted)
        ),
        default=0.0,
    )
    plan_stats = collector.timers.get("stream.plan_slot")
    ticks = slots * ticks_per_slot
    return ScenarioResult(
        seed=seed,
        config={
            "experiment": "section6 (blockified)",
            "block": block,
            "num_slots": slots,
            "ticks_per_slot": ticks_per_slot,
            "policy": drift.policy,
            "repeats": repeats,
            "warmup": warmup,
        },
        determinism={
            "num_slots": slots,
            "drift_full_solves": drift.full_solves,
            "drift_repairs": drift.repairs,
            "drift_events": drift.drift_events,
            "periodic_full_solves": periodic.full_solves,
            "drift_net_profit": float(drift.total_net_profit),
            "periodic_net_profit": float(periodic.total_net_profit),
            "drift_profit_series": [
                float(p) for p in drift.net_profit_series
            ],
            "equivalence_max_rel_diff": float(equivalence_rel_diff),
        },
        timing=_timing_section(
            timing,
            per_phase_s={
                "plan_slot": plan_stats.total if plan_stats else 0.0,
            },
            ratios={
                "resolve_reduction": (
                    periodic.full_solves / max(drift.full_solves, 1)
                ),
                "profit_ratio": (
                    drift.total_net_profit / periodic.total_net_profit
                ),
            },
            throughput={"ticks_per_s": ticks / timing.median_s},
        ),
    )


@register_scenario(
    "fleet_10x",
    "§VI day on a 10x fleet (180 servers), sparse/decomposed path, plus "
    "the per-server dense-vs-sparse sparse_speedup ratio",
)
def _fleet_10x(request: ScenarioRequest) -> ScenarioResult:
    return _slot_pipeline_scenario(request, multiplier=10,
                                   full_slots=24, smoke_slots=4,
                                   sparse_ratio=True)


@register_scenario(
    "fleet_100x",
    "§VI day on a 100x fleet (1800 servers), sparse/decomposed path, "
    "plus the per-server dense-vs-sparse sparse_speedup ratio",
)
def _fleet_100x(request: ScenarioRequest) -> ScenarioResult:
    return _slot_pipeline_scenario(request, multiplier=100,
                                   full_slots=24, smoke_slots=4,
                                   sparse_ratio=True)


@register_scenario(
    "warm_vs_cold",
    "Fig. 11-setup §VII slot pipeline, cold vs warm-started solves",
)
def _warm_vs_cold(request: ScenarioRequest) -> ScenarioResult:
    from repro.core.optimizer import OptimizerConfig, ProfitAwareOptimizer
    from repro.experiments.section7 import section7_experiment

    smoke = request.mode == "smoke"
    seed = request.seed if request.seed is not None else 2010
    servers_per_dc = request.param("servers_per_dc", 3)
    repeats = request.param("repeats", 1 if smoke else 3)
    warmup = request.param("warmup", 0 if smoke else 1)

    exp = section7_experiment(seed=seed)
    topology = exp.topology.with_servers_per_datacenter(servers_per_dc)
    slots = request.param("slots", exp.trace.num_slots)
    slots = min(slots, exp.trace.num_slots)
    base = OptimizerConfig(level_method="greedy", lp_method="ipm",
                           formulation="per_server")

    def pipeline(warm_start: bool) -> Tuple[List[float], InMemoryCollector]:
        collector = InMemoryCollector()
        optimizer = ProfitAwareOptimizer(
            topology, config=base.replace(warm_start=warm_start)
        )
        optimizer.collector = collector
        for t in range(slots):
            optimizer.plan_slot(
                exp.trace.arrivals_at(t), exp.market.prices_at(t),
                slot_duration=1.0,
            )
        objectives = [float(tr.objective) for tr in collector.slot_traces]
        return objectives, collector

    cold_timing, (cold_obj, _) = time_callable(
        lambda: pipeline(False), repeats=repeats, warmup=warmup
    )
    warm_timing, (warm_obj, warm_collector) = time_callable(
        lambda: pipeline(True), repeats=repeats, warmup=warmup
    )
    max_rel_diff = max(
        (abs(w - c) / (1.0 + abs(c)) for w, c in zip(warm_obj, cold_obj)),
        default=0.0,
    )
    return ScenarioResult(
        seed=seed,
        config={
            "experiment": "section7 (Fig. 11 per-server formulation)",
            "servers_per_dc": servers_per_dc,
            "num_slots": slots,
            "repeats": repeats,
            "warmup": warmup,
            "level_method": base.level_method,
            "lp_method": base.lp_method,
            "formulation": base.formulation,
        },
        determinism={
            "num_slots": slots,
            "cold_objectives": cold_obj,
            "warm_objectives": warm_obj,
            "max_objective_rel_diff": float(max_rel_diff),
            "warm_outcomes": warm_collector.warm_start_counts(),
        },
        timing=_timing_section(
            warm_timing,
            per_phase_s=_aggregate_phases(warm_collector.slot_traces),
            ratios={
                "warm_speedup": cold_timing.median_s / warm_timing.median_s,
            },
            throughput={
                "slots_per_s": slots / warm_timing.median_s,
                "cold_slots_per_s": slots / cold_timing.median_s,
            },
        ),
    )


def _des_workload(
    engine_factory: Callable[[], Engine],
    requests: int,
    rate: float,
    seed: int,
) -> Dict[str, Any]:
    """One M/M/1 validation run; returns phases + deterministic facts."""
    horizon = requests / rate
    engine = engine_factory()
    stats = SojournStats(warmup_time=0.05 * horizon)
    server = FCFSQueueServer(engine, rate=1.0, stats=stats)
    arrivals = PoissonArrivals(engine, rate=rate, sink=server.arrive,
                               seed=seed, stop_time=horizon)
    start = time.perf_counter()
    engine.run_until(horizon)
    t_horizon = time.perf_counter() - start
    start = time.perf_counter()
    engine.run()
    t_drain = time.perf_counter() - start
    analytic = 1.0 / (1.0 - rate)  # M/M/1 sojourn at mu=1
    return {
        "phases": {"horizon": t_horizon, "drain": t_drain},
        "generated": int(arrivals.generated),
        "events_processed": int(engine.events_processed),
        "completed": int(stats.count + stats.discarded),
        "mean_sojourn": float(stats.mean),
        "analytic_sojourn": float(analytic),
        "relative_error": float(abs(stats.mean - analytic) / analytic),
    }


@register_scenario(
    "des_million",
    "million-request M/M/1 DES validation run; engine-refactor speedup "
    "vs the pre-refactor reference engine",
)
def _des_million(request: ScenarioRequest) -> ScenarioResult:
    smoke = request.mode == "smoke"
    seed = request.seed if request.seed is not None else 42
    requests = request.param("requests", 50_000 if smoke else 1_050_000)
    repeats = request.param("repeats", 1 if smoke else 2)
    rate = 0.8  # utilization: mu = 1, lambda = 0.8

    timing, outcome = time_callable(
        lambda: _des_workload(Engine, requests, rate, seed),
        repeats=repeats, warmup=0,
    )
    ref_timing, ref_outcome = time_callable(
        lambda: _des_workload(
            cast(Callable[[], Engine], ReferenceEngine), requests, rate, seed
        ),
        repeats=1, warmup=0,
    )
    deterministic_keys = ("generated", "events_processed", "completed",
                          "mean_sojourn")
    engines_agree = all(
        outcome[key] == ref_outcome[key] for key in deterministic_keys
    )
    return ScenarioResult(
        seed=seed,
        config={
            "workload": "M/M/1 FCFS validation (Eq. 1)",
            "requests_target": requests,
            "utilization": rate,
            "repeats": repeats,
        },
        determinism={
            "generated": outcome["generated"],
            "events_processed": outcome["events_processed"],
            "completed": outcome["completed"],
            "mean_sojourn": outcome["mean_sojourn"],
            "analytic_sojourn": outcome["analytic_sojourn"],
            "relative_error": outcome["relative_error"],
            "reference_engine_identical": bool(engines_agree),
        },
        timing=_timing_section(
            timing,
            per_phase_s=dict(outcome["phases"]),
            ratios={"engine_speedup": ref_timing.median_s / timing.median_s},
            throughput={
                "events_per_s": outcome["events_processed"] / timing.median_s,
                "reference_events_per_s": (
                    ref_outcome["events_processed"] / ref_timing.median_s
                ),
            },
        ),
    )
