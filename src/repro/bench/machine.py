"""Machine fingerprinting and memory sampling for benchmark records.

A ``BENCH_*.json`` record is only comparable to another when both runs
describe the hardware and toolchain they ran on.  The fingerprint is
deliberately built from *stable* facts (platform, interpreter, library
versions, CPU count) — nothing that varies run to run — so two records
from the same machine carry identical ``machine`` sections and the
comparison layer can decide whether absolute wall times are meaningful
to compare.
"""

from __future__ import annotations

import os
import platform
import sys
from typing import Dict, Union

import numpy as np

__all__ = ["machine_fingerprint", "peak_rss_mb"]

Fingerprint = Dict[str, Union[str, int]]

try:  # resource is POSIX-only; benchmarks degrade gracefully without it.
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]


def machine_fingerprint() -> Fingerprint:
    """Stable description of the host, interpreter, and numeric stack."""
    try:
        import scipy
        scipy_version = str(scipy.__version__)
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        scipy_version = "absent"
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": int(os.cpu_count() or 1),
        "numpy": str(np.__version__),
        "scipy": scipy_version,
    }


def peak_rss_mb() -> float:
    """Peak resident-set size of this process so far, in MiB.

    Sampled from ``getrusage`` — this is a *lifetime* high-water mark,
    so a scenario's recorded peak includes whatever the process touched
    before it ran (the scenario catalog runs cheapest-first to keep the
    readings meaningful).  Returns 0.0 on platforms without the
    ``resource`` module.
    """
    if resource is None:  # pragma: no cover - non-POSIX platforms
        return 0.0
    peak = float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss is bytes there
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0
