"""Canonical performance-benchmark subsystem (``repro bench``).

The repo's tracked performance trajectory: a registry of canonical
scenarios (:mod:`repro.bench.scenarios`), one timed runner with
warmup/repeat/median aggregation (:mod:`repro.bench.runner`), machine
fingerprinting and peak-RSS sampling (:mod:`repro.bench.machine`), and
a schema-versioned ``BENCH_<scenario>.json`` record format with
baseline comparison (:mod:`repro.bench.schema`).  The ``repro bench``
CLI (:mod:`repro.bench.cli`) emits the records the repo commits at its
root and CI gates regressions against.
"""

from repro.bench.machine import machine_fingerprint, peak_rss_mb
from repro.bench.runner import TimingResult, summarize_times, time_callable
from repro.bench.scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioRequest,
    ScenarioResult,
    available_scenarios,
    register_scenario,
    run_scenario,
)
from repro.bench.schema import (
    MODES,
    NONDETERMINISTIC_KEYS,
    SCHEMA_VERSION,
    ComparisonResult,
    bench_filename,
    build_record,
    compare_records,
    load_record,
    strip_nondeterministic,
    validate_record,
)

__all__ = [
    "machine_fingerprint",
    "peak_rss_mb",
    "TimingResult",
    "summarize_times",
    "time_callable",
    "SCENARIOS",
    "Scenario",
    "ScenarioRequest",
    "ScenarioResult",
    "available_scenarios",
    "register_scenario",
    "run_scenario",
    "MODES",
    "NONDETERMINISTIC_KEYS",
    "SCHEMA_VERSION",
    "ComparisonResult",
    "bench_filename",
    "build_record",
    "compare_records",
    "load_record",
    "strip_nondeterministic",
    "validate_record",
]
