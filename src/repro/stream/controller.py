"""The streaming control loop: sub-slot ticks, policy-driven actions.

:class:`StreamingController` runs any
:class:`~repro.core.controller.Dispatcher` under a
:class:`~repro.stream.policy.ControlPolicy` over a tick stream produced
by :class:`~repro.stream.events.TraceEventSource`.  Each tick it

1. forms the planning estimate (oracle slot truth, or the online
   estimator bank's sliding-window rate),
2. sheds load beyond the fleet's deadline-safe capacity (MD043),
3. asks the policy to hold / repair / resolve,
4. executes the action (a failed repair escalates to a full solve),
5. scores the standing plan against the *true* tick arrivals with
   :func:`~repro.core.objective.evaluate_plan` — which is linear in
   duration, so per-tick outcomes sum exactly to per-slot outcomes,
6. feeds the observation into the estimator bank.

Per-slot aggregates are emitted as the same
:class:`~repro.core.controller.SlotRecord` the slotted controller
yields, so downstream tooling (ledgers, tables, traces) works
unchanged; streaming-specific counters land on the collector under the
``stream.`` prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.controller import (
    Dispatcher,
    SlotRecord,
    _cap_to_arrivals,
)
from repro.core.objective import NetProfitBreakdown, evaluate_plan
from repro.core.plan import DispatchPlan
from repro.market.market import MultiElectricityMarket
from repro.obs.collectors import NULL_COLLECTOR, Collector
from repro.stream.admission import deadline_safe_capacity, shed_to_capacity
from repro.stream.estimators import RateEstimatorBank
from repro.stream.events import TraceEventSource
from repro.stream.policy import ControlAction, ControlContext, ControlPolicy
from repro.stream.repair import plan_margin, repair_plan
from repro.utils.rng import SeedLike
from repro.workload.traces import WorkloadTrace

__all__ = ["StreamingController", "StreamingResult"]

_ESTIMATION_MODES = ("oracle", "online")

#: Denominator floor for the estimate-vs-planned deviation signal.
_RATE_FLOOR = 1e-9


@dataclass(frozen=True)
class StreamingResult:
    """Outcome of one streaming run."""

    policy: str
    records: List[SlotRecord] = field(repr=False)
    ticks: int = 0
    #: Full warm-started ``plan_slot`` solves (including escalations).
    full_solves: int = 0
    #: Successful in-place plan repairs.
    repairs: int = 0
    #: Repairs whose coverage fell short and escalated to a solve.
    repair_escalations: int = 0
    #: Estimator drift events observed during the run.
    drift_events: int = 0
    #: Requests turned away by admission control (rate x duration).
    shed_requests: float = 0.0
    #: Mean relative L1 error of the planning estimate vs observations.
    estimator_rel_error: float = 0.0

    @property
    def num_slots(self) -> int:
        return len(self.records)

    @property
    def net_profit_series(self) -> np.ndarray:
        return np.array([r.outcome.net_profit for r in self.records])

    @property
    def total_net_profit(self) -> float:
        return float(self.net_profit_series.sum())


class StreamingController:
    """Policy-driven sub-slot control loop over a workload trace.

    Parameters
    ----------
    dispatcher:
        Any :class:`~repro.core.controller.Dispatcher`; a warm-started
        :class:`~repro.core.optimizer.ProfitAwareOptimizer` makes the
        frequent re-solves cheap.
    trace / market:
        Same workload/market pair the slotted controller takes.
    policy:
        When-to-act strategy (see :mod:`repro.stream.policy`).
    ticks_per_slot / synthesis / seed:
        Forwarded to :class:`~repro.stream.events.TraceEventSource`.
    estimation:
        ``"oracle"`` plans on the true slot-average rates (the
        slotted-equivalence configuration); ``"online"`` plans on the
        estimator bank's sliding-window rate.
    admission:
        When True (default), offered load beyond the MD043
        deadline-safe capacity is shed before planning.
    repair_margin:
        Minimum :class:`~repro.stream.repair.RepairOutcome` coverage
        for a repair to stand; below it the controller escalates to a
        full solve.
    estimators:
        Optional pre-configured :class:`RateEstimatorBank` (a default
        bank is built otherwise).
    """

    def __init__(
        self,
        dispatcher: Dispatcher,
        trace: WorkloadTrace,
        market: MultiElectricityMarket,
        policy: ControlPolicy,
        *,
        ticks_per_slot: int = 12,
        synthesis: str = "fluid",
        seed: SeedLike = 0,
        estimation: str = "oracle",
        admission: bool = True,
        repair_margin: float = 0.98,
        apply_pue: bool = False,
        collector: Optional[Collector] = None,
        estimators: Optional[RateEstimatorBank] = None,
    ) -> None:
        if estimation not in _ESTIMATION_MODES:
            raise ValueError(
                f"estimation must be one of {_ESTIMATION_MODES} "
                f"(got {estimation!r})"
            )
        if not 0.0 < repair_margin <= 1.0:
            raise ValueError(
                f"repair_margin must be in (0, 1] (got {repair_margin})"
            )
        self.dispatcher = dispatcher
        self.trace = trace
        self.market = market
        self.policy = policy
        self.estimation = estimation
        self.admission = admission
        self.repair_margin = float(repair_margin)
        self.apply_pue = apply_pue
        self.collector = collector if collector is not None else NULL_COLLECTOR
        self.source = TraceEventSource(
            trace, ticks_per_slot=ticks_per_slot,
            synthesis=synthesis, seed=seed,
        )
        shape = (trace.num_classes, trace.num_frontends)
        self.estimators = estimators if estimators is not None \
            else RateEstimatorBank(shape)
        topology = getattr(dispatcher, "topology", None)
        self._safe_capacity = (
            deadline_safe_capacity(topology) if topology is not None else None
        )

    @staticmethod
    def _deviation(estimate: np.ndarray, planned: np.ndarray) -> float:
        return float(
            np.abs(estimate - planned).sum()
            / max(float(planned.sum()), _RATE_FLOOR)
        )

    def _estimate(self, observed: np.ndarray,
                  truth: np.ndarray) -> np.ndarray:
        if self.estimation == "oracle":
            return truth
        if self.estimators.initialized:
            return self.estimators.rate
        return observed

    def run(self, num_slots: Optional[int] = None) -> StreamingResult:
        """Run the streaming loop and return per-slot records + counters."""
        collector = self.collector
        self.policy.reset()
        self.estimators.reset()
        reset = getattr(self.dispatcher, "reset_warm_state", None)
        if callable(reset):
            reset()

        plan: Optional[DispatchPlan] = None
        planned_for: Optional[np.ndarray] = None
        drift_pending = False
        full_solves = repairs = escalations = drift_events = ticks = 0
        shed_requests = 0.0
        error_sum = 0.0
        error_samples = 0

        records: List[SlotRecord] = []
        slot_outcomes: List[NetProfitBreakdown] = []
        slot_truth: List[np.ndarray] = []
        current_slot = -1
        current_prices = np.zeros(0)

        def flush_slot() -> None:
            if not slot_outcomes:
                return
            assert plan is not None
            combined = _sum_outcomes(slot_outcomes, self.trace.slot_duration)
            records.append(SlotRecord(
                slot=current_slot,
                plan=plan,
                outcome=combined,
                prices=current_prices,
                arrivals=np.mean(slot_truth, axis=0),
            ))
            slot_outcomes.clear()
            slot_truth.clear()

        for batch in self.source.events(num_slots):
            if batch.slot != current_slot:
                flush_slot()
                current_slot = batch.slot
                current_prices = self.market.prices_at(batch.slot)

            estimate = self._estimate(batch.rates, batch.true_rates)
            if self.admission and self._safe_capacity is not None:
                admitted, shed = shed_to_capacity(
                    estimate, self._safe_capacity
                )
                shed_now = float(shed.sum()) * batch.duration
                if shed_now > 0.0:
                    shed_requests += shed_now
                    collector.increment("stream.shed_requests", shed_now)
            else:
                admitted = estimate

            ctx = ControlContext(
                tick=batch.tick,
                slot=batch.slot,
                tick_in_slot=batch.tick_in_slot,
                slot_start=batch.slot_start,
                estimate=admitted,
                planned=planned_for,
                has_plan=plan is not None,
                drift=drift_pending,
                deviation=(
                    self._deviation(admitted, planned_for)
                    if planned_for is not None else float("inf")
                ),
                sla_margin=(
                    plan_margin(plan, admitted)
                    if plan is not None else 1.0
                ),
            )
            action = self.policy.decide(ctx)
            drift_pending = False

            if action.kind == "repair" and plan is not None:
                outcome = repair_plan(plan, admitted)
                if outcome.coverage >= self.repair_margin:
                    plan = outcome.plan
                    planned_for = admitted
                    repairs += 1
                    collector.increment("stream.repairs")
                else:
                    escalations += 1
                    collector.increment("stream.repair_escalations")
                    action = ControlAction.resolve(
                        f"repair coverage {outcome.coverage:.3f} < "
                        f"{self.repair_margin:g}"
                    )
            if action.kind == "resolve" or plan is None:
                with collector.timer("stream.plan_slot"):
                    plan = self.dispatcher.plan_slot(
                        admitted, current_prices,
                        slot_duration=self.trace.slot_duration,
                    )
                planned_for = admitted
                full_solves += 1
                collector.increment("stream.resolves")

            scored = _cap_to_arrivals(plan, batch.true_rates)
            tick_outcome = evaluate_plan(
                scored, batch.true_rates, current_prices,
                slot_duration=batch.duration, apply_pue=self.apply_pue,
            )
            slot_outcomes.append(tick_outcome)
            slot_truth.append(batch.true_rates)

            drifted = self.estimators.observe(batch.rates)
            if drifted:
                drift_pending = True
                drift_events += 1
                collector.increment("stream.drift_events")
            if self.estimators.ticks > 1:
                error_sum += self.estimators.last_rel_error
                error_samples += 1
                collector.observe(
                    "stream.estimator_rel_error",
                    self.estimators.last_rel_error,
                )
            ticks += 1
            collector.increment("stream.ticks")

        flush_slot()
        return StreamingResult(
            policy=self.policy.name,
            records=records,
            ticks=ticks,
            full_solves=full_solves,
            repairs=repairs,
            repair_escalations=escalations,
            drift_events=drift_events,
            shed_requests=shed_requests,
            estimator_rel_error=(
                error_sum / error_samples if error_samples else 0.0
            ),
        )


def _sum_outcomes(
    outcomes: List[NetProfitBreakdown], slot_duration: float
) -> NetProfitBreakdown:
    """Sum per-tick breakdowns into one per-slot breakdown.

    Dollar figures and kWh add directly; rate vectors combine as
    duration-weighted means so the slot record reports slot-average
    rates, matching the slotted controller's convention.
    """
    total_duration = sum(o.slot_duration for o in outcomes)
    weight = np.array([o.slot_duration for o in outcomes])
    weight = weight / max(total_duration, 1e-300)
    served = np.sum(
        [w * o.served_rates for w, o in zip(weight, outcomes)], axis=0
    )
    offered = np.sum(
        [w * o.offered_rates for w, o in zip(weight, outcomes)], axis=0
    )
    dc_loads = np.sum(
        [w * o.dc_loads for w, o in zip(weight, outcomes)], axis=0
    )
    return NetProfitBreakdown(
        revenue=float(sum(o.revenue for o in outcomes)),
        energy_cost=float(sum(o.energy_cost for o in outcomes)),
        transfer_cost=float(sum(o.transfer_cost for o in outcomes)),
        served_rates=served,
        offered_rates=offered,
        dc_loads=dc_loads,
        energy_kwh=float(sum(o.energy_kwh for o in outcomes)),
        slot_duration=slot_duration,
        idle_cost=float(sum(o.idle_cost for o in outcomes)),
    )
