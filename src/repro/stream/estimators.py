"""Online arrival-rate estimators for the streaming control plane.

All estimators are vectorized over the ``(K, S)`` class × front-end
grid: one logical estimator per stream, one ndarray per bank.  The
:class:`RateEstimatorBank` pairs a reactive sliding-window mean (the
planning estimate) with a slower EWMA baseline and flags *drift* when
the two disagree persistently — the streaming analogue of "the slot
average has moved, re-plan".
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "DriftDetector",
    "EWMAEstimator",
    "RateEstimatorBank",
    "SlidingWindowEstimator",
]

#: Denominator floor for relative deviations, so an all-idle baseline
#: (zero estimated rate everywhere) never divides by zero.
_RATE_FLOOR = 1e-9


class EWMAEstimator:
    """Exponentially weighted moving average over ``(K, S)`` rates.

    The first observation initialises the estimate directly (no bias
    toward zero); afterwards ``est <- (1 - alpha) * est + alpha * obs``.
    Small ``alpha`` → long memory → a slow baseline.
    """

    def __init__(self, alpha: float, shape: Tuple[int, int]) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1] (got {alpha})")
        self.alpha = float(alpha)
        self.shape = shape
        self._estimate: Optional[np.ndarray] = None

    @property
    def initialized(self) -> bool:
        return self._estimate is not None

    @property
    def estimate(self) -> np.ndarray:
        """Current ``(K, S)`` rate estimate (zeros before the first obs)."""
        if self._estimate is None:
            return np.zeros(self.shape)
        return self._estimate.copy()

    def observe(self, rates: np.ndarray) -> None:
        rates = np.asarray(rates, dtype=float)
        if rates.shape != self.shape:
            raise ValueError(f"rates must have shape {self.shape}")
        if self._estimate is None:
            self._estimate = rates.copy()
        else:
            self._estimate += self.alpha * (rates - self._estimate)

    def reset_to(self, rates: np.ndarray) -> None:
        """Re-anchor the baseline (used after a confirmed drift)."""
        rates = np.asarray(rates, dtype=float)
        if rates.shape != self.shape:
            raise ValueError(f"rates must have shape {self.shape}")
        self._estimate = rates.copy()

    def reset(self) -> None:
        self._estimate = None


class SlidingWindowEstimator:
    """Mean of the last ``window`` observations per ``(K, S)`` stream."""

    def __init__(self, window: int, shape: Tuple[int, int]) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1 (got {window})")
        self.window = int(window)
        self.shape = shape
        self._buffer = np.zeros((self.window,) + shape)
        self._count = 0
        self._head = 0

    @property
    def num_samples(self) -> int:
        return min(self._count, self.window)

    @property
    def estimate(self) -> np.ndarray:
        """Mean over the filled part of the window (zeros when empty)."""
        n = self.num_samples
        if n == 0:
            return np.zeros(self.shape)
        return self._buffer[:n].mean(axis=0) if self._count <= self.window \
            else self._buffer.mean(axis=0)

    def observe(self, rates: np.ndarray) -> None:
        rates = np.asarray(rates, dtype=float)
        if rates.shape != self.shape:
            raise ValueError(f"rates must have shape {self.shape}")
        self._buffer[self._head] = rates
        self._head = (self._head + 1) % self.window
        self._count += 1

    def reset(self) -> None:
        self._buffer[:] = 0.0
        self._count = 0
        self._head = 0


class DriftDetector:
    """Persistence-gated drift flag on a scalar deviation signal.

    Fires when the deviation stays above ``threshold`` for ``patience``
    consecutive updates; a single noisy tick never triggers.  After
    firing the streak resets, so the caller gets one event per episode
    (provided it re-anchors the baseline, which
    :class:`RateEstimatorBank` does).
    """

    def __init__(self, threshold: float, patience: int = 2) -> None:
        if threshold <= 0.0:
            raise ValueError(f"threshold must be > 0 (got {threshold})")
        if patience < 1:
            raise ValueError(f"patience must be >= 1 (got {patience})")
        self.threshold = float(threshold)
        self.patience = int(patience)
        self._streak = 0
        self.events = 0

    def update(self, deviation: float) -> bool:
        """Feed one deviation sample; return True when drift fires."""
        if deviation > self.threshold:
            self._streak += 1
        else:
            self._streak = 0
        if self._streak >= self.patience:
            self._streak = 0
            self.events += 1
            return True
        return False

    def reset(self) -> None:
        self._streak = 0
        self.events = 0


class RateEstimatorBank:
    """EWMA baseline + sliding-window estimate + drift detection.

    ``observe`` feeds one tick of observed ``(K, S)`` rates into both
    estimators, computes the aggregate relative L1 deviation between
    the fast window mean and the slow EWMA baseline, and runs the
    drift detector on it.  On a confirmed drift the EWMA baseline is
    re-anchored to the window mean so the detector re-arms instead of
    firing every subsequent tick.

    Parameters
    ----------
    shape:
        ``(K, S)`` stream grid.
    alpha:
        EWMA smoothing weight (slow baseline).
    window:
        Sliding-window length in ticks (fast estimate).
    drift_threshold / drift_patience:
        Relative-deviation trigger for the :class:`DriftDetector`.
    """

    def __init__(
        self,
        shape: Tuple[int, int],
        *,
        alpha: float = 0.2,
        window: int = 6,
        drift_threshold: float = 0.25,
        drift_patience: int = 2,
    ) -> None:
        self.shape = shape
        self.ewma = EWMAEstimator(alpha, shape)
        self.window = SlidingWindowEstimator(window, shape)
        self.detector = DriftDetector(drift_threshold, drift_patience)
        self.ticks = 0
        #: Relative L1 error of the *previous* planning estimate against
        #: the most recent observation — the "estimator error" counter.
        self.last_rel_error = 0.0

    @property
    def initialized(self) -> bool:
        return self.ewma.initialized

    @property
    def rate(self) -> np.ndarray:
        """Planning estimate: the reactive sliding-window mean."""
        return self.window.estimate

    @property
    def baseline(self) -> np.ndarray:
        """Slow EWMA baseline the drift signal compares against."""
        return self.ewma.estimate

    @property
    def drift_events(self) -> int:
        return self.detector.events

    @staticmethod
    def _rel_l1(a: np.ndarray, b: np.ndarray) -> float:
        """Aggregate relative L1 deviation ``sum|a-b| / max(sum b, floor)``."""
        return float(np.abs(a - b).sum() / max(float(np.abs(b).sum()),
                                               _RATE_FLOOR))

    def observe(self, rates: np.ndarray) -> bool:
        """Feed one tick of observed rates; return True on drift."""
        rates = np.asarray(rates, dtype=float)
        if rates.shape != self.shape:
            raise ValueError(f"rates must have shape {self.shape}")
        if self.initialized:
            self.last_rel_error = self._rel_l1(rates, self.rate)
        self.ewma.observe(rates)
        self.window.observe(rates)
        self.ticks += 1
        deviation = self._rel_l1(self.window.estimate, self.ewma.estimate)
        drifted = self.detector.update(deviation)
        if drifted:
            self.ewma.reset_to(self.window.estimate)
        return drifted

    def reset(self) -> None:
        self.ewma.reset()
        self.window.reset()
        self.detector.reset()
        self.ticks = 0
        self.last_rel_error = 0.0
