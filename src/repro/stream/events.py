"""Arrival-event sources that drive the streaming controller.

A :class:`TraceEventSource` slices a slotted
:class:`~repro.workload.traces.WorkloadTrace` into ``ticks_per_slot``
sub-slot :class:`ArrivalBatch` events.  Two synthesis modes:

* ``"fluid"`` — the observed rates *are* the slot-average truth
  (deterministic; this is what the slotted-equivalence pin runs on);
* ``"poisson"`` — observed rates are Poisson request counts over the
  tick divided by the tick duration (seeded, reproducible), so online
  estimators see realistic sampling noise while ground truth stays the
  slot average.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.workload.traces import WorkloadTrace

__all__ = ["ArrivalBatch", "TraceEventSource"]

_SYNTHESIS_MODES = ("fluid", "poisson")


@dataclass(frozen=True)
class ArrivalBatch:
    """One tick's worth of per-front-end arrivals.

    Attributes
    ----------
    tick / slot / tick_in_slot:
        Global tick index and its position on the slot grid.
    duration:
        Tick length in the trace's time unit (slot_duration / ticks).
    rates:
        Observed ``(K, S)`` arrival rates over the tick — what an online
        estimator gets to see.
    true_rates:
        Ground-truth slot-average rates (the oracle signal; equals
        ``rates`` under fluid synthesis).
    """

    tick: int
    slot: int
    tick_in_slot: int
    duration: float
    rates: np.ndarray = field(repr=False)
    true_rates: np.ndarray = field(repr=False)

    @property
    def slot_start(self) -> bool:
        return self.tick_in_slot == 0


class TraceEventSource:
    """Slice a slotted workload trace into sub-slot arrival batches."""

    def __init__(
        self,
        trace: WorkloadTrace,
        ticks_per_slot: int = 12,
        synthesis: str = "fluid",
        seed: SeedLike = 0,
    ) -> None:
        if ticks_per_slot < 1:
            raise ValueError(
                f"ticks_per_slot must be >= 1 (got {ticks_per_slot})"
            )
        if synthesis not in _SYNTHESIS_MODES:
            raise ValueError(
                f"synthesis must be one of {_SYNTHESIS_MODES} "
                f"(got {synthesis!r})"
            )
        self.trace = trace
        self.ticks_per_slot = int(ticks_per_slot)
        self.synthesis = synthesis
        self.tick_duration = trace.slot_duration / self.ticks_per_slot
        self._rng = as_generator(seed)

    def _observed(self, true_rates: np.ndarray) -> np.ndarray:
        if self.synthesis == "fluid":
            return true_rates
        counts = self._rng.poisson(true_rates * self.tick_duration)
        return counts.astype(float) / self.tick_duration

    def events(self, num_slots: Optional[int] = None) -> Iterator[ArrivalBatch]:
        """Yield one :class:`ArrivalBatch` per tick, slot by slot."""
        total = num_slots if num_slots is not None else self.trace.num_slots
        tick = 0
        for slot in range(total):
            true_rates = self.trace.arrivals_at(slot)
            for j in range(self.ticks_per_slot):
                yield ArrivalBatch(
                    tick=tick,
                    slot=slot,
                    tick_in_slot=j,
                    duration=self.tick_duration,
                    rates=self._observed(true_rates),
                    true_rates=true_rates,
                )
                tick += 1
