"""The pluggable ``ControlPolicy`` protocol and shipped policies.

A policy answers one question per tick: given the current arrival
estimate and the standing plan's health, should the controller **hold**
the plan, **repair** it (re-dispatch the delta along existing routes),
or **resolve** (full warm-started ``plan_slot``)?  The controller owns
*how* each action is executed; policies only decide *when* — the
acnportal ``BaseAlgorithm``/``OptimizationScheduler`` separation.

Shipped policies:

================== ====================================================
:class:`PeriodicResolve`  resolve every ``period`` slots at the slot
                          boundary; the paper's slotted behaviour.
:class:`DriftTriggered`   resolve on estimator drift or plan staleness,
                          repair on moderate deviation, else hold.
:class:`MarginTriggered`  resolve when the standing plan's SLA margin
                          decays below a floor, repair on deviation.
================== ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "ControlAction",
    "ControlContext",
    "ControlPolicy",
    "DriftTriggered",
    "MarginTriggered",
    "PeriodicResolve",
    "make_policy",
]

_ACTION_KINDS = ("hold", "repair", "resolve")


@dataclass(frozen=True)
class ControlAction:
    """A policy's verdict for one tick."""

    kind: str
    reason: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _ACTION_KINDS:
            raise ValueError(
                f"kind must be one of {_ACTION_KINDS} (got {self.kind!r})"
            )

    @classmethod
    def hold(cls, reason: str = "") -> "ControlAction":
        return cls("hold", reason)

    @classmethod
    def repair(cls, reason: str = "") -> "ControlAction":
        return cls("repair", reason)

    @classmethod
    def resolve(cls, reason: str = "") -> "ControlAction":
        return cls("resolve", reason)


@dataclass(frozen=True)
class ControlContext:
    """Everything a policy may look at when deciding one tick.

    Attributes
    ----------
    tick / slot / tick_in_slot / slot_start:
        Position on the tick grid.
    estimate:
        Admitted ``(K, S)`` planning estimate for this tick.
    planned:
        The arrival grid the standing plan was last solved/repaired
        for (``None`` before the first solve).
    has_plan:
        Whether a standing plan exists.
    drift:
        True when the estimator bank flagged drift on the previous
        observation.
    deviation:
        Aggregate relative L1 deviation of ``estimate`` vs ``planned``
        (``inf`` when there is no standing plan).
    sla_margin:
        Minimum relative deadline headroom of the standing plan under
        ``estimate`` (see :func:`repro.stream.repair.plan_margin`);
        1.0 when there is no load or no plan.
    """

    tick: int
    slot: int
    tick_in_slot: int
    slot_start: bool
    estimate: np.ndarray = field(repr=False)
    planned: Optional[np.ndarray] = field(repr=False)
    has_plan: bool = False
    drift: bool = False
    deviation: float = float("inf")
    sla_margin: float = 1.0


@runtime_checkable
class ControlPolicy(Protocol):
    """When-to-act strategy plugged into the streaming controller.

    Implementations need a ``name``, a ``reset`` (called once per run),
    and a pure ``decide`` mapping a :class:`ControlContext` to a
    :class:`ControlAction`.  Policies must not execute actions
    themselves — the controller owns solving, repairing, and scoring.
    """

    name: str

    def reset(self) -> None:
        ...

    def decide(self, ctx: ControlContext) -> ControlAction:
        ...


class PeriodicResolve:
    """Resolve at every ``period``-th slot boundary; hold in between.

    With ``period=1`` this reproduces the paper's slotted controller
    exactly (one solve per slot on the slot-average rates) — pinned by
    the equivalence test in the bench suite.
    """

    def __init__(self, period: int = 1) -> None:
        if period < 1:
            raise ValueError(f"period must be >= 1 (got {period})")
        self.period = int(period)
        self.name = f"periodic[{self.period}]" if self.period != 1 \
            else "periodic"

    def reset(self) -> None:
        return None

    def decide(self, ctx: ControlContext) -> ControlAction:
        if not ctx.has_plan:
            return ControlAction.resolve("bootstrap")
        if ctx.slot_start and ctx.slot % self.period == 0:
            return ControlAction.resolve("slot boundary")
        return ControlAction.hold()


class DriftTriggered:
    """Resolve on drift or staleness, repair on moderate deviation.

    Parameters
    ----------
    resolve_deviation:
        Relative L1 deviation of the estimate vs the planned arrivals
        beyond which the standing plan is considered stale (full
        re-solve).
    repair_deviation:
        Deviation beyond which the plan is re-scaled in place.  Below
        it the plan holds untouched.
    """

    name = "drift"

    def __init__(
        self,
        resolve_deviation: float = 0.15,
        repair_deviation: float = 0.02,
    ) -> None:
        if resolve_deviation <= 0 or repair_deviation < 0:
            raise ValueError("deviation thresholds must be positive")
        if repair_deviation > resolve_deviation:
            raise ValueError(
                "repair_deviation must not exceed resolve_deviation"
            )
        self.resolve_deviation = float(resolve_deviation)
        self.repair_deviation = float(repair_deviation)

    def reset(self) -> None:
        return None

    def decide(self, ctx: ControlContext) -> ControlAction:
        if not ctx.has_plan:
            return ControlAction.resolve("bootstrap")
        if ctx.drift:
            return ControlAction.resolve("estimator drift")
        if ctx.deviation > self.resolve_deviation:
            return ControlAction.resolve(
                f"plan stale (deviation {ctx.deviation:.3f})"
            )
        if ctx.deviation > self.repair_deviation:
            return ControlAction.repair(
                f"dispatch delta (deviation {ctx.deviation:.3f})"
            )
        return ControlAction.hold()


class MarginTriggered:
    """Resolve when the standing plan's SLA margin decays below a floor.

    Watches :attr:`ControlContext.sla_margin` — the minimum relative
    deadline headroom over loaded servers if the standing plan served
    the current estimate.  Margin below ``margin_floor`` means some
    server is within that fraction of its deadline-safe rate: re-solve
    before the deadline is breached.  Moderate deviations without
    margin pressure are handled by cheap repairs.
    """

    name = "margin"

    def __init__(
        self,
        margin_floor: float = 0.2,
        repair_deviation: float = 0.02,
    ) -> None:
        if not 0.0 <= margin_floor < 1.0:
            raise ValueError(
                f"margin_floor must be in [0, 1) (got {margin_floor})"
            )
        if repair_deviation < 0:
            raise ValueError("repair_deviation must be >= 0")
        self.margin_floor = float(margin_floor)
        self.repair_deviation = float(repair_deviation)

    def reset(self) -> None:
        return None

    def decide(self, ctx: ControlContext) -> ControlAction:
        if not ctx.has_plan:
            return ControlAction.resolve("bootstrap")
        if ctx.sla_margin < self.margin_floor:
            return ControlAction.resolve(
                f"margin decay ({ctx.sla_margin:.3f} < "
                f"{self.margin_floor:g})"
            )
        if ctx.deviation > self.repair_deviation:
            return ControlAction.repair(
                f"dispatch delta (deviation {ctx.deviation:.3f})"
            )
        return ControlAction.hold()


def make_policy(name: str) -> ControlPolicy:
    """Construct a shipped policy by CLI name."""
    if name == "periodic":
        return PeriodicResolve()
    if name == "drift":
        return DriftTriggered()
    if name == "margin":
        return MarginTriggered()
    raise ValueError(
        f"unknown policy {name!r}; expected periodic, drift, or margin"
    )
