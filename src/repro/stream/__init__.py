"""Online sub-slot control plane (streaming load balancing).

The paper's controller is batch: one solve per hourly slot on the
slot-average arrival rates (§III).  This package closes the gap to an
online system: a :class:`StreamingController` ingests per-front-end
arrival batches at sub-slot granularity, keeps online rate estimates
(EWMA + sliding window with drift detection), and asks a pluggable
:class:`ControlPolicy` *when* to act instead of acting on the wall
clock.  Actions reuse the standing plan where possible — incremental
:func:`repair_plan` re-dispatches only the delta along existing routes —
and escalate to a full warm-started ``plan_slot`` solve only when the
repair margin is exhausted.  Offered load beyond the fleet's
deadline-safe capacity (the auditor's MD043 signal) is shed *before*
planning, so the optimizer never sees an infeasible slot.

Shipped policies:

* :class:`PeriodicResolve` — resolve at every slot boundary; reproduces
  the paper's slotted behaviour exactly (pinned by an equivalence test);
* :class:`DriftTriggered` — resolve on estimator drift or plan
  staleness, repair on small deviations, otherwise hold;
* :class:`MarginTriggered` — resolve when the standing plan's SLA
  margin decays below a floor.
"""

from repro.stream.admission import deadline_safe_capacity, shed_to_capacity
from repro.stream.controller import StreamingController, StreamingResult
from repro.stream.estimators import (
    DriftDetector,
    EWMAEstimator,
    RateEstimatorBank,
    SlidingWindowEstimator,
)
from repro.stream.events import ArrivalBatch, TraceEventSource
from repro.stream.policy import (
    ControlAction,
    ControlContext,
    ControlPolicy,
    DriftTriggered,
    MarginTriggered,
    PeriodicResolve,
    make_policy,
)
from repro.stream.repair import RepairOutcome, plan_margin, repair_plan

__all__ = [
    "ArrivalBatch",
    "ControlAction",
    "ControlContext",
    "ControlPolicy",
    "DriftDetector",
    "DriftTriggered",
    "EWMAEstimator",
    "MarginTriggered",
    "PeriodicResolve",
    "RateEstimatorBank",
    "RepairOutcome",
    "SlidingWindowEstimator",
    "StreamingController",
    "StreamingResult",
    "TraceEventSource",
    "deadline_safe_capacity",
    "make_policy",
    "plan_margin",
    "repair_plan",
    "shed_to_capacity",
]
