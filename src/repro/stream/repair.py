"""Incremental plan repair: re-dispatch the delta along standing routes.

A full ``plan_slot`` solve picks routes *and* CPU shares.  When the
arrival estimate moves only a little, the standing plan's routing
weights and shares are usually still near-optimal — re-scaling each
``(class, front-end)`` row of the dispatch tensor to the new target
rate, capped at every server's deadline-safe rate, is orders of
magnitude cheaper than a solve.  :func:`repair_plan` does exactly that
and reports the achieved *coverage*; the streaming controller escalates
to a full solve when coverage falls below its repair margin.

:func:`plan_margin` is the companion health signal: the minimum relative
headroom of the standing plan's loaded servers against their
deadline-safe rates under a hypothetical arrival grid — the quantity
:class:`~repro.stream.policy.MarginTriggered` watches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.formulation import DEADLINE_SAFETY
from repro.core.plan import DispatchPlan

__all__ = ["RepairOutcome", "plan_margin", "repair_plan"]

#: Loads below this are treated as "no route" / "unloaded".
_LOAD_TOL = 1e-12


def _effective_deadlines(
    plan: DispatchPlan, deadlines: Optional[np.ndarray]
) -> np.ndarray:
    if deadlines is not None:
        return np.asarray(deadlines, dtype=float)
    return np.array(
        [rc.deadline for rc in plan.topology.request_classes]
    ) * (1.0 - DEADLINE_SAFETY)


def _safe_server_rates(
    plan: DispatchPlan, deadlines: np.ndarray
) -> np.ndarray:
    """``(K, N)`` deadline-safe max rate of each server under the plan's
    CPU shares: ``max(0, share * C * mu - 1/D)``."""
    effective = plan.shares * plan.server_service_rates()
    return np.asarray(np.clip(
        effective - 1.0 / deadlines[:, None], 0.0, None
    ))


@dataclass(frozen=True)
class RepairOutcome:
    """Result of one :func:`repair_plan` call."""

    plan: DispatchPlan = field(repr=False)
    #: Fraction of the target rate the repaired plan dispatches
    #: (1.0 = full coverage; < 1 when routes or capacity are missing).
    coverage: float
    delivered: float
    target: float


def repair_plan(
    plan: DispatchPlan,
    target: np.ndarray,
    deadlines: Optional[np.ndarray] = None,
) -> RepairOutcome:
    """Re-scale a standing plan to a new ``(K, S)`` arrival target.

    Each ``(k, s)`` row keeps its routing weights (the standing plan's
    per-server split) and is scaled to the new target rate; the summed
    per-server loads are then capped at the deadline-safe rate implied
    by the standing CPU shares.  Rows the standing plan never routed
    (zero dispatch) stay zero — repair cannot invent routes, only move
    volume along existing ones; missing volume shows up as coverage
    < 1 and triggers escalation to a full solve.
    """
    target = np.asarray(target, dtype=float)
    if target.shape != plan.rates.shape[:2]:
        raise ValueError(
            f"target must have shape {plan.rates.shape[:2]}"
        )
    deadlines = _effective_deadlines(plan, deadlines)

    row_totals = plan.rates.sum(axis=2)  # (K, S)
    with np.errstate(divide="ignore", invalid="ignore"):
        weights = np.where(
            row_totals[:, :, None] > _LOAD_TOL,
            plan.rates / np.maximum(row_totals, _LOAD_TOL)[:, :, None],
            0.0,
        )
    rates = target[:, :, None] * weights  # (K, S, N)

    # Cap each (class, server) load at its deadline-safe rate by
    # uniformly shrinking that server's share of every front-end row.
    loads = rates.sum(axis=1)  # (K, N)
    safe = _safe_server_rates(plan, deadlines)
    with np.errstate(divide="ignore", invalid="ignore"):
        scale = np.where(
            loads > safe, safe / np.maximum(loads, _LOAD_TOL), 1.0
        )
    rates *= np.clip(scale, 0.0, 1.0)[:, None, :]

    repaired = DispatchPlan(
        topology=plan.topology, rates=rates, shares=plan.shares
    )
    delivered = float(rates.sum())
    wanted = float(target.sum())
    coverage = 1.0 if wanted <= _LOAD_TOL else delivered / wanted
    return RepairOutcome(
        plan=repaired, coverage=coverage, delivered=delivered, target=wanted
    )


def plan_margin(
    plan: DispatchPlan,
    target: np.ndarray,
    deadlines: Optional[np.ndarray] = None,
) -> float:
    """SLA margin of a standing plan under a hypothetical arrival grid.

    Projects ``target`` onto the plan's routes (same weights as
    :func:`repair_plan`, uncapped) and returns the minimum relative
    headroom ``(safe - load) / safe`` over loaded servers, clipped to
    ``[-1, 1]``.  1.0 = idle/no load; 0 = a server exactly at its
    deadline-safe rate; negative = the standing plan would violate the
    deadline at those rates.  Demand on routes the plan does not serve
    counts as zero-headroom pressure only through coverage (see
    :func:`repair_plan`), not through this signal.
    """
    target = np.asarray(target, dtype=float)
    deadlines = _effective_deadlines(plan, deadlines)
    row_totals = plan.rates.sum(axis=2)
    with np.errstate(divide="ignore", invalid="ignore"):
        weights = np.where(
            row_totals[:, :, None] > _LOAD_TOL,
            plan.rates / np.maximum(row_totals, _LOAD_TOL)[:, :, None],
            0.0,
        )
    loads = (target[:, :, None] * weights).sum(axis=1)  # (K, N)
    safe = _safe_server_rates(plan, deadlines)
    loaded = loads > _LOAD_TOL
    if not bool(loaded.any()):
        return 1.0
    with np.errstate(divide="ignore", invalid="ignore"):
        headroom = (safe - loads) / np.maximum(safe, _LOAD_TOL)
    return float(np.clip(headroom[loaded], -1.0, 1.0).min())
