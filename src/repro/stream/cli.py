"""The ``repro stream`` subcommand: run the streaming control plane.

Runs a scenario's workload through :class:`StreamingController` under a
chosen policy and prints per-slot profits plus the streaming counters
(full solves, repairs, shed requests, drift events, estimator error).
``--json`` writes the summary as machine-readable JSON for CI smoke
assertions.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict

from repro.cli_registry import register_subcommand

__all__ = ["add_stream_arguments", "run_stream"]


def add_stream_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the stream options to a (sub)parser."""
    parser.add_argument(
        "--scenario", choices=["section5", "section6", "section7"],
        default="section6",
        help="experiment supplying workload/market (default: the §VI day)",
    )
    parser.add_argument(
        "--policy", choices=["periodic", "drift", "margin"],
        default="drift",
        help="control policy deciding when to re-plan (default: drift)",
    )
    parser.add_argument(
        "--slots", type=int, default=None,
        help="number of slots to stream (default: the whole trace)",
    )
    parser.add_argument(
        "--ticks-per-slot", type=int, default=12,
        help="sub-slot ticks per slot (default 12: 5-minute ticks on "
             "the hourly grid)",
    )
    parser.add_argument(
        "--synthesis", choices=["fluid", "poisson"], default="fluid",
        help="arrival synthesis: deterministic fluid rates or seeded "
             "Poisson counts (default: fluid)",
    )
    parser.add_argument(
        "--estimation", choices=["oracle", "online"], default="oracle",
        help="plan on true slot rates (oracle) or on the online "
             "estimator bank (default: oracle)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="seed for the poisson arrival synthesis (default 0)",
    )
    parser.add_argument(
        "--no-admission", action="store_true",
        help="disable MD043 deadline-safe-capacity shedding",
    )
    parser.add_argument(
        "--json", type=str, default=None, metavar="PATH",
        help="write the run summary as JSON to this path ('-' = stdout)",
    )


def _build_experiment(scenario: str) -> Any:
    if scenario == "section5":
        from repro.experiments.section5 import section5_experiment
        return section5_experiment("low")
    if scenario == "section6":
        from repro.experiments.section6 import section6_experiment
        return section6_experiment()
    from repro.experiments.section7 import section7_experiment
    return section7_experiment()


@register_subcommand(
    "stream",
    help_text="streaming control plane: sub-slot ticks, policy-driven "
              "re-planning; see --policy",
    configure=add_stream_arguments,
)
def run_stream(args: argparse.Namespace) -> int:
    """Execute the stream subcommand; returns a process exit code."""
    from repro.stream.controller import StreamingController
    from repro.stream.policy import make_policy
    from repro.utils.tables import render_table

    if args.ticks_per_slot < 1:
        print(
            f"error: --ticks-per-slot must be >= 1 "
            f"(got {args.ticks_per_slot})",
            file=sys.stderr,
        )
        return 2
    if args.slots is not None and args.slots < 1:
        print(f"error: --slots must be >= 1 (got {args.slots})",
              file=sys.stderr)
        return 2

    exp = _build_experiment(args.scenario)
    controller = StreamingController(
        exp.optimizer(), exp.trace, exp.market,
        make_policy(args.policy),
        ticks_per_slot=args.ticks_per_slot,
        synthesis=args.synthesis,
        seed=args.seed,
        estimation=args.estimation,
        admission=not args.no_admission,
    )
    result = controller.run(num_slots=args.slots)

    rows = [
        [r.slot, r.outcome.net_profit, r.outcome.revenue,
         r.outcome.total_cost,
         float(r.outcome.completion_fractions.min()) * 100.0]
        for r in result.records
    ]
    print(render_table(
        ["slot", "net profit ($)", "revenue ($)", "cost ($)",
         "min completion %"],
        rows,
        title=f"{exp.name}: streaming run ({result.policy} policy, "
              f"{controller.source.ticks_per_slot} ticks/slot)",
        float_fmt=",.2f",
    ))
    print(
        f"\ntotal net profit: ${result.total_net_profit:,.2f} over "
        f"{result.num_slots} slots / {result.ticks} ticks"
    )
    print(
        f"control actions: full_solves={result.full_solves} "
        f"repairs={result.repairs} "
        f"repair_escalations={result.repair_escalations}"
    )
    print(
        f"signals: drift_events={result.drift_events} "
        f"shed_requests={result.shed_requests:,.1f} "
        f"estimator_rel_error={result.estimator_rel_error:.4f}"
    )

    if args.json is not None:
        summary: Dict[str, Any] = {
            "scenario": args.scenario,
            "policy": result.policy,
            "slots": result.num_slots,
            "ticks": result.ticks,
            "full_solves": result.full_solves,
            "repairs": result.repairs,
            "repair_escalations": result.repair_escalations,
            "drift_events": result.drift_events,
            "shed_requests": result.shed_requests,
            "estimator_rel_error": result.estimator_rel_error,
            "total_net_profit": result.total_net_profit,
        }
        payload = json.dumps(summary, indent=2, sort_keys=True) + "\n"
        if args.json == "-":
            sys.stdout.write(payload)
        else:
            with open(args.json, "w") as fh:
                fh.write(payload)
            print(f"wrote summary to {args.json}")
    return 0
