"""Runtime admission control from the MD043 deadline-safe-capacity check.

The formulation auditor's MD043 rule computes, per request class, the
largest aggregate arrival rate the fleet can serve with every M/M/1
server meeting the class deadline:

``safe_k = sum_l M_l * max(0, C_l * mu_kl - 1 / D'_k)``

(:mod:`repro.analysis.model.feasibility`).  Here the same quantity is a
*runtime* signal: when a tick's offered load exceeds it, the marginal
load is shed proportionally across front-ends before planning, so the
optimizer never receives a structurally infeasible slot problem.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.cloud.topology import CloudTopology
from repro.core.formulation import DEADLINE_SAFETY

__all__ = ["deadline_safe_capacity", "shed_to_capacity"]


def deadline_safe_capacity(
    topology: CloudTopology, deadlines: Optional[np.ndarray] = None
) -> np.ndarray:
    """Per-class fleet-wide deadline-safe capacity (the MD043 bound).

    Parameters
    ----------
    topology:
        The static system.
    deadlines:
        Optional effective per-class deadlines ``(K,)``; defaults to
        each class's final TUF deadline with the formulation's
        ``DEADLINE_SAFETY`` shrink, matching the optimizer's own
        constraint set.

    Returns
    -------
    ``(K,)`` array: the largest total arrival rate of class ``k`` the
    whole fleet can absorb with every server's M/M/1 delay within the
    deadline (dedicating all capacity to that class).
    """
    if deadlines is None:
        deadlines = np.array(
            [rc.deadline for rc in topology.request_classes]
        ) * (1.0 - DEADLINE_SAFETY)
    else:
        deadlines = np.asarray(deadlines, dtype=float)
    mu = topology.service_rates  # (K, L)
    cap = topology.server_capacities  # (L,)
    servers = topology.servers_per_datacenter  # (L,)
    per_server = np.clip(
        cap[None, :] * mu - 1.0 / deadlines[:, None], 0.0, None
    )  # (K, L)
    return np.asarray((servers[None, :] * per_server).sum(axis=1))


def shed_to_capacity(
    arrivals: np.ndarray, capacity: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Clip per-class offered load to the fleet's safe capacity.

    Load beyond ``capacity[k]`` is shed *proportionally* across
    front-ends (each front-end keeps the same admitted fraction), which
    preserves the spatial mix the planner would otherwise see.

    Returns ``(admitted, shed)`` where ``admitted`` is the ``(K, S)``
    rate grid handed to the planner and ``shed`` is the ``(K,)`` rate
    that was turned away.
    """
    arrivals = np.asarray(arrivals, dtype=float)
    capacity = np.asarray(capacity, dtype=float)
    totals = arrivals.sum(axis=1)  # (K,)
    over = totals > capacity
    if not bool(over.any()):
        return arrivals, np.zeros_like(totals)
    scale = np.ones_like(totals)
    # Lanes in ``over`` have totals > capacity >= 0 (the MD043 bound is
    # clipped at zero), so the clamp below is inert for valid inputs.
    scale[over] = capacity[over] / np.maximum(totals[over], 1e-300)
    admitted = arrivals * scale[:, None]
    shed = np.clip(totals - capacity, 0.0, None) * over
    return admitted, shed
