"""Observability: solver/slot telemetry for the whole pipeline.

Zero-dependency counters, timers, histograms, and structured per-slot
trace records, threaded through the solvers
(:mod:`repro.solvers.simplex`, :mod:`repro.solvers.interior_point`,
:mod:`repro.solvers.branch_bound`, :mod:`repro.solvers.presolve`), the
optimizer, the controller, and both simulation loops.  Everything is
opt-in: the default :data:`NULL_COLLECTOR` makes every hook a no-op, so
uninstrumented runs pay (almost) nothing.

>>> from repro.obs import InMemoryCollector
>>> from repro import OptimizerConfig, ProfitAwareOptimizer
>>> collector = InMemoryCollector()
>>> opt = ProfitAwareOptimizer(         # doctest: +SKIP
...     topology, config=OptimizerConfig(collector=collector))

After a run, ``collector.slot_traces`` holds one
:class:`~repro.obs.trace.SlotTrace` per planned slot (phase timings,
iteration counts, warm-start outcome, objective, residuals), which
round-trips to JSONL via :func:`write_traces` / :func:`read_traces`.
The ``repro trace`` CLI subcommand wraps the whole flow.
"""

from repro.obs.collectors import (
    NULL_COLLECTOR,
    Collector,
    InMemoryCollector,
    NullCollector,
    TimerStats,
)
from repro.obs.trace import (
    SlotTrace,
    read_traces,
    write_traces,
)

# WARM_OUTCOMES stays importable from repro.obs.trace; it was dropped
# from this surface as a dead export (AR030).
__all__ = [
    "Collector",
    "NullCollector",
    "NULL_COLLECTOR",
    "InMemoryCollector",
    "TimerStats",
    "SlotTrace",
    "read_traces",
    "write_traces",
]
