"""Event/metric collectors: the write side of the telemetry layer.

Instrumented code talks to a *collector* through four calls —
``increment`` (counters), ``timer`` (wall-time context manager),
``observe`` (histogram samples), and ``record_slot`` (structured
:class:`~repro.obs.trace.SlotTrace` records).  Two implementations:

* :class:`NullCollector` — the default everywhere.  Every call is a
  no-op; ``timer`` hands back a shared singleton context manager, so
  disabled instrumentation allocates nothing and costs a method call.
  Hot paths may additionally gate work behind ``collector.enabled``.
* :class:`InMemoryCollector` — accumulates everything in plain dicts
  and lists.  It is picklable (counters, timer stats, floats, traces),
  so per-process collectors can cross the ``multiprocessing`` boundary
  of :mod:`repro.sim.parallel` and be :meth:`~InMemoryCollector.merge`\\ d
  at the barrier.

The layer is zero-dependency on purpose: no logging handlers, no
third-party metrics clients — just data that serializes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Protocol, runtime_checkable

from repro.obs.trace import SlotTrace

__all__ = [
    "Collector",
    "NullCollector",
    "NULL_COLLECTOR",
    "InMemoryCollector",
    "TimerStats",
]


@runtime_checkable
class Collector(Protocol):
    """What instrumented code needs from a metrics sink."""

    #: False means every call is a no-op; hot paths may skip building
    #: payloads (residual vectors, trace records) entirely.
    enabled: bool

    def increment(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the counter ``name``."""
        ...

    def observe(self, name: str, value: float) -> None:
        """Record one histogram sample under ``name``."""
        ...

    def observe_time(self, name: str, seconds: float) -> None:
        """Fold one already-measured duration into the timer ``name``."""
        ...

    def timer(self, name: str) -> Any:
        """Context manager timing its block into the timer ``name``."""
        ...

    def record_slot(self, trace: SlotTrace) -> None:
        """Attach one per-slot trace record."""
        ...


class _NullTimer:
    """Reusable no-op context manager (one instance for the process)."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class NullCollector:
    """Collector that drops everything (the zero-overhead default)."""

    __slots__ = ()
    enabled = False

    def increment(self, name: str, value: float = 1.0) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def observe_time(self, name: str, seconds: float) -> None:
        pass

    def timer(self, name: str) -> _NullTimer:
        return _NULL_TIMER

    def record_slot(self, trace: SlotTrace) -> None:
        pass

    def merge(self, other: object) -> None:
        pass


#: Shared process-wide instance; instrumented call sites default to it.
NULL_COLLECTOR = NullCollector()


@dataclass
class TimerStats:
    """Aggregated wall-time observations for one timer name."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0

    def add(self, seconds: float) -> None:
        """Fold one observation in."""
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def merge(self, other: "TimerStats") -> None:
        """Fold another aggregate in."""
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        """Mean seconds per observation (0 when empty)."""
        return self.total / self.count if self.count else 0.0


class _Timer:
    """Context manager feeding one timed block into a collector."""

    __slots__ = ("_collector", "_name", "_start")

    def __init__(self, collector: "InMemoryCollector", name: str) -> None:
        self._collector = collector
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._collector.observe_time(
            self._name, time.perf_counter() - self._start
        )
        return False


@dataclass
class InMemoryCollector:
    """Accumulating collector: counters, timers, histograms, slot traces."""

    counters: Dict[str, float] = field(default_factory=dict)
    timers: Dict[str, TimerStats] = field(default_factory=dict)
    histograms: Dict[str, List[float]] = field(default_factory=dict)
    slot_traces: List[SlotTrace] = field(default_factory=list)
    enabled: bool = field(default=True, repr=False)

    def increment(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def observe(self, name: str, value: float) -> None:
        """Append one histogram sample."""
        self.histograms.setdefault(name, []).append(float(value))

    def observe_time(self, name: str, seconds: float) -> None:
        """Fold one timing into the ``name`` aggregate."""
        stats = self.timers.get(name)
        if stats is None:
            stats = self.timers[name] = TimerStats()
        stats.add(float(seconds))

    def timer(self, name: str) -> _Timer:
        """Time a ``with`` block into ``name``."""
        return _Timer(self, name)

    def record_slot(self, trace: SlotTrace) -> None:
        """Keep one per-slot trace record."""
        self.slot_traces.append(trace)

    # ---------------------------------------------------------------- merge

    def merge(self, other: "InMemoryCollector") -> None:
        """Fold another collector's data into this one.

        Counters add, timer aggregates combine, histogram samples and
        slot traces concatenate (traces re-sorted by slot index so a
        chunked parallel run merges into trace order).  Merging is
        associative and commutative up to histogram sample order, which
        is why per-process collectors can be combined at the pool
        barrier in any completion order.
        """
        for name, value in other.counters.items():
            self.increment(name, value)
        for name, stats in other.timers.items():
            mine = self.timers.get(name)
            if mine is None:
                self.timers[name] = TimerStats(
                    count=stats.count, total=stats.total,
                    min=stats.min, max=stats.max,
                )
            else:
                mine.merge(stats)
        for name, samples in other.histograms.items():
            self.histograms.setdefault(name, []).extend(samples)
        self.slot_traces.extend(other.slot_traces)
        self.slot_traces.sort(key=lambda trace: trace.slot)

    # -------------------------------------------------------------- summary

    def warm_start_counts(self) -> Dict[str, int]:
        """Count slot traces per warm-start outcome."""
        out: Dict[str, int] = {}
        for trace in self.slot_traces:
            out[trace.warm_start] = out.get(trace.warm_start, 0) + 1
        return out

    def fallback_counts(self) -> Dict[int, int]:
        """Count slot traces per fallback level (0 = primary succeeded)."""
        out: Dict[int, int] = {}
        for trace in self.slot_traces:
            out[trace.fallback] = out.get(trace.fallback, 0) + 1
        return out

    def summary(self) -> Dict:
        """JSON-ready digest: counters, timer means, warm-start counts."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "timers": {
                name: {"count": s.count, "total_s": s.total,
                       "mean_s": s.mean, "min_s": s.min, "max_s": s.max}
                for name, s in sorted(self.timers.items())
            },
            "histogram_sizes": {
                name: len(v) for name, v in sorted(self.histograms.items())
            },
            "slots": len(self.slot_traces),
            "warm_start": self.warm_start_counts(),
            "fallback": self.fallback_counts(),
        }
