"""Per-slot trace records and their JSONL serialization.

A :class:`SlotTrace` is the structured record one ``plan_slot`` call
leaves behind when telemetry is enabled: which solve path ran, how the
wall time split across phases, how much work the solver did (simplex
pivots / IPM iterations / B&B nodes / greedy LP evaluations), whether
the warm-start layer hit, and how tight the returned plan sits against
the slot constraints.  Traces are plain data — every field serializes
to one JSON object per line (JSONL), so runs can be appended, streamed,
and diffed with standard tools.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Union

__all__ = [
    "WARM_OUTCOMES",
    "SlotTrace",
    "write_traces",
    "read_traces",
]

#: Valid values for :attr:`SlotTrace.warm_start`:
#:
#: * ``"off"``   — warm-starting disabled for this optimizer;
#: * ``"cold"``  — enabled but no prior state existed (first slot);
#: * ``"hit"``   — a prior state was offered and the solver used it;
#: * ``"miss"``  — a prior state was offered but rejected as stale
#:   (or the backend has no warm-start path, e.g. HiGHS).
WARM_OUTCOMES = ("off", "cold", "hit", "miss")


@dataclass(frozen=True)
class SlotTrace:
    """One slot solve, fully described.

    ``phase_times`` maps phase names (``"build"``, ``"solve"``,
    ``"postprocess"``) to wall seconds; their sum is at most
    ``total_time``, which covers the whole ``plan_slot`` call.
    ``residuals`` carries the constraint-violation magnitudes of the
    returned solution in the solved problem's space (see
    ``LinearProgram.residuals``); empty for solve paths that do not
    expose the final problem (big-M, greedy).

    ``fallback`` is the fault-tolerance level that produced the plan:
    ``0`` means the requested solver succeeded; ``n > 0`` means the
    ``n``-th stage of the optimizer's fallback chain rescued the slot
    (see ``OptimizerConfig.fallback``).  ``failure`` concatenates the
    error messages of the stages that failed before the winning one
    (``""`` when the primary solve succeeded).  Both default so trace
    files written before these fields existed still round-trip.

    ``audit`` carries the formulation auditor's findings for the slot
    when ``OptimizerConfig(audit="warn"|"error")`` is active: one dict
    per finding, as produced by
    ``repro.analysis.model.ModelFinding.to_dict`` (code, severity,
    component, message, data).  Empty when auditing is off or the slot
    audited clean; defaults so older trace files still round-trip.

    ``certificates`` carries the optimality certifier's findings for
    the slot when ``OptimizerConfig(certify="warn"|"error")`` is
    active: one dict per finding, as produced by
    ``repro.analysis.certify.CertFinding.to_dict`` (code, severity,
    component, message, data).  Empty when certification is off or the
    solve certified clean; defaults so older trace files round-trip.
    """

    slot: int
    method: str
    formulation: str
    warm_start: str
    objective: float
    total_time: float
    phase_times: Dict[str, float] = field(default_factory=dict)
    iterations: int = 0
    nodes: int = 0
    lp_evaluations: int = 0
    num_variables: int = 0
    num_constraints: int = 0
    residuals: Dict[str, float] = field(default_factory=dict)
    fallback: int = 0
    failure: str = ""
    audit: List[Dict] = field(default_factory=list)
    certificates: List[Dict] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.warm_start not in WARM_OUTCOMES:
            raise ValueError(
                f"warm_start must be one of {WARM_OUTCOMES}, "
                f"got {self.warm_start!r}"
            )
        if self.slot < 0:
            raise ValueError(f"slot must be >= 0, got {self.slot}")
        if self.fallback < 0:
            raise ValueError(f"fallback must be >= 0, got {self.fallback}")
        object.__setattr__(
            self, "phase_times",
            {str(k): float(v) for k, v in dict(self.phase_times).items()},
        )
        object.__setattr__(
            self, "residuals",
            {str(k): float(v) for k, v in dict(self.residuals).items()},
        )
        object.__setattr__(self, "audit", [dict(f) for f in self.audit])
        object.__setattr__(
            self, "certificates", [dict(f) for f in self.certificates]
        )

    @property
    def phase_time_total(self) -> float:
        """Sum of the recorded phase times (<= ``total_time``)."""
        return float(sum(self.phase_times.values()))

    def to_dict(self) -> Dict:
        """Plain JSON-serializable dict (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "SlotTrace":
        """Rebuild a trace from :meth:`to_dict` output."""
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})

    def to_json(self) -> str:
        """One compact JSON line."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "SlotTrace":
        """Parse one JSONL line back into a trace."""
        return cls.from_dict(json.loads(line))


def write_traces(
    traces: Iterable[SlotTrace], path: Union[str, Path], append: bool = False
) -> int:
    """Write traces to ``path`` as JSONL; returns the number written."""
    path = Path(path)
    count = 0
    with path.open("a" if append else "w") as fh:
        for trace in traces:
            fh.write(trace.to_json() + "\n")
            count += 1
    return count


def read_traces(path: Union[str, Path]) -> List[SlotTrace]:
    """Read a JSONL trace file back (blank lines ignored)."""
    out: List[SlotTrace] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(SlotTrace.from_json(line))
    return out
