"""File walking, parsing, and rule dispatch for ``reprolint``.

:func:`lint_paths` is the batch entry point used by the CLI;
:func:`lint_source` lints one in-memory snippet (the unit-test surface
for rule fixtures).  A file that does not parse yields a single
``RP000`` diagnostic instead of aborting the run — one broken file must
not hide findings in the other eighty.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import FileContext, Rule, all_rules
from repro.analysis.suppression import (
    SuppressionError,
    collect_suppressions,
)

__all__ = ["LintReport", "lint_paths", "lint_source"]

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Diagnostic] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        """True when no unsuppressed, unbaselined findings remain."""
        return not self.findings

    def extend(self, other: "LintReport") -> None:
        """Fold another (single-file) report into this one."""
        self.findings.extend(other.findings)
        self.suppressed += other.suppressed
        self.baselined += other.baselined
        self.files_checked += other.files_checked


def _parse_error(path: str, exc: SyntaxError) -> Diagnostic:
    return Diagnostic(
        path=path,
        line=max(int(exc.lineno or 1), 1),
        col=max(int(exc.offset or 1) - 1, 0),
        code="RP000",
        message=f"file does not parse: {exc.msg}",
    )


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Lint one source string under the given (virtual) ``path``.

    The path matters: several rules are path-scoped (RP004/RP006 apply
    under ``solvers/``..., RP002 exempts ``utils/rng.py``), so fixtures
    pick their scope through it.
    """
    # Rule registration happens on package import; fall back lazily so
    # `from repro.analysis.runner import lint_source` alone still works.
    if rules is None:
        if not all_rules():  # pragma: no cover - import-order backstop
            import repro.analysis.rules  # noqa: F401
        rules = all_rules()
    report = LintReport(files_checked=1)
    normalized = path.replace("\\", "/")
    try:
        tree = ast.parse(source, filename=normalized)
    except SyntaxError as exc:
        report.findings.append(_parse_error(normalized, exc))
        return report
    try:
        suppressions = collect_suppressions(source)
    except SuppressionError as exc:
        report.findings.append(Diagnostic(
            path=normalized, line=1, col=0, code="RP000",
            message=str(exc),
        ))
        return report
    ctx = FileContext(path=normalized, source=source, tree=tree)
    for rule in rules:
        for diagnostic in rule.check(ctx):
            if suppressions.is_suppressed(diagnostic):
                report.suppressed += 1
            else:
                report.findings.append(diagnostic)
    report.findings.sort()
    return report


def _iter_python_files(paths: Iterable[str]) -> List[str]:
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in _SKIP_DIRS and not d.startswith(".")
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    out.append(os.path.join(dirpath, name))
    return out


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    Raises :class:`FileNotFoundError` for a path that does not exist —
    a typo'd path exiting 0 would be a silently green lint gate.
    """
    for path in paths:
        if not os.path.exists(path):
            raise FileNotFoundError(f"lint path does not exist: {path}")
    report = LintReport()
    for filename in _iter_python_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            source = handle.read()
        report.extend(lint_source(source, path=filename, rules=rules))
    report.findings.sort()
    return report
