"""Shared report machinery for the analysis tool family.

Four sibling tools read four different artifacts — ``reprolint``
(``RP0xx``) reads the *source*, the formulation auditor (``MD0xx``)
reads the *problem*, the certifier (``CT0xx``) reads the *solution*,
and the architecture auditor (``AR0xx``) reads the *codebase
structure* — but they report the same way: a stable per-tool code
space, a severity ladder, sorted text/JSON renderers, findings
baselines that freeze deliberate debt, and the ``0/1/2`` exit-code
gate convention.  That machinery used to be triplicated across
:mod:`repro.analysis.diagnostics`, :mod:`repro.analysis.model.findings`
and :mod:`repro.analysis.certify.findings`; this module is the single
implementation all four delegate to.

Contents:

* :class:`Finding` — the severity-carrying finding base class
  (``ModelFinding``/``CertFinding``/``ArchFinding`` subclass it by
  setting the ``CODE_PREFIX``/``CODE_LABEL`` class vars);
* :func:`render_findings_text` / :func:`render_findings_json` — the
  shared renderers (identical output to the pre-extraction per-tool
  renderers, pinned by the existing CLI tests);
* :class:`FindingsBaseline` + :func:`write_findings_baseline` /
  :func:`read_findings_baseline` / :func:`apply_findings_baseline` —
  the generic multiset baseline engine (`repro.analysis.baseline`
  wraps it with the reprolint fingerprint and file format);
* ``EXIT_CLEAN`` / ``EXIT_FINDINGS`` / ``EXIT_USAGE`` and
  :func:`worst_exit_code` — the exit-code convention, including the
  worst-of combinator ``repro check`` uses.

Zero-dependency on purpose (stdlib only), like the lint layer it
serves.
"""

from __future__ import annotations

import json
import re
from collections import Counter
from dataclasses import dataclass, field
from typing import (
    Callable,
    ClassVar,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    TypeVar,
)

__all__ = [
    "SEVERITIES",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "Finding",
    "FindingsBaseline",
    "SupportsBaseline",
    "apply_findings_baseline",
    "read_findings_baseline",
    "render_findings_text",
    "render_findings_json",
    "severity_rank",
    "worst_exit_code",
    "write_findings_baseline",
]

#: Severity ladder shared by every severity-carrying tool.  ``error``
#: findings gate the tool's CLI (exit 1); ``warning``/``info`` report
#: (the AST tools gate on *any* finding instead — their rules have no
#: benign severities).
SEVERITIES = ("error", "warning", "info")

_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}

#: Exit-code convention every analysis CLI follows.
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def severity_rank(severity: str) -> int:
    """Sort rank of ``severity``: errors first, then warnings, info."""
    return _SEVERITY_RANK[severity]


def worst_exit_code(codes: Iterable[int]) -> int:
    """Worst-of combinator: usage errors (2) dominate findings (1)."""
    worst = EXIT_CLEAN
    for code in codes:
        worst = max(worst, code)
    return worst


@dataclass(frozen=True)
class Finding:
    """One component-anchored analysis finding.

    Subclasses pin their code space through class vars:
    ``CODE_PREFIX`` (``"MD"``, ``"CT"``, ``"AR"``), ``CODE_LABEL``
    (the human name used in validation errors) and ``COERCE_FLOAT``
    (whether ``data`` values are forced to floats — the numeric tools
    do, the architecture auditor carries strings like signatures).

    Attributes
    ----------
    code:
        Stable per-tool identifier, e.g. ``MD010`` or ``AR020``.
    severity:
        One of :data:`SEVERITIES`.
    component:
        The artifact element the finding anchors to, e.g.
        ``"bigm[request1]"`` or ``"layer[core -> sim]"``.
    message:
        Human-readable description with the offending specifics.
    data:
        Machine-readable payload for scripting over JSON reports.
    """

    code: str
    severity: str
    component: str
    message: str
    data: Dict[str, object] = field(default_factory=dict)

    CODE_PREFIX: ClassVar[str] = ""
    CODE_LABEL: ClassVar[str] = "analysis"
    COERCE_FLOAT: ClassVar[bool] = True

    def __post_init__(self) -> None:
        prefix = self.CODE_PREFIX or "[A-Z]{2}"
        if not re.match(rf"^{prefix}\d{{3}}$", self.code):
            raise ValueError(
                f"{self.CODE_LABEL} codes are "
                f"{self.CODE_PREFIX or 'XX'}xxx, got {self.code!r}"
            )
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )
        if self.COERCE_FLOAT:
            coerced: Dict[str, object] = {
                str(k): float(v)  # type: ignore[arg-type]
                for k, v in dict(self.data).items()
            }
        else:
            coerced = {
                str(k): (v if isinstance(v, str) else float(v))  # type: ignore[arg-type]
                for k, v in dict(self.data).items()
            }
        object.__setattr__(self, "data", coerced)

    @property
    def sort_key(self) -> Tuple[int, str, str, str]:
        """Ordering: severity rank, then code, component, message."""
        return (_SEVERITY_RANK[self.severity], self.code,
                self.component, self.message)

    @property
    def fingerprint(self) -> Tuple[str, ...]:
        """Baseline-matching key: (component, code).

        Deliberately line-free — structural findings must survive
        unrelated edits moving code around a file.
        """
        return (self.component, self.code)

    def to_dict(self) -> Dict:
        """Plain-dict form for ``--format json`` reports and baselines."""
        return {
            "code": self.code,
            "severity": self.severity,
            "component": self.component,
            "message": self.message,
            "data": dict(self.data),
        }


def render_findings_text(findings: Iterable[Finding]) -> str:
    """``component: SEVERITY CODE message`` lines, errors first."""
    return "\n".join(
        f"{f.component}: {f.severity} {f.code} {f.message}"
        for f in sorted(findings, key=lambda f: f.sort_key)
    )


def render_findings_json(
    findings: Iterable[Finding],
    *,
    details: Optional[Dict] = None,
) -> str:
    """Machine-readable report shared by the severity-carrying CLIs."""
    ordered: List[Dict] = [
        f.to_dict() for f in sorted(findings, key=lambda f: f.sort_key)
    ]
    by_severity = {name: 0 for name in SEVERITIES}
    for record in ordered:
        by_severity[record["severity"]] += 1
    return json.dumps(
        {
            "findings": ordered,
            "summary": {
                "findings": len(ordered),
                "errors": by_severity["error"],
                "warnings": by_severity["warning"],
                "info": by_severity["info"],
            },
            "details": details if details is not None else {},
        },
        indent=2,
        sort_keys=True,
    )


# ------------------------------------------------------------- baselines
#
# A baseline file is a JSON snapshot of known findings.  ``--baseline
# FILE`` filters findings matching a baseline entry, so deliberately
# deferred debt does not fail the gate while any *new* finding still
# does.  Matching is by fingerprint as a multiset: each entry absorbs
# at most one live finding.

_BASELINE_VERSION = 1

Fingerprint = Tuple[object, ...]


@dataclass
class FindingsBaseline:
    """A multiset of accepted finding fingerprints."""

    entries: Counter = field(default_factory=Counter)

    def __len__(self) -> int:
        return int(sum(self.entries.values()))


class SupportsBaseline(Protocol):
    """Structural type: anything with a fingerprint and a dict form."""

    @property
    def fingerprint(self) -> Tuple:
        ...  # pragma: no cover - protocol only

    def to_dict(self) -> Dict:
        ...  # pragma: no cover - protocol only


_F = TypeVar("_F", bound=SupportsBaseline)


def write_findings_baseline(
    findings: Iterable[_F],
    path: str,
    *,
    sort_key: Callable[[_F], Tuple],
) -> int:
    """Write ``findings`` as a baseline file; returns the entry count.

    The full finding (including message) is stored for human review,
    but only the fingerprint participates in matching — messages may
    be reworded without invalidating a baseline.  ``sort_key`` must be
    fingerprint-first so regenerating a baseline from the same
    findings is byte-identical regardless of caller ordering.
    """
    records = [d.to_dict() for d in sorted(findings, key=sort_key)]
    payload = {"version": _BASELINE_VERSION, "findings": records}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return len(records)


def read_findings_baseline(
    path: str,
    *,
    fingerprint_of: Callable[[Dict], Fingerprint],
    tool: str = "findings",
) -> FindingsBaseline:
    """Load a baseline file written by :func:`write_findings_baseline`.

    ``fingerprint_of`` rebuilds a record's matching key from its dict
    form (raising ``KeyError``/``TypeError``/``ValueError`` on a
    malformed record, which is surfaced as a :class:`ValueError` with
    the offending record).
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError(f"{path}: not a {tool} baseline file")
    version = payload.get("version")
    if version != _BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {version!r} "
            f"(expected {_BASELINE_VERSION})"
        )
    entries: Counter = Counter()
    for record in payload["findings"]:
        try:
            fingerprint = fingerprint_of(record)
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"{path}: malformed baseline entry {record!r}"
            ) from exc
        entries[fingerprint] += 1
    return FindingsBaseline(entries=entries)


def apply_findings_baseline(
    findings: Sequence[_F],
    baseline: FindingsBaseline,
    *,
    sort_key: Callable[[_F], Tuple],
) -> Tuple[List[_F], int]:
    """Split findings into (new, baselined-count) against ``baseline``."""
    budget = Counter(baseline.entries)
    fresh: List[_F] = []
    absorbed = 0
    for finding in sorted(findings, key=sort_key):
        if budget[tuple(finding.fingerprint)] > 0:
            budget[tuple(finding.fingerprint)] -= 1
            absorbed += 1
        else:
            fresh.append(finding)
    return fresh, absorbed
