"""Finding datatypes and rendering for the formulation auditor.

A :class:`ModelFinding` is the model-analysis sibling of the AST pass's
:class:`~repro.analysis.diagnostics.Diagnostic`: one finding from a
static pass over a *built slot problem* rather than over source code.
Because model findings anchor to formulation components (a big-M row, a
constraint family, a (class, data center) pair) instead of file/line
locations, they carry a ``component`` string and a ``severity`` instead
of a path anchor — everything else (frozen dataclass, stable code
space, sorted text/JSON reports) mirrors the lint machinery so both
tools read and script the same way.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "SEVERITIES",
    "ModelFinding",
    "render_model_text",
    "render_model_json",
]

#: Severity ladder.  ``error`` findings gate ``repro audit`` (exit 1)
#: and ``OptimizerConfig(audit="error")``; ``warning``/``info`` report.
SEVERITIES = ("error", "warning", "info")

_CODE_RE = re.compile(r"^MD\d{3}$")

#: Sort rank so reports list errors first, then warnings, then info.
_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class ModelFinding:
    """One formulation-audit finding.

    Attributes
    ----------
    code:
        Stable ``MD0xx`` identifier (the model-diagnostics code space,
        disjoint from the lint pass's ``RP0xx``).
    severity:
        ``"error"`` (the formulation is wrong or infeasible),
        ``"warning"`` (numerically risky / silently lossy), or
        ``"info"`` (reporting only).
    component:
        The formulation element the finding anchors to, e.g.
        ``"bigm[request1]"`` or ``"lp.row[delay:request2@datacenter1]"``.
    message:
        Human-readable description with the offending numbers.
    data:
        Machine-readable payload (measured value, data-driven limit,
        suggested replacement, ...) for scripting over JSON reports.
    """

    code: str
    severity: str
    component: str
    message: str
    data: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not _CODE_RE.match(self.code):
            raise ValueError(f"audit codes are MDxxx, got {self.code!r}")
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )
        object.__setattr__(
            self, "data",
            {str(k): float(v) for k, v in dict(self.data).items()},
        )

    @property
    def sort_key(self) -> Tuple[int, str, str, str]:
        """Ordering: severity rank, then code, component, message."""
        return (_SEVERITY_RANK[self.severity], self.code,
                self.component, self.message)

    def to_dict(self) -> Dict:
        """Plain-dict form for ``--format json`` reports."""
        return {
            "code": self.code,
            "severity": self.severity,
            "component": self.component,
            "message": self.message,
            "data": dict(self.data),
        }


def render_model_text(findings: Iterable[ModelFinding]) -> str:
    """``component: SEVERITY CODE message`` lines, errors first."""
    return "\n".join(
        f"{f.component}: {f.severity} {f.code} {f.message}"
        for f in sorted(findings, key=lambda f: f.sort_key)
    )


def render_model_json(
    findings: Iterable[ModelFinding],
    *,
    details: Optional[Dict] = None,
) -> str:
    """Machine-readable report for ``repro audit --format json``."""
    ordered: List[Dict] = [
        f.to_dict() for f in sorted(findings, key=lambda f: f.sort_key)
    ]
    by_severity = {name: 0 for name in SEVERITIES}
    for record in ordered:
        by_severity[record["severity"]] += 1
    return json.dumps(
        {
            "findings": ordered,
            "summary": {
                "findings": len(ordered),
                "errors": by_severity["error"],
                "warnings": by_severity["warning"],
                "info": by_severity["info"],
            },
            "details": details if details is not None else {},
        },
        indent=2,
        sort_keys=True,
    )
