"""Finding datatypes and rendering for the formulation auditor.

A :class:`ModelFinding` is the model-analysis sibling of the AST pass's
:class:`~repro.analysis.diagnostics.Diagnostic`: one finding from a
static pass over a *built slot problem* rather than over source code.
Because model findings anchor to formulation components (a big-M row, a
constraint family, a (class, data center) pair) instead of file/line
locations, they carry a ``component`` string and a ``severity`` instead
of a path anchor.  The machinery itself (frozen dataclass, stable code
space, sorted text/JSON reports) is the shared
:mod:`repro.analysis.report` implementation all four analysis tools
delegate to, so they all read and script the same way.
"""

from __future__ import annotations

from typing import ClassVar

from repro.analysis.report import (
    SEVERITIES,
    Finding,
    render_findings_json,
    render_findings_text,
)

__all__ = [
    "SEVERITIES",
    "ModelFinding",
    "render_model_text",
    "render_model_json",
]


class ModelFinding(Finding):
    """One formulation-audit finding.

    Attributes
    ----------
    code:
        Stable ``MD0xx`` identifier (the model-diagnostics code space,
        disjoint from the lint pass's ``RP0xx``).
    severity:
        ``"error"`` (the formulation is wrong or infeasible),
        ``"warning"`` (numerically risky / silently lossy), or
        ``"info"`` (reporting only).
    component:
        The formulation element the finding anchors to, e.g.
        ``"bigm[request1]"`` or ``"lp.row[delay:request2@datacenter1]"``.
    message:
        Human-readable description with the offending numbers.
    data:
        Machine-readable payload (measured value, data-driven limit,
        suggested replacement, ...) for scripting over JSON reports.
    """

    CODE_PREFIX: ClassVar[str] = "MD"
    CODE_LABEL: ClassVar[str] = "audit"


#: ``component: SEVERITY CODE message`` lines, errors first.
render_model_text = render_findings_text

#: Machine-readable report for ``repro audit --format json``.
render_model_json = render_findings_json
