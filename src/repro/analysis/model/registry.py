"""Audit-rule registry and the context handed to every pass.

Mirrors :mod:`repro.analysis.registry` (the AST lint pass): an
:class:`AuditRule` registers itself under a stable ``MD0xx`` *family*
code via :func:`register_audit`, carries a name and a rationale for the
catalog, and yields :class:`~repro.analysis.model.findings.ModelFinding`
records from :meth:`AuditRule.check`.  Rules are stateless; everything
slot-specific lives on the shared :class:`AuditContext`.

A rule family may emit several related codes (e.g. the big-M family
owns MD010 *and* MD011); the registry key is the family's lead code and
:attr:`AuditRule.codes` enumerates the full set for ``--list-checks``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Type

import numpy as np

from repro.analysis.model.findings import ModelFinding
from repro.cloud.topology import CloudTopology
from repro.core.formulation import SlotInputs, fixed_level_lp, multilevel_milp
from repro.solvers.base import LinearProgram, MixedIntegerProgram

__all__ = [
    "AuditContext",
    "AuditRule",
    "AuditThresholds",
    "register_audit",
    "all_audit_rules",
    "get_audit_rule",
]

_CODE_RE = re.compile(r"^MD\d{3}$")


@dataclass
class AuditThresholds:
    """Configurable knobs shared by the audit passes.

    Attributes
    ----------
    bigm_ratio_limit:
        A configured big-M constant more than this factor above the
        data-driven minimum is flagged as a numerical trap (MD010).
    mccormick_ratio_limit:
        A McCormick envelope bound more than this factor above the
        tight (deadline-aware) load bound is flagged loose (MD012).
    row_decades_limit:
        Maximum tolerated log10 spread of a constraint row's nonzero
        coefficient magnitudes before MD030 fires.
    oversize_ratio:
        Fleet capacity more than this factor above the slot's offered
        load is reported as over-provisioned (MD045, info).
    """

    bigm_ratio_limit: float = 100.0
    mccormick_ratio_limit: float = 100.0
    row_decades_limit: float = 6.0
    oversize_ratio: float = 100.0


@dataclass
class AuditContext:
    """Everything the audit passes may need about one slot problem.

    The LP (and, for multi-level TUFs, the MILP) are built lazily
    through the production builders in :mod:`repro.core.formulation`;
    a builder that *refuses* the topology (statically infeasible
    unconditional-share reserve) leaves the corresponding problem
    ``None`` with the failure message recorded, so matrix passes skip
    gracefully while the feasibility pass reports the root cause.
    """

    inputs: SlotInputs
    #: The big-M constant the ``bigm`` solve path would use for this
    #: slot (see :data:`repro.core.bigm.DEFAULT_BIG`).
    big: float = 0.0
    #: The paper's "small enough" time increment delta.
    delta: float = 1e-9
    thresholds: AuditThresholds = field(default_factory=AuditThresholds)

    _lp: Optional[LinearProgram] = field(default=None, repr=False)
    _lp_error: Optional[str] = field(default=None, repr=False)
    _milp: Optional[MixedIntegerProgram] = field(default=None, repr=False)
    _milp_error: Optional[str] = field(default=None, repr=False)
    _built_lp: bool = field(default=False, repr=False)
    _built_milp: bool = field(default=False, repr=False)

    @property
    def topology(self) -> CloudTopology:
        return self.inputs.topology

    @property
    def multilevel(self) -> bool:
        """True when any class has a multi-level TUF (MILP path)."""
        return any(
            rc.tuf.num_levels > 1
            for rc in self.inputs.topology.request_classes
        )

    def lp(self) -> Optional[LinearProgram]:
        """The slot's fixed-level LP, or None when it cannot be built."""
        if not self._built_lp:
            self._built_lp = True
            try:
                self._lp, _ = fixed_level_lp(self.inputs)
            except ValueError as exc:
                self._lp_error = str(exc)
        return self._lp

    def milp(self) -> Optional[MixedIntegerProgram]:
        """The slot's multi-level MILP (None for one-level TUFs or on
        a builder refusal)."""
        if not self._built_milp:
            self._built_milp = True
            if self.multilevel:
                try:
                    self._milp, _ = multilevel_milp(self.inputs)
                except ValueError as exc:
                    self._milp_error = str(exc)
        return self._milp

    def build_errors(self) -> List[str]:
        """Builder refusal messages collected while materializing."""
        out = []
        if self._lp_error:
            out.append(self._lp_error)
        if self._milp_error:
            out.append(self._milp_error)
        return out

    # ------------------------------------------------------- derived data

    def effective_deadlines(self) -> np.ndarray:
        """``(K,)`` final deadlines after the margin/percentile scaling.

        dtype float64.  The same folding the builders apply: a headroom
        factor of ``delay_factor`` is a deadline of ``D/delay_factor``.
        """
        topo = self.inputs.topology
        deadlines = np.array(
            [rc.deadline for rc in topo.request_classes], dtype=float
        )
        return deadlines * self.inputs.deadline_scale / self.inputs.delay_factor


class AuditRule:
    """Base class for audit passes; subclasses override metadata + check.

    Attributes
    ----------
    code:
        Lead ``MD0xx`` code the family registers under.
    codes:
        All codes the family can emit, mapped to a one-line summary
        (surfaced by ``repro audit --list-checks`` and the docs
        catalog).
    name:
        Short kebab-case slug of the pass family.
    rationale:
        One paragraph tying the check to the paper's formulation.
    """

    code: str = ""
    codes: Dict[str, str] = {}
    name: str = ""
    rationale: str = ""

    def check(self, ctx: AuditContext) -> Iterator[ModelFinding]:
        """Yield findings for one slot problem."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for typing

    def finding(
        self,
        code: str,
        severity: str,
        component: str,
        message: str,
        **data: float,
    ) -> ModelFinding:
        """Build one finding, asserting the code belongs to this family."""
        if code not in self.codes:
            raise ValueError(
                f"rule {self.name} emitted unregistered code {code}"
            )
        return ModelFinding(
            code=code, severity=severity, component=component,
            message=message, data=data,
        )


_REGISTRY: Dict[str, AuditRule] = {}


def register_audit(rule_cls: Type[AuditRule]) -> Type[AuditRule]:
    """Class decorator adding one audit pass to the global registry."""
    if not _CODE_RE.match(rule_cls.code or ""):
        raise ValueError(
            f"audit rule {rule_cls.__name__} needs a lead code matching "
            f"MDxxx, got {rule_cls.code!r}"
        )
    if rule_cls.code in _REGISTRY:
        raise ValueError(f"duplicate audit rule code {rule_cls.code}")
    if not rule_cls.name:
        raise ValueError(f"audit rule {rule_cls.code} needs a name")
    for code in rule_cls.codes:
        if not _CODE_RE.match(code):
            raise ValueError(
                f"audit rule {rule_cls.name}: bad code {code!r}"
            )
    if rule_cls.code not in rule_cls.codes:
        raise ValueError(
            f"audit rule {rule_cls.name}: lead code {rule_cls.code} "
            "missing from its codes catalog"
        )
    _REGISTRY[rule_cls.code] = rule_cls()
    return rule_cls


def all_audit_rules() -> List[AuditRule]:
    """Every registered audit pass, sorted by lead code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_audit_rule(code: str) -> AuditRule:
    """Look up the pass family owning ``code`` (lead or member)."""
    for rule in _REGISTRY.values():
        if code == rule.code or code in rule.codes:
            return rule
    raise KeyError(
        f"unknown audit code {code!r}; known: "
        f"{sorted(c for r in _REGISTRY.values() for c in r.codes)}"
    )
