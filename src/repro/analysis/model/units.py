"""Pass family 2: dimensional consistency of the slot formulations.

A lightweight unit algebra over the paper's base dimensions (requests,
time, money, energy) plus a registry naming every quantity the builders
in :mod:`repro.core.formulation` combine.  The checker walks a symbolic
term table of the LP/MILP — one entry per objective/constraint family,
each term a product of registered quantities — and confirms every
family is dimensionally homogeneous (all terms and the right-hand side
carry the same unit).

The table is maintained *next to* the builders on purpose: when someone
edits a constraint in ``formulation.py`` without updating the table (or
updates the table inconsistently), the mismatch surfaces as MD021
instead of as a silently mis-scaled coefficient.  One modelling
convention to know: the delay-reserve right-hand side ``M_l / D_k``
(Eq. 6 at full share) is a *rate* — one request per deadline per
server — so it carries the ``request`` quantum explicitly and lands on
req/time like the arrival terms it is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.model.findings import ModelFinding
from repro.analysis.model.registry import (
    AuditContext,
    AuditRule,
    register_audit,
)

__all__ = [
    "Unit",
    "DIMENSIONLESS",
    "default_unit_registry",
    "formulation_term_table",
    "check_homogeneity",
    "UnitsRule",
]

#: Canonical order of the base dimensions in rendered units.
_BASE_DIMS = ("req", "time", "money", "energy")


@dataclass(frozen=True)
class Unit:
    """A product of integer powers of the base dimensions.

    ``Unit(req=1, time=-1)`` is an arrival rate; ``Unit()`` is
    dimensionless.  Units multiply/divide structurally — no magnitude
    conversion is modelled because the repository keeps one coherent
    unit system (hours, dollars, kWh) throughout.
    """

    req: int = 0
    time: int = 0
    money: int = 0
    energy: int = 0

    def __mul__(self, other: "Unit") -> "Unit":
        return Unit(
            req=self.req + other.req,
            time=self.time + other.time,
            money=self.money + other.money,
            energy=self.energy + other.energy,
        )

    def __truediv__(self, other: "Unit") -> "Unit":
        return self * other ** -1

    def __pow__(self, exponent: int) -> "Unit":
        return Unit(
            req=self.req * exponent,
            time=self.time * exponent,
            money=self.money * exponent,
            energy=self.energy * exponent,
        )

    def __str__(self) -> str:
        num = [
            f"{d}" + (f"^{p}" if p != 1 else "")
            for d, p in zip(_BASE_DIMS, self._powers())
            if p > 0
        ]
        den = [
            f"{d}" + (f"^{-p}" if p != -1 else "")
            for d, p in zip(_BASE_DIMS, self._powers())
            if p < 0
        ]
        if not num and not den:
            return "1"
        head = "*".join(num) if num else "1"
        return head + ("/" + "/".join(den) if den else "")

    def _powers(self) -> Tuple[int, int, int, int]:
        return (self.req, self.time, self.money, self.energy)


DIMENSIONLESS = Unit()


def default_unit_registry() -> Dict[str, Unit]:
    """Units of every quantity the slot builders combine.

    Time is hours, money is dollars, energy is kWh throughout the
    repository (see ``docs/DEVELOPMENT.md``), but the algebra only uses
    the dimensions, not the magnitudes.
    """
    per_hour = Unit(time=-1)
    return {
        # workload / topology
        "arrival_rate": Unit(req=1) * per_hour,        # lambda_{k,s}
        "service_rate": Unit(req=1) * per_hour,        # C*mu at full share
        "server_capacity": DIMENSIONLESS,              # capacity factor C_l
        "cpu_share": DIMENSIONLESS,                    # phi / Phi
        "server_count": DIMENSIONLESS,                 # M_l
        "deadline": Unit(time=1),                      # D_k, sub-deadlines
        "delay": Unit(time=1),                         # R
        "request_quantum": Unit(req=1),                # the "one request" in M/D
        "slot_duration": Unit(time=1),                 # T
        # market / energy
        "price": Unit(money=1, energy=-1),             # p_l ($/kWh)
        "energy_per_request": Unit(energy=1, req=-1),  # P_{k,l} (kWh/req)
        "transfer_cost": Unit(money=1, req=-1),        # TranCost ($/req)
        # revenue
        "utility": Unit(money=1, req=-1),              # TUF level U_q ($/req)
        # decision variables
        "dispatch_rate": Unit(req=1) * per_hour,       # lambda_{k,s,l}
        "mccormick_product": Unit(req=1) * per_hour,   # y = z * Lambda
        "level_selector": DIMENSIONLESS,               # z (binary)
    }


#: One symbolic term: a sequence of ``(quantity_name, exponent)`` pairs.
Term = Sequence[Tuple[str, int]]


def formulation_term_table() -> List[Tuple[str, Unit, List[Term]]]:
    """Symbolic term table of the fixed-level LP and multi-level MILP.

    Each entry is ``(family, expected_unit_of, terms)`` where ``terms``
    lists every additive term of that objective/constraint family as
    products of registered quantity names.  The expected unit is stated
    through a representative term so the table has no freedom to drift
    from the registry; :func:`check_homogeneity` verifies all terms
    agree with it.
    """
    return [
        # Objective: T * (U - P*p - TranCost) * lambda  -> money
        ("objective", Unit(money=1), [
            [("slot_duration", 1), ("utility", 1), ("dispatch_rate", 1)],
            [("slot_duration", 1), ("energy_per_request", 1), ("price", 1),
             ("dispatch_rate", 1)],
            [("slot_duration", 1), ("transfer_cost", 1), ("dispatch_rate", 1)],
            # MILP revenue enters through the McCormick product instead.
            [("slot_duration", 1), ("utility", 1), ("mccormick_product", 1)],
        ]),
        # Delay rows (LP and MILP): Lambda - Phi*C*mu <= -(M/D) * 1req,
        # MILP adds + (M/D_q)*1req * z on the left.
        ("delay", Unit(req=1, time=-1), [
            [("dispatch_rate", 1)],
            [("cpu_share", 1), ("service_rate", 1)],
            [("request_quantum", 1), ("server_count", 1), ("deadline", -1)],
            [("request_quantum", 1), ("server_count", 1), ("deadline", -1),
             ("level_selector", 1)],
        ]),
        # Share budget: sum_k Phi <= M_l  -> dimensionless counts.
        ("share_budget", DIMENSIONLESS, [
            [("cpu_share", 1)],
            [("server_count", 1)],
        ]),
        # Arrival caps: sum_l lambda <= lambda_{k,s}.
        ("arrival_cap", Unit(req=1, time=-1), [
            [("dispatch_rate", 1)],
            [("arrival_rate", 1)],
        ]),
        # MILP level selection: sum_q z = 1.
        ("level_selection", DIMENSIONLESS, [
            [("level_selector", 1)],
        ]),
        # MILP McCormick: sum_q y = Lambda and y <= Lambda_max * z.
        ("mccormick", Unit(req=1, time=-1), [
            [("mccormick_product", 1)],
            [("dispatch_rate", 1)],
            [("arrival_rate", 1), ("level_selector", 1)],
        ]),
    ]


def check_homogeneity(
    registry: Dict[str, Unit],
    table: Optional[List[Tuple[str, Unit, List[Term]]]] = None,
) -> List[Tuple[str, int, Unit, Unit]]:
    """Return ``(family, term_index, expected, got)`` for every mismatch.

    An unregistered quantity name raises ``KeyError`` — the table and
    the registry must be edited together.
    """
    if table is None:
        table = formulation_term_table()
    mismatches: List[Tuple[str, int, Unit, Unit]] = []
    for family, expected, terms in table:
        for index, term in enumerate(terms):
            unit = DIMENSIONLESS
            for name, exponent in term:
                unit = unit * registry[name] ** exponent
            if unit != expected:
                mismatches.append((family, index, expected, unit))
    return mismatches


def _render_term(term: Term) -> str:
    return " * ".join(
        name if exponent == 1 else f"{name}^{exponent}"
        for name, exponent in term
    )


@register_audit
class UnitsRule(AuditRule):
    """MD020/MD021 — dimensional homogeneity of objective/constraints."""

    code = "MD020"
    codes = {
        "MD020": "objective term dimensionally inconsistent",
        "MD021": "constraint term dimensionally inconsistent",
    }
    name = "dimensional-consistency"
    rationale = (
        "Every objective term must be money and every constraint family "
        "homogeneous; mixing $/kWh with kWh/req or comparing req/h "
        "against a bare 1/D produces coefficients that are wrong by a "
        "physical factor, which no solver tolerance can detect. The "
        "symbolic term table mirrors the builders; a mismatch means the "
        "formulation and its declared units have drifted apart."
    )

    def __init__(
        self,
        registry: Optional[Dict[str, Unit]] = None,
        table: Optional[List[Tuple[str, Unit, List[Term]]]] = None,
    ) -> None:
        # Injectable for tests that audit a deliberately wrong registry;
        # the registered singleton uses the defaults.
        self._registry = registry
        self._table = table

    def check(self, ctx: AuditContext) -> Iterator[ModelFinding]:
        registry = self._registry or default_unit_registry()
        table = self._table or formulation_term_table()
        lookup = {family: terms for family, _, terms in table}
        for family, index, expected, got in check_homogeneity(registry, table):
            code = "MD020" if family == "objective" else "MD021"
            term = _render_term(lookup[family][index])
            yield self.finding(
                code, "error", f"units[{family}]",
                f"term {index} ({term}) has unit {got}, expected "
                f"{expected}: the formulation and its declared units "
                "have drifted apart",
                term_index=index,
            )
