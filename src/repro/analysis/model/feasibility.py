"""Pass family 4: static feasibility pre-checks (MD040-MD045).

Everything here is decidable from the topology and slot data alone — no
solve, no matrix build.  The checks grade from the builder's own hard
refusal (the unconditional share reserve of Eq. 6, reported instead of
raised) down to right-sizing advisories:

* **MD040** (error) — a data center cannot reserve the minimum CPU
  shares for all classes (``sum_k 1/(D_k C_l mu_kl) > 1``); the slot
  builders refuse such topologies, so the optimizer is guaranteed to
  fail before dispatching anything.
* **MD041/MD042** — a class's deadline is unachievable at one data
  center even at full share (``C_l mu_kl <= 1/D_k``); an error when no
  data center can serve the class at all.
* **MD043** (warning) — a class's offered load exceeds the fleet-wide
  deadline-safe capacity, so some traffic is necessarily dropped.
* **MD044** (warning) — a data center has no class it can serve within
  deadline; it is dead weight in every slot plan.
* **MD045** (info) — fleet capacity exceeds the slot's offered load by
  more than the configured ratio; right-sizing headroom report.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.analysis.model.findings import ModelFinding
from repro.analysis.model.registry import (
    AuditContext,
    AuditRule,
    register_audit,
)
from repro.core.formulation import feasibility_margin

__all__ = ["FeasibilityRule"]


@register_audit
class FeasibilityRule(AuditRule):
    """MD040-MD045 — solve-free feasibility and right-sizing checks."""

    code = "MD040"
    codes = {
        "MD040": "share reserve infeasible at a data center",
        "MD041": "class deadline unachievable at a data center",
        "MD042": "class deadline unachievable at every data center",
        "MD043": "offered load exceeds deadline-safe fleet capacity",
        "MD044": "data center cannot serve any class within deadline",
        "MD045": "fleet capacity far exceeds the slot's offered load",
    }
    name = "static-feasibility"
    rationale = (
        "Constraint 6 holds unconditionally in the paper, so every "
        "server must reserve share 1/(D_k C_l mu_kl) per class; a "
        "topology violating that sum, or a class whose deadline beats "
        "the service time even at full share, makes the slot problem "
        "infeasible before any arrival is dispatched. Catching these "
        "statically turns an opaque solver failure into a named root "
        "cause, and the capacity/right-sizing checks bound what any "
        "solve can achieve."
    )

    def check(self, ctx: AuditContext) -> Iterator[ModelFinding]:
        topo = ctx.topology
        deadlines = ctx.effective_deadlines()  # (K,)
        mu = topo.service_rates  # (K, L)
        cap = topo.server_capacities  # (L,)
        servers = topo.servers_per_datacenter.astype(float)  # (L,)
        offered = ctx.inputs.arrivals.sum(axis=1)  # (K,)

        # MD040 — the builders' refusal condition, as a report.
        margin = feasibility_margin(
            topo, ctx.inputs.deadline_scale / ctx.inputs.delay_factor
        )
        for l, dc in enumerate(topo.datacenters):
            if margin[l] < 0.0:
                yield self.finding(
                    "MD040", "error", f"feasibility[{dc.name}]",
                    f"share reserve sum_k 1/(D_k C mu_k) = "
                    f"{1.0 - margin[l]:.4f} > 1: the data center cannot "
                    "reserve the minimum CPU shares for all classes and "
                    "the slot builders will refuse this topology",
                    reserve=1.0 - margin[l], margin=float(margin[l]),
                )

        # MD041/MD042 — per-class deadline achievability (Eq. 8 with
        # phi at its maximum of 1: need C*mu > 1/D).
        full_share_rate = cap[None, :] * mu  # (K, L)
        reachable = full_share_rate > 1.0 / deadlines[:, None]
        for k, rc in enumerate(topo.request_classes):
            if not reachable[k].any():
                best = float(
                    (1.0 / full_share_rate[k]).min()
                )
                yield self.finding(
                    "MD042", "error", f"feasibility[{rc.name}]",
                    f"deadline {deadlines[k]:g} is below the best "
                    f"achievable service time {best:g} at every data "
                    "center: no dispatch can ever meet this class's "
                    "deadline",
                    deadline=float(deadlines[k]), best_service_time=best,
                )
                continue
            for l, dc in enumerate(topo.datacenters):
                if not reachable[k, l]:
                    yield self.finding(
                        "MD041", "warning",
                        f"feasibility[{rc.name}@{dc.name}]",
                        f"deadline {deadlines[k]:g} is unachievable at "
                        f"this data center (full-share service time "
                        f"{1.0 / full_share_rate[k, l]:g}); it cannot "
                        "host this class",
                        deadline=float(deadlines[k]),
                        service_time=float(1.0 / full_share_rate[k, l]),
                    )

        # Deadline-safe capacity per (k, l): M * (C*mu - 1/D), floored.
        safe = np.clip(
            servers[None, :]
            * (full_share_rate - 1.0 / deadlines[:, None]),
            0.0, None,
        )  # (K, L)

        # MD043 — per-class demand vs. fleet-wide safe capacity.
        for k, rc in enumerate(topo.request_classes):
            fleet = float(safe[k].sum())
            if offered[k] > fleet:
                yield self.finding(
                    "MD043", "warning", f"feasibility[{rc.name}]",
                    f"offered load {offered[k]:g} exceeds the fleet's "
                    f"deadline-safe capacity {fleet:g} for this class "
                    "even with every server dedicated to it; the "
                    "overflow is necessarily dropped",
                    offered=float(offered[k]), capacity=fleet,
                )

        # MD044 — data centers that can serve nothing within deadline.
        for l, dc in enumerate(topo.datacenters):
            if not reachable[:, l].any():
                yield self.finding(
                    "MD044", "warning", f"feasibility[{dc.name}]",
                    "no request class is deadline-achievable at this "
                    "data center; it contributes nothing to any slot "
                    "plan",
                )

        # MD045 — right-sizing: aggregate safe capacity vs. offered load.
        total_offered = float(offered.sum())
        total_capacity = float(safe.max(axis=0).sum())
        ratio_limit = ctx.thresholds.oversize_ratio
        if total_offered > 0.0 and total_capacity > ratio_limit * total_offered:
            yield self.finding(
                "MD045", "info", "feasibility[fleet]",
                f"deadline-safe fleet capacity {total_capacity:g} is "
                f"{total_capacity / total_offered:.3g}x the slot's "
                f"offered load {total_offered:g} (limit "
                f"{ratio_limit:g}x); the fleet is heavily "
                "over-provisioned for this slot",
                capacity=total_capacity, offered=total_offered,
                ratio=total_capacity / total_offered,
            )
