"""Formulation auditor: static analysis of built slot problems.

The model-analysis sibling of the AST lint pass (``reprolint``): where
:mod:`repro.analysis.rules` reads *source code*, this package reads a
built :class:`~repro.core.formulation.SlotInputs` / LP / MILP and
reports — never raises, never solves — on an ``MD0xx`` code space:

* **MD010-MD013** (:mod:`.bigm`) — big-M and McCormick tightness
  against the data-driven minima, with tightened constants exposed;
* **MD020-MD021** (:mod:`.units`) — dimensional homogeneity of every
  objective/constraint family under the quantity unit registry;
* **MD030-MD036** (:mod:`.matrix`) — coefficient scaling, duplicate/
  empty/redundant rows, bound and row infeasibility certificates;
* **MD040-MD045** (:mod:`.feasibility`) — solve-free feasibility and
  right-sizing pre-checks (deadline achievability, capacity vs.
  arrivals).

Entry points: :func:`audit_slot` (programmatic), ``repro audit`` (CLI;
:mod:`.cli`), and ``OptimizerConfig(audit="warn"|"error")`` (per-slot
hook in ``plan_slot``).
"""

from repro.analysis.model.audit import ModelAuditReport, audit_slot
from repro.analysis.model.bigm import (  # noqa: F401 - registration
    BigMTightnessRule,
    McCormickEnvelopeRule,
    minimal_big_for_series,
    recommended_big,
)
from repro.analysis.model.feasibility import (  # noqa: F401 - registration
    FeasibilityRule,
)
from repro.analysis.model.findings import (
    ModelFinding,
    render_model_json,
    render_model_text,
)
from repro.analysis.model.matrix import (  # noqa: F401 - registration
    MatrixDiagnosticsRule,
    analyze_program,
)
from repro.analysis.model.registry import (
    AuditContext,
    AuditRule,
    AuditThresholds,
    all_audit_rules,
    get_audit_rule,
)
from repro.analysis.model.units import (  # noqa: F401 - registration
    Unit,
    UnitsRule,
)

# Dropped from this surface (AR030 dead exports): tight_lambda_bound,
# check_homogeneity, default_unit_registry, formulation_term_table —
# still importable from their defining modules for interactive use.
__all__ = [
    "ModelAuditReport",
    "ModelFinding",
    "audit_slot",
    "render_model_text",
    "render_model_json",
    "AuditContext",
    "AuditRule",
    "AuditThresholds",
    "all_audit_rules",
    "get_audit_rule",
    "minimal_big_for_series",
    "recommended_big",
    "analyze_program",
    "Unit",
]
