"""The ``repro audit`` subcommand (wired up by :mod:`repro.cli`).

Statically audits one slot of a canned experiment scenario — no solver
runs.  Exit codes follow the same gate convention as ``repro lint``:

* ``0`` — no error-severity findings (warnings/info may be present);
* ``1`` — at least one MD error;
* ``2`` — usage error (bad slot index, unwritable report path).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.model.audit import ModelAuditReport, audit_slot
from repro.analysis.model.registry import AuditThresholds, all_audit_rules
from repro.core.formulation import SlotInputs
from repro.cli_registry import register_subcommand

__all__ = ["add_audit_arguments", "run_audit"]

_SCENARIOS = ("section5", "section6", "section7")


def add_audit_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro audit`` flags to ``parser``."""
    parser.add_argument(
        "--scenario", choices=list(_SCENARIOS), default="section6",
        help="experiment whose slot problem to audit (default: section6)",
    )
    parser.add_argument(
        "--slot", type=int, default=0,
        help="slot index within the scenario's trace (default: 0)",
    )
    parser.add_argument(
        "--big", type=float, default=None,
        help="big-M constant to audit (default: the bigm path's default)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--out", type=str, default=None, metavar="FILE",
        help="additionally write the JSON report to this file",
    )
    parser.add_argument(
        "--bigm-ratio-limit", type=float, default=None,
        help="flag BIG more than this factor above the data-driven "
             "minimum (default: 100)",
    )
    parser.add_argument(
        "--row-decades-limit", type=float, default=None,
        help="flag rows/columns spanning more than this many log10 "
             "decades (default: 6)",
    )
    parser.add_argument(
        "--list-checks", action="store_true",
        help="print the audit check catalog (codes, rationale) and exit",
    )


def _print_checks() -> None:
    # Import for the registration side effect (mirrors ``repro lint
    # --list-rules``); the passes register on import of the package.
    import repro.analysis.model  # noqa: F401

    for rule in all_audit_rules():
        print(f"{rule.code}  {rule.name}")
        for code in sorted(rule.codes):
            print(f"    {code}: {rule.codes[code]}")
        print(f"    {rule.rationale}")


def _scenario_inputs(scenario: str, slot: int) -> SlotInputs:
    """Build the audited slot problem from a canned experiment."""
    if scenario == "section5":
        from repro.experiments.section5 import section5_experiment
        exp = section5_experiment("low")
    elif scenario == "section6":
        from repro.experiments.section6 import section6_experiment
        exp = section6_experiment()
    else:
        from repro.experiments.section7 import section7_experiment
        exp = section7_experiment()
    return SlotInputs(
        topology=exp.topology,
        arrivals=exp.trace.arrivals_at(slot),
        prices=exp.market.prices_at(slot),
    )


def _summary_line(report: ModelAuditReport) -> str:
    return (
        f"{len(report.findings)} finding(s): "
        f"{len(report.errors)} error(s), "
        f"{len(report.warnings)} warning(s), "
        f"{len(report.findings) - len(report.errors) - len(report.warnings)}"
        f" info"
    )


@register_subcommand(
    "audit",
    help_text="static formulation audit of a slot problem; exit 1 on "
              "MD-level errors",
    configure=add_audit_arguments,
)
def run_audit(args: argparse.Namespace) -> int:
    """Execute ``repro audit`` for parsed ``args``; returns the exit code."""
    if args.list_checks:
        _print_checks()
        return 0
    if args.slot < 0:
        print(f"error: --slot must be >= 0 (got {args.slot})",
              file=sys.stderr)
        return 2

    thresholds = AuditThresholds()
    if args.bigm_ratio_limit is not None:
        thresholds.bigm_ratio_limit = args.bigm_ratio_limit
    if args.row_decades_limit is not None:
        thresholds.row_decades_limit = args.row_decades_limit

    inputs = _scenario_inputs(args.scenario, args.slot)
    report = audit_slot(inputs, big=args.big, thresholds=thresholds)

    if args.out is not None:
        try:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(report.render_json() + "\n")
        except OSError as exc:
            print(f"error: cannot write report: {exc}", file=sys.stderr)
            return 2

    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
        print(("\n" if report.findings else "")
              + f"{args.scenario} slot {args.slot}: "
              + _summary_line(report))
    return 0 if report.clean else 1


def _standalone(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.analysis.model.cli`` — the gate without the CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-audit",
        description="static formulation auditor for slot problems",
    )
    add_audit_arguments(parser)
    return run_audit(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - thin wrapper
    sys.exit(_standalone())
