"""The formulation auditor's entry point: run every pass over one slot.

:func:`audit_slot` is the programmatic API behind both the ``repro
audit`` CLI and the ``OptimizerConfig(audit=...)`` hook in
``plan_slot``: build an :class:`AuditContext` around the slot's
:class:`~repro.core.formulation.SlotInputs`, run every registered pass
family, and fold the findings plus the tightened constants into one
:class:`ModelAuditReport`.  The auditor never solves anything and never
mutates the inputs — it is safe to run on every slot of a day-long
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.model.bigm import BigMTightnessRule
from repro.analysis.model.findings import (
    ModelFinding,
    render_model_json,
    render_model_text,
)
from repro.analysis.model.matrix import matrix_details
from repro.analysis.model.registry import (
    AuditContext,
    AuditThresholds,
    all_audit_rules,
)
from repro.core.bigm import DEFAULT_BIG, DEFAULT_DELTA
from repro.core.formulation import SlotInputs, feasibility_margin

__all__ = ["ModelAuditReport", "audit_slot"]


@dataclass(frozen=True)
class ModelAuditReport:
    """Everything one audit run produced.

    Attributes
    ----------
    findings:
        All findings, sorted errors-first (see
        :attr:`ModelFinding.sort_key`).
    details:
        Nested payload of tightened constants and scaling summaries:
        ``tightened_big`` (per request class), ``matrix`` (per built
        program), ``feasibility_margin`` (per data center), and
        ``build_errors`` (builder refusal messages, if any).
    """

    findings: List[ModelFinding] = field(default_factory=list)
    details: Dict = field(default_factory=dict)

    @property
    def errors(self) -> List[ModelFinding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[ModelFinding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def clean(self) -> bool:
        """True when no *error*-severity finding was raised."""
        return not self.errors

    def render_text(self) -> str:
        if not self.findings:
            return "formulation audit: clean"
        return render_model_text(self.findings)

    def render_json(self) -> str:
        return render_model_json(self.findings, details=self.details)


def audit_slot(
    inputs: SlotInputs,
    big: Optional[float] = None,
    delta: float = DEFAULT_DELTA,
    thresholds: Optional[AuditThresholds] = None,
) -> ModelAuditReport:
    """Statically audit one slot problem; report, never raise.

    Parameters
    ----------
    inputs:
        The slot problem (topology + arrivals + prices).
    big:
        The big-M constant the ``bigm`` solve path would use; ``None``
        audits :data:`repro.core.bigm.DEFAULT_BIG`, the path's default.
    delta:
        The paper's small time increment.
    thresholds:
        Looseness/scaling knobs; defaults to :class:`AuditThresholds`.
    """
    ctx = AuditContext(
        inputs=inputs,
        big=DEFAULT_BIG if big is None else float(big),
        delta=delta,
        thresholds=thresholds if thresholds is not None else AuditThresholds(),
    )
    findings: List[ModelFinding] = []
    for rule in all_audit_rules():
        findings.extend(rule.check(ctx))
    findings.sort(key=lambda f: f.sort_key)

    details: Dict = {}
    tightened = BigMTightnessRule().tightened(ctx)
    if tightened:
        details["tightened_big"] = tightened
    margin = feasibility_margin(
        inputs.topology, inputs.deadline_scale / inputs.delay_factor
    )
    details["feasibility_margin"] = {
        dc.name: float(margin[l])
        for l, dc in enumerate(inputs.topology.datacenters)
    }
    lp = ctx.lp()
    if lp is not None:
        details["matrix"] = {"lp": matrix_details(lp)}
    milp = ctx.milp()
    if milp is not None:
        details.setdefault("matrix", {})["milp"] = matrix_details(milp.lp)
    build_errors = ctx.build_errors()
    if build_errors:
        details["build_errors"] = build_errors
    return ModelAuditReport(findings=findings, details=details)
