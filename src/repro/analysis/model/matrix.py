"""Pass family 3: constraint-matrix diagnostics (MD030-MD036).

Pure-reporting siblings of the :mod:`repro.solvers.presolve` reductions,
plus scaling diagnostics the presolver does not attempt: per-row and
per-column log10 coefficient spread (ill-scaling is the classic failure
mode of big-M formulations — see pass family 1), duplicate rows, and
interval-arithmetic certificates.  Where presolve *removes* an empty or
redundant row, this pass *reports* it, because a production builder
emitting removable rows is itself a finding about the formulation.

All checks operate on a plain :class:`~repro.solvers.base.LinearProgram`
so tests can feed synthetic programs directly; the registered rule runs
them over the slot's LP (with human-readable row/variable labels derived
from the topology) and, when present, the MILP relaxation.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

import numpy as np

from repro.analysis.model.findings import ModelFinding
from repro.analysis.model.registry import (
    AuditContext,
    AuditRule,
    register_audit,
)
from repro.cloud.topology import CloudTopology
from repro.solvers.base import LinearProgram

__all__ = [
    "analyze_program",
    "matrix_details",
    "lp_row_labels",
    "lp_var_labels",
    "MatrixDiagnosticsRule",
]

#: Coefficients below this magnitude count as structural zeros, matching
#: the presolve tolerance.
_ZERO_TOL = 1e-12


def lp_row_labels(topology: CloudTopology) -> List[str]:
    """Human-readable labels for the aggregated fixed-level LP's rows.

    Mirrors the documented :class:`repro.core.formulation.FixedLevelLPCache`
    row layout: delay rows (class-major), share-budget rows, arrival-cap
    rows.
    """
    labels = []
    for rc in topology.request_classes:
        for dc in topology.datacenters:
            labels.append(f"delay:{rc.name}@{dc.name}")
    for dc in topology.datacenters:
        labels.append(f"share:{dc.name}")
    for rc in topology.request_classes:
        for fe in topology.frontends:
            labels.append(f"arrival:{rc.name}@{fe.name}")
    return labels


def lp_var_labels(topology: CloudTopology) -> List[str]:
    """Labels for the aggregated LP's variables: lam block then Phi block."""
    labels = []
    for rc in topology.request_classes:
        for fe in topology.frontends:
            for dc in topology.datacenters:
                labels.append(f"lam[{rc.name},{fe.name},{dc.name}]")
    for rc in topology.request_classes:
        for dc in topology.datacenters:
            labels.append(f"phi[{rc.name},{dc.name}]")
    return labels


def _decades(values: np.ndarray) -> float:
    """log10 spread of the nonzero magnitudes in ``values`` (0 if < 2)."""
    mags = np.abs(values)
    mags = mags[mags > _ZERO_TOL]
    if mags.size < 2:
        return 0.0
    return float(np.log10(mags.max()) - np.log10(mags.min()))


def analyze_program(
    lp: LinearProgram,
    prefix: str,
    make: Callable[..., ModelFinding],
    row_decades_limit: float = 6.0,
    row_labels: Optional[List[str]] = None,
    var_labels: Optional[List[str]] = None,
) -> Iterator[ModelFinding]:
    """Run MD030-MD036 over one program; ``make`` builds the findings.

    ``make`` is :meth:`AuditRule.finding` (kept injectable so the checks
    stay importable without the registry).  Labels default to positional
    ``row[i]`` / ``x[j]`` names.
    """
    n = lp.num_variables

    def row_name(r: int) -> str:
        if row_labels is not None and r < len(row_labels):
            return f"{prefix}.row[{row_labels[r]}]"
        return f"{prefix}.row[{r}]"

    def var_name(j: int) -> str:
        if var_labels is not None and j < len(var_labels):
            return f"{prefix}.var[{var_labels[j]}]"
        return f"{prefix}.var[{j}]"

    # ---- variable bounds: MD035 (error) and MD034 (info) ----------------
    for j in range(n):
        lo, hi = float(lp.lower[j]), float(lp.upper[j])
        if lo > hi:
            yield make(
                "MD035", "error", var_name(j),
                f"lower bound {lo:g} exceeds upper bound {hi:g}: the "
                "program is trivially infeasible",
                lower=lo, upper=hi,
            )
        elif lo == hi and np.isfinite(lo):
            yield make(
                "MD034", "info", var_name(j),
                f"variable is fixed at {lo:g} by its bounds; presolve "
                "will eliminate it",
                value=lo,
            )

    if lp.a_ub is None:
        return
    a, b = lp.a_ub, lp.b_ub
    lo_b, hi_b = lp.lower, lp.upper

    # ---- per-row checks --------------------------------------------------
    seen = {}
    for r in range(a.shape[0]):
        row = a[r]
        nz = np.abs(row) > _ZERO_TOL
        if not nz.any():
            if b[r] < -1e-9:
                yield make(
                    "MD036", "error", row_name(r),
                    f"empty row demands 0 <= {b[r]:g}: infeasibility "
                    "certificate",
                    rhs=float(b[r]),
                )
            else:
                yield make(
                    "MD032", "warning", row_name(r),
                    "row has no nonzero coefficients; the builder "
                    "emitted a vacuous constraint",
                    rhs=float(b[r]),
                )
            continue

        spread = _decades(row)
        if spread > row_decades_limit:
            yield make(
                "MD030", "warning", row_name(r),
                f"coefficient magnitudes span {spread:.2f} decades "
                f"(limit {row_decades_limit:g}): the row is ill-scaled "
                "and solver tolerances lose the small coefficients",
                decades=spread,
            )

        key = row.tobytes()
        if key in seen:
            other = seen[key]
            yield make(
                "MD031", "warning", row_name(r),
                f"row duplicates {row_name(other)} (rhs {b[other]:g} vs "
                f"{b[r]:g}); the looser copy is dead weight",
                other_row=float(other), rhs=float(b[r]),
            )
        else:
            seen[key] = r

        # Interval arithmetic over the bounds, as in presolve._reduce.
        with np.errstate(invalid="ignore"):
            worst = float(np.sum(np.where(row > 0, row * hi_b, row * lo_b)))
            best = float(np.sum(np.where(row > 0, row * lo_b, row * hi_b)))
        if np.isfinite(worst) and worst <= b[r] + 1e-12:
            yield make(
                "MD033", "info", row_name(r),
                f"row is redundant: worst-case lhs {worst:g} cannot "
                f"exceed rhs {b[r]:g} under the variable bounds",
                worst=worst, rhs=float(b[r]),
            )
        if np.isfinite(best) and best > b[r] + 1e-9:
            yield make(
                "MD036", "error", row_name(r),
                f"row is unsatisfiable: best-case lhs {best:g} already "
                f"exceeds rhs {b[r]:g} under the variable bounds",
                best=best, rhs=float(b[r]),
            )

    # ---- per-column scaling ---------------------------------------------
    for j in range(n):
        spread = _decades(a[:, j])
        if spread > row_decades_limit:
            yield make(
                "MD030", "warning", var_name(j),
                f"column coefficient magnitudes span {spread:.2f} "
                f"decades (limit {row_decades_limit:g}): consider "
                "rescaling the variable",
                decades=spread,
            )


def matrix_details(lp: LinearProgram) -> dict:
    """Scaling summary for the report's ``details`` block (floats only)."""
    if lp.a_ub is None:
        return {}
    mags = np.abs(lp.a_ub)
    mags = mags[mags > _ZERO_TOL]
    if mags.size == 0:
        return {}
    return {
        "coeff_min": float(mags.min()),
        "coeff_max": float(mags.max()),
        "coeff_decades": float(np.log10(mags.max()) - np.log10(mags.min())),
        "rows": float(lp.a_ub.shape[0]),
        "columns": float(lp.num_variables),
    }


@register_audit
class MatrixDiagnosticsRule(AuditRule):
    """MD030-MD036 — scaling, structure, and certificate checks."""

    code = "MD030"
    codes = {
        "MD030": "row/column coefficient spread beyond the decade limit",
        "MD031": "duplicate constraint rows",
        "MD032": "empty (vacuous) constraint row",
        "MD033": "redundant row under interval arithmetic",
        "MD034": "variable fixed by its bounds",
        "MD035": "lower bound exceeds upper bound",
        "MD036": "row infeasibility certificate",
    }
    name = "matrix-diagnostics"
    rationale = (
        "The slot LP mixes unit coefficients with C*mu terms of order "
        "1e4-1e5 and deadline reserves of order M/D; a row spanning too "
        "many decades, a duplicated or vacuous row, or a bound-level "
        "infeasibility certificate all point at builder bugs or "
        "degenerate topologies that a solver would either grind on or "
        "mask with a generic 'infeasible' verdict. Mirrors the presolve "
        "reductions as pure reporting."
    )

    def check(self, ctx: AuditContext) -> Iterator[ModelFinding]:
        limit = ctx.thresholds.row_decades_limit
        lp = ctx.lp()
        if lp is not None:
            yield from analyze_program(
                lp, "lp", self.finding,
                row_decades_limit=limit,
                row_labels=lp_row_labels(ctx.topology),
                var_labels=lp_var_labels(ctx.topology),
            )
        milp = ctx.milp()
        if milp is not None:
            yield from analyze_program(
                milp.lp, "milp", self.finding,
                row_decades_limit=limit,
            )
