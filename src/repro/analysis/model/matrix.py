"""Pass family 3: constraint-matrix diagnostics (MD030-MD036).

Pure-reporting siblings of the :mod:`repro.solvers.presolve` reductions,
plus scaling diagnostics the presolver does not attempt: per-row and
per-column log10 coefficient spread (ill-scaling is the classic failure
mode of big-M formulations — see pass family 1), duplicate rows, and
interval-arithmetic certificates.  Where presolve *removes* an empty or
redundant row, this pass *reports* it, because a production builder
emitting removable rows is itself a finding about the formulation.

All checks operate on a plain :class:`~repro.solvers.base.LinearProgram`
so tests can feed synthetic programs directly; the registered rule runs
them over the slot's LP (with human-readable row/variable labels derived
from the topology) and, when present, the MILP relaxation.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np
from scipy import sparse as _sp

from repro.analysis.model.findings import ModelFinding
from repro.analysis.model.registry import (
    AuditContext,
    AuditRule,
    register_audit,
)
from repro.cloud.topology import CloudTopology
from repro.solvers.base import LinearProgram

__all__ = [
    "analyze_program",
    "matrix_details",
    "lp_row_labels",
    "lp_var_labels",
    "MatrixDiagnosticsRule",
]

#: Coefficients below this magnitude count as structural zeros, matching
#: the presolve tolerance.
_ZERO_TOL = 1e-12


def lp_row_labels(topology: CloudTopology) -> List[str]:
    """Human-readable labels for the aggregated fixed-level LP's rows.

    Mirrors the documented :class:`repro.core.formulation.FixedLevelLPCache`
    row layout: delay rows (class-major), share-budget rows, arrival-cap
    rows.
    """
    labels = []
    for rc in topology.request_classes:
        for dc in topology.datacenters:
            labels.append(f"delay:{rc.name}@{dc.name}")
    for dc in topology.datacenters:
        labels.append(f"share:{dc.name}")
    for rc in topology.request_classes:
        for fe in topology.frontends:
            labels.append(f"arrival:{rc.name}@{fe.name}")
    return labels


def lp_var_labels(topology: CloudTopology) -> List[str]:
    """Labels for the aggregated LP's variables: lam block then Phi block."""
    labels = []
    for rc in topology.request_classes:
        for fe in topology.frontends:
            for dc in topology.datacenters:
                labels.append(f"lam[{rc.name},{fe.name},{dc.name}]")
    for rc in topology.request_classes:
        for dc in topology.datacenters:
            labels.append(f"phi[{rc.name},{dc.name}]")
    return labels


def _canonical_csr(a: object) -> "_sp.csr_matrix":
    """``a`` as CSR with sub-tolerance entries dropped.

    Dense and sparse inputs land on the same canonical structure, so
    every check below runs over the nonzeros only — on an 1800-server
    per-server LP that is ~5e4 entries instead of the ~2e8 cells the
    old dense row/column loops visited.
    """
    mat = a.tocsr(copy=True) if _sp.issparse(a) else _sp.csr_matrix(a)
    mat.data = np.where(np.abs(mat.data) > _ZERO_TOL, mat.data, 0.0)
    mat.eliminate_zeros()
    mat.sort_indices()
    return mat


def _segment_spreads(
    indptr: np.ndarray, data: np.ndarray, size: int
) -> np.ndarray:
    """Per-segment log10 magnitude spread of a CSR/CSC axis.

    ``indptr`` delimits ``size`` segments over ``data``; segments with
    fewer than two nonzeros spread 0 decades.
    Empty segments are safe for ``reduceat`` because they have zero
    width in ``indptr``: reducing only at the non-empty starts makes
    each reduction end exactly at its segment's end.
    """
    counts = np.diff(indptr)
    spreads = np.zeros(size)
    nonempty = counts > 0
    if not np.any(nonempty):
        return spreads
    mags = np.abs(data)
    starts = indptr[:-1][nonempty]
    seg_max = np.maximum.reduceat(mags, starts)
    seg_min = np.minimum.reduceat(mags, starts)
    multi = nonempty.copy()
    multi[nonempty] = counts[nonempty] >= 2
    with np.errstate(divide="ignore"):
        spreads[multi] = (
            np.log10(seg_max[counts[nonempty] >= 2])
            - np.log10(seg_min[counts[nonempty] >= 2])
        )
    return spreads


def _interval_bounds(
    mat: "_sp.csr_matrix", lo: np.ndarray, hi: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row worst/best-case lhs under the variable bounds.

    The split-by-sign products only touch stored entries, so an
    infinite bound on a variable a row never uses cannot poison that
    row (and ``0 * inf`` never occurs).
    """
    pos = mat.maximum(0.0)
    neg = mat.minimum(0.0)
    with np.errstate(invalid="ignore"):
        worst = pos @ hi + neg @ lo
        best = pos @ lo + neg @ hi
    return np.asarray(worst).ravel(), np.asarray(best).ravel()


def analyze_program(
    lp: LinearProgram,
    prefix: str,
    make: Callable[..., ModelFinding],
    row_decades_limit: float = 6.0,
    row_labels: Optional[List[str]] = None,
    var_labels: Optional[List[str]] = None,
) -> Iterator[ModelFinding]:
    """Run MD030-MD036 over one program; ``make`` builds the findings.

    ``make`` is :meth:`AuditRule.finding` (kept injectable so the checks
    stay importable without the registry).  Labels default to positional
    ``row[i]`` / ``x[j]`` names.
    """
    n = lp.num_variables

    def row_name(r: int) -> str:
        if row_labels is not None and r < len(row_labels):
            return f"{prefix}.row[{row_labels[r]}]"
        return f"{prefix}.row[{r}]"

    def var_name(j: int) -> str:
        if var_labels is not None and j < len(var_labels):
            return f"{prefix}.var[{var_labels[j]}]"
        return f"{prefix}.var[{j}]"

    # ---- variable bounds: MD035 (error) and MD034 (info) ----------------
    for j in range(n):
        lo, hi = float(lp.lower[j]), float(lp.upper[j])
        if lo > hi:
            yield make(
                "MD035", "error", var_name(j),
                f"lower bound {lo:g} exceeds upper bound {hi:g}: the "
                "program is trivially infeasible",
                lower=lo, upper=hi,
            )
        elif lo == hi and np.isfinite(lo):
            yield make(
                "MD034", "info", var_name(j),
                f"variable is fixed at {lo:g} by its bounds; presolve "
                "will eliminate it",
                value=lo,
            )

    if lp.a_ub is None:
        return
    b = np.asarray(lp.b_ub, dtype=float)
    lo_b, hi_b = lp.lower, lp.upper

    # All structural work happens once over the CSR nonzeros: spreads
    # by segment reduction, interval bounds by sign-split matvecs, and
    # duplicates by canonical (indices, data) keys — nothing below ever
    # materializes a dense row or column.
    mat = _canonical_csr(lp.a_ub)
    indptr, indices, data = mat.indptr, mat.indices, mat.data
    row_nnz = np.diff(indptr)
    row_spreads = _segment_spreads(indptr, data, mat.shape[0])
    worst_lhs, best_lhs = _interval_bounds(mat, lo_b, hi_b)

    # ---- per-row checks --------------------------------------------------
    seen: dict = {}
    for r in range(mat.shape[0]):
        if row_nnz[r] == 0:
            if b[r] < -1e-9:
                yield make(
                    "MD036", "error", row_name(r),
                    f"empty row demands 0 <= {b[r]:g}: infeasibility "
                    "certificate",
                    rhs=float(b[r]),
                )
            else:
                yield make(
                    "MD032", "warning", row_name(r),
                    "row has no nonzero coefficients; the builder "
                    "emitted a vacuous constraint",
                    rhs=float(b[r]),
                )
            continue

        spread = float(row_spreads[r])
        if spread > row_decades_limit:
            yield make(
                "MD030", "warning", row_name(r),
                f"coefficient magnitudes span {spread:.2f} decades "
                f"(limit {row_decades_limit:g}): the row is ill-scaled "
                "and solver tolerances lose the small coefficients",
                decades=spread,
            )

        lo_r, hi_r = indptr[r], indptr[r + 1]
        key = (indices[lo_r:hi_r].tobytes(), data[lo_r:hi_r].tobytes())
        if key in seen:
            other = seen[key]
            yield make(
                "MD031", "warning", row_name(r),
                f"row duplicates {row_name(other)} (rhs {b[other]:g} vs "
                f"{b[r]:g}); the looser copy is dead weight",
                other_row=float(other), rhs=float(b[r]),
            )
        else:
            seen[key] = r

        # Interval arithmetic over the bounds, as in presolve._reduce.
        worst, best = float(worst_lhs[r]), float(best_lhs[r])
        if np.isfinite(worst) and worst <= b[r] + 1e-12:
            yield make(
                "MD033", "info", row_name(r),
                f"row is redundant: worst-case lhs {worst:g} cannot "
                f"exceed rhs {b[r]:g} under the variable bounds",
                worst=worst, rhs=float(b[r]),
            )
        if np.isfinite(best) and best > b[r] + 1e-9:
            yield make(
                "MD036", "error", row_name(r),
                f"row is unsatisfiable: best-case lhs {best:g} already "
                f"exceeds rhs {b[r]:g} under the variable bounds",
                best=best, rhs=float(b[r]),
            )

    # ---- per-column scaling ---------------------------------------------
    csc = mat.tocsc()
    col_spreads = _segment_spreads(csc.indptr, csc.data, n)
    for j in np.nonzero(col_spreads > row_decades_limit)[0]:
        yield make(
            "MD030", "warning", var_name(int(j)),
            f"column coefficient magnitudes span {col_spreads[j]:.2f} "
            f"decades (limit {row_decades_limit:g}): consider "
            "rescaling the variable",
            decades=float(col_spreads[j]),
        )


def matrix_details(lp: LinearProgram) -> dict:
    """Scaling summary for the report's ``details`` block (floats only)."""
    if lp.a_ub is None:
        return {}
    mat = _canonical_csr(lp.a_ub)
    mags = np.abs(mat.data)
    if mags.size == 0:
        return {}
    return {
        "coeff_min": float(mags.min()),
        "coeff_max": float(mags.max()),
        "coeff_decades": float(np.log10(mags.max()) - np.log10(mags.min())),
        "rows": float(mat.shape[0]),
        "columns": float(lp.num_variables),
    }


@register_audit
class MatrixDiagnosticsRule(AuditRule):
    """MD030-MD036 — scaling, structure, and certificate checks."""

    code = "MD030"
    codes = {
        "MD030": "row/column coefficient spread beyond the decade limit",
        "MD031": "duplicate constraint rows",
        "MD032": "empty (vacuous) constraint row",
        "MD033": "redundant row under interval arithmetic",
        "MD034": "variable fixed by its bounds",
        "MD035": "lower bound exceeds upper bound",
        "MD036": "row infeasibility certificate",
    }
    name = "matrix-diagnostics"
    rationale = (
        "The slot LP mixes unit coefficients with C*mu terms of order "
        "1e4-1e5 and deadline reserves of order M/D; a row spanning too "
        "many decades, a duplicated or vacuous row, or a bound-level "
        "infeasibility certificate all point at builder bugs or "
        "degenerate topologies that a solver would either grind on or "
        "mask with a generic 'infeasible' verdict. Mirrors the presolve "
        "reductions as pure reporting."
    )

    def check(self, ctx: AuditContext) -> Iterator[ModelFinding]:
        limit = ctx.thresholds.row_decades_limit
        lp = ctx.lp()
        if lp is not None:
            yield from analyze_program(
                lp, "lp", self.finding,
                row_decades_limit=limit,
                row_labels=lp_row_labels(ctx.topology),
                var_labels=lp_var_labels(ctx.topology),
            )
        milp = ctx.milp()
        if milp is not None:
            yield from analyze_program(
                milp.lp, "milp", self.finding,
                row_decades_limit=limit,
            )
