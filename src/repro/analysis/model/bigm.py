"""Pass family 1: big-M tightness (paper Eqs. 11-13/16-26).

The paper's constraint series replaces the step-downward TUF's
``if/else`` with rows of the form ``f(R) + BIG * g(U) <= 0``.  ``BIG``
must be *at least* the data-driven minimum — otherwise a TUF-feasible
``(delay, level)`` combination violates a row and the formulation
silently forfeits whole utility levels — but every factor above that
minimum widens the coefficient range the nonlinear solver has to
balance against deadline residuals of order ``1e-4`` hours.  This pass
computes the minimal sufficient ``BIG`` per constraint row from the
actual level values and sub-deadlines, compares the configured constant
against it, and exposes the tightened values for builders to adopt
(:func:`recommended_big`).

The MILP path linearizes the bilinear revenue with McCormick envelopes
``y <= Lambda_max * z`` instead of a free ``BIG``; its bound is audited
the same way against the *deadline-aware* load bound
(:func:`tight_lambda_bound`), since a bound above what any feasible
dispatch can reach only degrades LP-relaxation strength and scaling.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from repro.analysis.model.findings import ModelFinding
from repro.analysis.model.registry import (
    AuditContext,
    AuditRule,
    register_audit,
)
from repro.core.bigm import bigm_constraint_series

__all__ = [
    "minimal_big_for_series",
    "recommended_big",
    "tight_lambda_bound",
    "BigMTightnessRule",
    "McCormickEnvelopeRule",
]

#: Safety factor applied on top of the data-driven minimum by
#: :func:`recommended_big` — one order of magnitude of slack keeps the
#: constant robust to small data perturbations without re-opening the
#: conditioning gap the audit exists to close.
RECOMMENDED_SAFETY = 10.0


def _level_bands(deadlines: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-level delay bands ``(lo, hi]`` of a step-downward TUF.

    Level ``q`` (0-based) is achieved for delays in
    ``(D_{q-1}, D_q]`` with ``D_{-1} = 0``.  Returns float64 arrays.
    """
    hi = np.asarray(deadlines, dtype=float)
    lo = np.concatenate([[0.0], hi[:-1]])
    return lo, hi


def minimal_big_for_series(
    values: "np.ndarray | list",
    deadlines: "np.ndarray | list",
    delta: float = 1e-9,
) -> np.ndarray:
    """Data-driven minimal ``BIG`` per Eq. 11-13 row of one TUF.

    For each row ``f(R) + BIG*g(U) <= 0`` of
    :func:`repro.core.bigm.bigm_constraint_series` and each TUF-feasible
    ``(R, U_q)`` combination, feasibility needs
    ``BIG >= f(R) / (-g(U_q))`` whenever ``g(U_q) < 0`` (rows with
    ``g(U_q) >= 0`` either do not constrain the combo or exclude it by
    design, independent of ``BIG``).  ``f`` is affine in ``R``, so the
    worst case over a level's delay band sits at a band endpoint.

    Returns the per-row minima as a float64 array (empty for one-level
    TUFs, whose series is a plain deadline constraint without ``BIG``).
    """
    values_arr = np.asarray(values, dtype=float)
    deadlines_arr = np.asarray(deadlines, dtype=float)
    n = values_arr.size
    if n <= 1:
        return np.empty(0)
    # Recover f and g numerically: with BIG=0 a row evaluates to f(R);
    # the BIG=1 evaluation adds exactly g(U).
    series_f = bigm_constraint_series(
        values_arr, deadlines_arr, big=0.0, delta=delta
    )
    series_fg = bigm_constraint_series(
        values_arr, deadlines_arr, big=1.0, delta=delta
    )
    lo, hi = _level_bands(deadlines_arr)
    minima = np.zeros(len(series_f))
    for i, (f_row, fg_row) in enumerate(zip(series_f, series_fg)):
        required = 0.0
        for q in range(n):
            u = float(values_arr[q])
            g = fg_row(0.0, u) - f_row(0.0, u)
            if g >= -1e-15:
                continue
            # Worst feasible delay for a level sits at a band endpoint
            # (f is affine in R).  The open lower endpoint is approached
            # within delta, the paper's time resolution.
            f_worst = max(
                f_row(float(lo[q]) + delta, u), f_row(float(hi[q]), u)
            )
            if f_worst > 0.0:
                required = max(required, f_worst / -g)
        minima[i] = required
    return minima


def recommended_big(
    values: "np.ndarray | list",
    deadlines: "np.ndarray | list",
    delta: float = 1e-9,
    safety: float = RECOMMENDED_SAFETY,
) -> float:
    """Tightened ``BIG`` for one TUF: data-driven minimum x ``safety``.

    This is the value the audit suggests builders adopt in place of a
    static constant; ``repro.core.bigm.solve_slot_bigm(big=None)``
    computes it per request class.
    """
    minima = minimal_big_for_series(values, deadlines, delta=delta)
    if minima.size == 0:
        return 0.0
    return float(minima.max() * safety)


def tight_lambda_bound(ctx: AuditContext) -> np.ndarray:
    """``(K, L)`` deadline-aware upper bounds on per-DC class loads.

    The production builder bounds the McCormick product with
    ``min(offered, M*C*mu)`` (raw capacity).  No feasible dispatch can
    exceed the *deadline-aware* capacity ``M*(C*mu - 1/D_k)`` implied by
    the delay constraint at full share, so that is the tight envelope.
    Entries are clipped at zero (a class unreachable at a data center
    contributes no feasible load).  dtype float64.
    """
    topo = ctx.inputs.topology
    offered = ctx.inputs.arrivals.sum(axis=1)  # (K,)
    mu = topo.service_rates  # (K, L)
    cap = topo.server_capacities  # (L,)
    servers = topo.servers_per_datacenter.astype(float)  # (L,)
    deadlines = ctx.effective_deadlines()  # (K,)
    safe = servers[None, :] * (
        mu * cap[None, :] - 1.0 / deadlines[:, None]
    )
    return np.minimum(offered[:, None], np.clip(safe, 0.0, None))


@register_audit
class BigMTightnessRule(AuditRule):
    """MD010/MD011 — configured big-M vs. the data-driven minimum."""

    code = "MD010"
    codes = {
        "MD010": "big-M constant loose beyond the configured ratio",
        "MD011": "big-M constant below the data-driven minimum",
    }
    name = "bigm-tightness"
    rationale = (
        "The Eq. 11-13 rows hold iff U equals the TUF level at delay R "
        "*provided* BIG clears the data-driven minimum "
        "max f(R)/(-g(U)) over feasible (R, U) pairs. Below it, "
        "legitimate levels become infeasible and revenue silently "
        "vanishes; far above it, the penalty/SLSQP solve balances "
        "O(BIG) level terms against O(1e-4 h) deadline residuals and "
        "loses the deadline digits. Audit both directions and surface "
        "the tightened constant."
    )

    def check(self, ctx: AuditContext) -> Iterator[ModelFinding]:
        limit = ctx.thresholds.bigm_ratio_limit
        for rc in ctx.inputs.topology.request_classes:
            tuf = rc.tuf
            if tuf.num_levels <= 1:
                continue
            minima = minimal_big_for_series(
                tuf.values, tuf.deadlines, delta=ctx.delta
            )
            minimal = float(minima.max())
            component = f"bigm[{rc.name}]"
            if minimal <= 0.0:
                continue
            if ctx.big < minimal:
                yield self.finding(
                    "MD011", "error", component,
                    f"big-M {ctx.big:g} is below the data-driven minimum "
                    f"{minimal:g}: TUF-feasible (delay, level) pairs "
                    "violate the Eq. 11-13 series and whole utility "
                    "levels are silently cut; raise BIG to at least "
                    f"{recommended_big(tuf.values, tuf.deadlines, ctx.delta):g}",
                    configured=ctx.big, minimal=minimal,
                    recommended=recommended_big(
                        tuf.values, tuf.deadlines, ctx.delta
                    ),
                )
            elif ctx.big > limit * minimal:
                yield self.finding(
                    "MD010", "warning", component,
                    f"big-M {ctx.big:g} is {ctx.big / minimal:.3g}x the "
                    f"data-driven minimum {minimal:g} (limit "
                    f"{limit:g}x): the constraint series mixes O(BIG) "
                    "and O(deadline) magnitudes, a numerical trap for "
                    "the penalty solve; tighten to "
                    f"{recommended_big(tuf.values, tuf.deadlines, ctx.delta):g}",
                    configured=ctx.big, minimal=minimal, ratio=ctx.big / minimal,
                    recommended=recommended_big(
                        tuf.values, tuf.deadlines, ctx.delta
                    ),
                )

    def tightened(self, ctx: AuditContext) -> Dict[str, float]:
        """Per-class tightened BIG values for the report's details."""
        out: Dict[str, float] = {}
        for rc in ctx.inputs.topology.request_classes:
            if rc.tuf.num_levels > 1:
                out[rc.name] = recommended_big(
                    rc.tuf.values, rc.tuf.deadlines, ctx.delta
                )
        return out


@register_audit
class McCormickEnvelopeRule(AuditRule):
    """MD012/MD013 — MILP McCormick bounds vs. the tight load bound."""

    code = "MD012"
    codes = {
        "MD012": "McCormick envelope bound loose beyond the ratio",
        "MD013": "McCormick envelope bound cuts attainable load",
    }
    name = "mccormick-envelope"
    rationale = (
        "The exact linearization y = z * Lambda is only as strong as "
        "its bound: y <= Lambda_max * z with Lambda_max above every "
        "attainable load weakens the LP relaxation (more B&B nodes) "
        "and stretches the coefficient range; Lambda_max *below* the "
        "attainable load truncates feasible dispatch mass and the MILP "
        "silently under-serves. Compare the builder's bound against "
        "the deadline-aware capacity min(offered, M*(C*mu - 1/D))."
    )

    def check(self, ctx: AuditContext) -> Iterator[ModelFinding]:
        if not ctx.multilevel:
            return
        topo = ctx.inputs.topology
        configured = ctx.inputs.lambda_max()  # what the builder installs
        tight = tight_lambda_bound(ctx)
        limit = ctx.thresholds.mccormick_ratio_limit
        for k, rc in enumerate(topo.request_classes):
            if rc.tuf.num_levels <= 1:
                continue
            for l, dc in enumerate(topo.datacenters):
                component = f"mccormick[{rc.name}@{dc.name}]"
                got = float(configured[k, l])
                want = float(tight[k, l])
                if got < want * (1.0 - 1e-12):
                    yield self.finding(
                        "MD013", "error", component,
                        f"envelope bound {got:g} is below the attainable "
                        f"load {want:g}: feasible dispatch mass is "
                        "truncated and the MILP under-serves this class",
                        configured=got, tight=want,
                    )
                elif want > 0.0 and got > limit * want:
                    yield self.finding(
                        "MD012", "warning", component,
                        f"envelope bound {got:g} is {got / want:.3g}x the "
                        f"tight deadline-aware bound {want:g} (limit "
                        f"{limit:g}x): the LP relaxation is needlessly "
                        "weak; tighten Lambda_max toward the deadline-"
                        "aware capacity",
                        configured=got, tight=want, ratio=got / want,
                    )
