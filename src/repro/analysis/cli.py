"""The ``repro lint`` subcommand (wired up by :mod:`repro.cli`).

Exit codes follow the usual lint-gate convention:

* ``0`` — no findings (after suppression and baseline filtering);
* ``1`` — at least one finding;
* ``2`` — usage error (bad path, missing/corrupt baseline file).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.baseline import apply_baseline, read_baseline, write_baseline
from repro.analysis.diagnostics import render_json, render_text
from repro.analysis.registry import all_rules
from repro.analysis.runner import lint_paths
from repro.cli_registry import register_subcommand

__all__ = ["add_lint_arguments", "run_lint"]

_DEFAULT_PATHS = ["src"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro lint`` flags to ``parser``."""
    parser.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", type=str, default=None, metavar="FILE",
        help="filter findings recorded in this baseline file; new "
             "findings still fail the run",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to --baseline FILE and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog (code, name, rationale) and exit",
    )


def _print_rules() -> None:
    # Import for the registration side effect; runner does the same
    # lazily, but --list-rules never reaches the runner.
    import repro.analysis.rules  # noqa: F401

    for rule in all_rules():
        print(f"{rule.code}  {rule.name}")
        print(f"    {rule.rationale}")


@register_subcommand(
    "lint",
    help_text="domain-aware static analysis (reprolint); exit 1 on findings",
    configure=add_lint_arguments,
)
def run_lint(args: argparse.Namespace) -> int:
    """Execute ``repro lint`` for parsed ``args``; returns the exit code."""
    if args.list_rules:
        _print_rules()
        return 0
    if args.write_baseline and args.baseline is None:
        print("error: --write-baseline requires --baseline FILE",
              file=sys.stderr)
        return 2
    paths: List[str] = args.paths or _DEFAULT_PATHS
    try:
        report = lint_paths(paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        count = write_baseline(report.findings, args.baseline)
        print(f"wrote {count} finding(s) to baseline {args.baseline}")
        return 0

    baselined = 0
    if args.baseline is not None:
        try:
            baseline = read_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        report.findings, baselined = apply_baseline(report.findings, baseline)
        report.baselined += baselined

    if args.format == "json":
        print(render_json(
            report.findings,
            suppressed=report.suppressed,
            baselined=report.baselined,
            files_checked=report.files_checked,
        ))
        return 0 if report.clean else 1

    if report.findings:
        print(render_text(report.findings))
    summary = (
        f"{len(report.findings)} finding(s) in "
        f"{report.files_checked} file(s)"
    )
    if report.suppressed:
        summary += f", {report.suppressed} suppressed"
    if report.baselined:
        summary += f", {report.baselined} baselined"
    print(("" if not report.findings else "\n") + summary)
    return 0 if report.clean else 1


def _standalone(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.analysis.cli`` — same gate without the main CLI."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="domain-aware static analysis for the repro codebase",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - thin wrapper
    sys.exit(_standalone())
