"""Finding datatypes and rendering for the optimality certifier.

A :class:`CertFinding` is the certificate sibling of the lint pass's
:class:`~repro.analysis.diagnostics.Diagnostic` and the formulation
auditor's :class:`~repro.analysis.model.findings.ModelFinding`: one
finding from an *independent recomputation* over a solved slot problem
rather than over source code or an unsolved formulation.  Certificate
findings anchor to solution components (a violated bound, a constraint
row, a dual sign, a coupling row), so they carry a ``component`` string
and a ``severity`` — everything else (frozen dataclass, stable ``CT0xx``
code space disjoint from ``RP0xx``/``MD0xx``, sorted text/JSON reports)
mirrors the other two tools so all three read and script the same way.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "SEVERITIES",
    "CertFinding",
    "render_certify_text",
    "render_certify_json",
]

#: Severity ladder.  ``error`` findings gate ``repro certify`` (exit 1)
#: and ``OptimizerConfig(certify="error")``; ``warning``/``info`` report.
SEVERITIES = ("error", "warning", "info")

_CODE_RE = re.compile(r"^CT\d{3}$")

#: Sort rank so reports list errors first, then warnings, then info.
_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class CertFinding:
    """One optimality-certificate finding.

    Attributes
    ----------
    code:
        Stable ``CT0xx`` identifier (the certificate code space,
        disjoint from lint's ``RP0xx`` and the auditor's ``MD0xx``).
    severity:
        ``"error"`` (the claimed-optimal solution fails an independent
        recomputation), ``"warning"`` (numerically suspicious but
        within the relaxed gate), or ``"info"`` (reporting only).
    component:
        The solution element the finding anchors to, e.g.
        ``"primal.bound[x17]"`` or ``"dual.row[3]"``.
    message:
        Human-readable description with the recomputed numbers.
    data:
        Machine-readable payload (violation magnitude, tolerance used,
        recomputed value, ...) for scripting over JSON reports.
    """

    code: str
    severity: str
    component: str
    message: str
    data: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not _CODE_RE.match(self.code):
            raise ValueError(f"certificate codes are CTxxx, got {self.code!r}")
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )
        object.__setattr__(
            self, "data",
            {str(k): float(v) for k, v in dict(self.data).items()},
        )

    @property
    def sort_key(self) -> Tuple[int, str, str, str]:
        """Ordering: severity rank, then code, component, message."""
        return (_SEVERITY_RANK[self.severity], self.code,
                self.component, self.message)

    def to_dict(self) -> Dict:
        """Plain-dict form for ``--format json`` reports and traces."""
        return {
            "code": self.code,
            "severity": self.severity,
            "component": self.component,
            "message": self.message,
            "data": dict(self.data),
        }


def render_certify_text(findings: Iterable[CertFinding]) -> str:
    """``component: SEVERITY CODE message`` lines, errors first."""
    return "\n".join(
        f"{f.component}: {f.severity} {f.code} {f.message}"
        for f in sorted(findings, key=lambda f: f.sort_key)
    )


def render_certify_json(
    findings: Iterable[CertFinding],
    *,
    details: Optional[Dict] = None,
) -> str:
    """Machine-readable report for ``repro certify --format json``."""
    ordered: List[Dict] = [
        f.to_dict() for f in sorted(findings, key=lambda f: f.sort_key)
    ]
    by_severity = {name: 0 for name in SEVERITIES}
    for record in ordered:
        by_severity[record["severity"]] += 1
    return json.dumps(
        {
            "findings": ordered,
            "summary": {
                "findings": len(ordered),
                "errors": by_severity["error"],
                "warnings": by_severity["warning"],
                "info": by_severity["info"],
            },
            "details": details if details is not None else {},
        },
        indent=2,
        sort_keys=True,
    )
