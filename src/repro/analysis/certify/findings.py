"""Finding datatypes and rendering for the optimality certifier.

A :class:`CertFinding` is the certificate sibling of the lint pass's
:class:`~repro.analysis.diagnostics.Diagnostic` and the formulation
auditor's :class:`~repro.analysis.model.findings.ModelFinding`: one
finding from an *independent recomputation* over a solved slot problem
rather than over source code or an unsolved formulation.  Certificate
findings anchor to solution components (a violated bound, a constraint
row, a dual sign, a coupling row), so they carry a ``component`` string
and a ``severity``; the machinery (frozen dataclass, stable ``CT0xx``
code space disjoint from ``RP0xx``/``MD0xx``/``AR0xx``, sorted
text/JSON reports) is the shared :mod:`repro.analysis.report`
implementation, so all the analysis tools read and script the same way.
"""

from __future__ import annotations

from typing import ClassVar

from repro.analysis.report import (
    SEVERITIES,
    Finding,
    render_findings_json,
    render_findings_text,
)

__all__ = [
    "SEVERITIES",
    "CertFinding",
    "render_certify_text",
    "render_certify_json",
]


class CertFinding(Finding):
    """One optimality-certificate finding.

    Attributes
    ----------
    code:
        Stable ``CT0xx`` identifier (the certificate code space,
        disjoint from lint's ``RP0xx`` and the auditor's ``MD0xx``).
    severity:
        ``"error"`` (the claimed-optimal solution fails an independent
        recomputation), ``"warning"`` (numerically suspicious but
        within the relaxed gate), or ``"info"`` (reporting only).
    component:
        The solution element the finding anchors to, e.g.
        ``"primal.bound[x17]"`` or ``"dual.row[3]"``.
    message:
        Human-readable description with the recomputed numbers.
    data:
        Machine-readable payload (violation magnitude, tolerance used,
        recomputed value, ...) for scripting over JSON reports.
    """

    CODE_PREFIX: ClassVar[str] = "CT"
    CODE_LABEL: ClassVar[str] = "certificate"


#: ``component: SEVERITY CODE message`` lines, errors first.
render_certify_text = render_findings_text

#: Machine-readable report for ``repro certify --format json``.
render_certify_json = render_findings_json
