"""The certifier's entry point: run every check over one solved problem.

:func:`certify_solution` is the programmatic API behind the ``repro
certify`` CLI, the ``OptimizerConfig(certify=...)`` hook in
``plan_slot``, and the pytest fixture gating the property harnesses:
build a :class:`~repro.analysis.certify.registry.CertifyContext` around
the solved problem, run every registered check family, and fold the
findings plus the coverage summary into one :class:`CertifyReport`.
The certifier recomputes everything from the problem data — it never
re-solves and never mutates its inputs — so it is cheap enough to gate
every solve of a day-long experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.analysis.certify.findings import (
    CertFinding,
    render_certify_json,
    render_certify_text,
)
from repro.analysis.certify.registry import (
    CertifyContext,
    CertifyThresholds,
    all_certify_rules,
)
from repro.core.formulation import SlotInputs
from repro.core.plan import DispatchPlan
from repro.solvers.base import (
    LinearProgram,
    MixedIntegerProgram,
    Solution,
)

__all__ = ["CertifyReport", "certify_solution"]


@dataclass(frozen=True)
class CertifyReport:
    """Everything one certification run produced.

    Attributes
    ----------
    findings:
        All findings, sorted errors-first (see
        :attr:`~repro.analysis.certify.findings.CertFinding.sort_key`).
    details:
        Coverage payload: ``checked`` (families that ran), ``skipped``
        (families that could not run, with the reason — e.g. the
        backend attached no duals), and the recomputed headline numbers
        (``primal_objective``, worst residuals).
    """

    findings: List[CertFinding] = field(default_factory=list)
    details: Dict = field(default_factory=dict)

    @property
    def errors(self) -> List[CertFinding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[CertFinding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def clean(self) -> bool:
        """True when no *error*-severity finding was raised."""
        return not self.errors

    def render_text(self) -> str:
        if not self.findings:
            return "certificates: clean"
        return render_certify_text(self.findings)

    def render_json(self) -> str:
        return render_certify_json(self.findings, details=self.details)


def certify_solution(
    problem: Union[LinearProgram, MixedIntegerProgram],
    solution: Solution,
    inputs: Optional[SlotInputs] = None,
    plan: Optional[DispatchPlan] = None,
    coupling_rows: Optional[np.ndarray] = None,
    thresholds: Optional[CertifyThresholds] = None,
) -> CertifyReport:
    """Independently verify one solve; report, never raise.

    Parameters
    ----------
    problem:
        The LP actually solved, or the MILP when the solve enforced
        integrality (enables the CT040/CT041 incumbent checks).
    solution:
        The solver's answer.  Must carry ``x``; dual-side checks run
        only when the backend attached marginals (HiGHS LP, the sparse
        dual simplex) and are recorded as skipped otherwise.
    inputs:
        The slot problem behind the LP; enables the CT051 profit
        identity (with ``plan``) and the big-M-aware CT041 gap scale.
    plan:
        The decoded :class:`~repro.core.plan.DispatchPlan` for
        ``solution.x`` — pass the plan decoded *before* any
        consolidation/spare-capacity postprocessing, which deliberately
        reshapes profit-neutral structure.
    coupling_rows:
        Indices of ``a_ub`` rows shared across decomposed blocks;
        enables the CT050 coupling re-check.
    thresholds:
        Tolerance knobs; defaults to :class:`CertifyThresholds`.
    """
    if isinstance(problem, MixedIntegerProgram):
        lp, integer_mask = problem.lp, problem.integer_mask
    else:
        lp, integer_mask = problem, None
    if solution.x is None:
        finding = CertFinding(
            code="CT010", severity="error", component="primal.x",
            message=(
                "nothing to certify: solution carries no point "
                f"(status {solution.status.value})"
            ),
        )
        return CertifyReport(
            findings=[finding],
            details={"checked": [], "skipped": {"all": "no solution vector"}},
        )
    ctx = CertifyContext(
        lp=lp,
        solution=solution,
        integer_mask=integer_mask,
        inputs=inputs,
        plan=plan,
        coupling_rows=coupling_rows,
        thresholds=(
            thresholds if thresholds is not None else CertifyThresholds()
        ),
    )
    findings: List[CertFinding] = []
    checked: List[str] = []
    skipped: Dict[str, str] = {}
    for rule in all_certify_rules():
        ran, reason = _family_coverage(rule.name, ctx)
        if ran:
            checked.append(rule.name)
            findings.extend(rule.check(ctx))
        else:
            skipped[rule.name] = reason
    findings.sort(key=lambda f: f.sort_key)

    details: Dict = {"checked": checked, "skipped": skipped}
    details["primal_objective"] = float(lp.c @ ctx.x)
    if solution.objective is not None:
        details["reported_objective"] = float(solution.objective)
    residuals = lp.residuals(ctx.x)
    details["residuals"] = {k: float(v) for k, v in residuals.items()}
    return CertifyReport(findings=findings, details=details)


def _family_coverage(name: str, ctx: CertifyContext) -> "tuple[bool, str]":
    """Whether one check family can run on ``ctx`` (and why not)."""
    if name in ("dual-feasibility", "optimality-gap"):
        if not ctx.has_duals:
            return False, "backend attached no dual marginals"
    elif name == "milp-incumbent":
        if ctx.integer_mask is None or not bool(np.any(ctx.integer_mask)):
            return False, "not a MILP solve"
    elif name == "decomposition-invariants":
        if ctx.coupling_rows is None and (
            ctx.plan is None or ctx.inputs is None
        ):
            return False, "no coupling rows or decoded plan supplied"
    return True, ""
