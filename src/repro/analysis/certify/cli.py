"""The ``repro certify`` subcommand (wired up by :mod:`repro.cli`).

Solves one or more slots of a canned experiment scenario with the
optimality certifier active and reports every ``CT0xx`` finding.  Exit
codes follow the same gate convention as ``repro lint`` and ``repro
audit``:

* ``0`` — every certified solve is clean (warnings/info may be present);
* ``1`` — at least one CT error (a solve failed independent
  verification);
* ``2`` — usage error (bad slot index, unwritable report path).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.analysis.certify.findings import (
    CertFinding,
    render_certify_json,
    render_certify_text,
)
from repro.analysis.certify.registry import all_certify_rules
from repro.cli_registry import register_subcommand

__all__ = ["add_certify_arguments", "run_certify"]

_SCENARIOS = ("section5", "section6", "section7")


def add_certify_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro certify`` flags to ``parser``."""
    parser.add_argument(
        "--scenario", choices=list(_SCENARIOS), default="section6",
        help="experiment whose slots to solve and certify "
             "(default: section6)",
    )
    parser.add_argument(
        "--slot", type=int, default=0,
        help="certify this slot (the optimizer still warms up from "
             "slot 0 so the certified solve is the realistic "
             "warm-started one; default: 0)",
    )
    parser.add_argument(
        "--slots", type=int, default=None, metavar="N",
        help="certify slots 0..N-1 instead of a single slot "
             "(e.g. the scenario's full day)",
    )
    parser.add_argument(
        "--method",
        choices=["auto", "lp", "milp", "bigm", "greedy"], default="auto",
        help="level method to solve with (default: auto)",
    )
    parser.add_argument(
        "--lp-method", choices=["highs", "simplex", "ipm"],
        default="highs", help="LP backend (default: highs)",
    )
    parser.add_argument(
        "--sparse", action="store_true",
        help="route slot LPs through the sparse/decomposed path",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--out", type=str, default=None, metavar="FILE",
        help="additionally write the JSON report to this file",
    )
    parser.add_argument(
        "--list-checks", action="store_true",
        help="print the certificate check catalog (codes, rationale) "
             "and exit",
    )


def _print_checks() -> None:
    # Import for the registration side effect (mirrors ``repro audit
    # --list-checks``); the checks register on import of the package.
    import repro.analysis.certify  # noqa: F401

    for rule in all_certify_rules():
        print(f"{rule.code}  {rule.name}")
        for code in sorted(rule.codes):
            print(f"    {code}: {rule.codes[code]}")
        print(f"    {rule.rationale}")


def _scenario_experiment(scenario: str) -> object:
    if scenario == "section5":
        from repro.experiments.section5 import section5_experiment
        return section5_experiment("low")
    if scenario == "section6":
        from repro.experiments.section6 import section6_experiment
        return section6_experiment()
    from repro.experiments.section7 import section7_experiment
    return section7_experiment()


def _certify_slots(
    scenario: str, slots: List[int], method: str, lp_method: str,
    sparse: bool,
) -> "tuple[List[CertFinding], Dict]":
    """Solve slots 0..max(slots) and collect certificates for ``slots``.

    Findings are re-anchored with a ``slot<N>:`` component prefix so a
    multi-slot report stays readable.  Returns the findings plus a
    details payload (slots certified, solver counters).
    """
    from repro.core.config import OptimizerConfig
    from repro.core.optimizer import ProfitAwareOptimizer
    from repro.obs import InMemoryCollector

    exp = _scenario_experiment(scenario)
    collector = InMemoryCollector()
    config = OptimizerConfig(
        level_method=method,
        lp_method=lp_method,
        sparse=sparse,
        certify="warn",
        collector=collector,
    )
    optimizer = ProfitAwareOptimizer(exp.topology, config=config)
    wanted = set(slots)
    for slot in range(max(slots) + 1):
        optimizer.plan_slot(
            exp.trace.arrivals_at(slot), exp.market.prices_at(slot)
        )
    findings: List[CertFinding] = []
    for trace in collector.slot_traces:
        if trace.slot not in wanted:
            continue
        for record in trace.certificates:
            findings.append(CertFinding(
                code=record["code"],
                severity=record["severity"],
                component=f"slot{trace.slot}:{record['component']}",
                message=record["message"],
                data=record.get("data", {}),
            ))
    details = {
        "scenario": scenario,
        "slots_certified": sorted(wanted),
        "solves_certified": collector.counters.get(
            "optimizer.certifies", 0
        ),
        "solves_skipped": collector.counters.get(
            "optimizer.certify_skipped", 0
        ),
    }
    return findings, details


@register_subcommand(
    "certify",
    help_text="solve scenario slots and independently verify the "
              "optimality certificates; exit 1 on CT-level errors",
    configure=add_certify_arguments,
)
def run_certify(args: argparse.Namespace) -> int:
    """Execute ``repro certify`` for parsed ``args``; returns the exit
    code."""
    if args.list_checks:
        _print_checks()
        return 0
    if args.slots is not None:
        if args.slots < 1:
            print(f"error: --slots must be >= 1 (got {args.slots})",
                  file=sys.stderr)
            return 2
        slots = list(range(args.slots))
    else:
        if args.slot < 0:
            print(f"error: --slot must be >= 0 (got {args.slot})",
                  file=sys.stderr)
            return 2
        slots = [args.slot]

    findings, details = _certify_slots(
        args.scenario, slots, args.method, args.lp_method, args.sparse
    )
    errors = [f for f in findings if f.severity == "error"]
    warnings = [f for f in findings if f.severity == "warning"]

    if args.out is not None:
        try:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(
                    render_certify_json(findings, details=details) + "\n"
                )
        except OSError as exc:
            print(f"error: cannot write report: {exc}", file=sys.stderr)
            return 2

    if args.format == "json":
        print(render_certify_json(findings, details=details))
    else:
        if findings:
            print(render_certify_text(findings))
            print()
        else:
            print("certificates: clean")
        print(
            f"{args.scenario} slot(s) "
            f"{slots[0] if len(slots) == 1 else f'0..{slots[-1]}'}: "
            f"{details['solves_certified']:g} solve(s) certified, "
            f"{len(findings)} finding(s): {len(errors)} error(s), "
            f"{len(warnings)} warning(s), "
            f"{len(findings) - len(errors) - len(warnings)} info"
        )
    return 1 if errors else 0


def _standalone(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.analysis.certify.cli`` — the gate without the
    CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-certify",
        description="optimality-certificate verifier for solved slots",
    )
    add_certify_arguments(parser)
    return run_certify(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - thin wrapper
    sys.exit(_standalone())
