"""The certificate check families (``CT010`` .. ``CT051``).

Every family independently *recomputes* the quantity it certifies from
the problem data — none of them trusts a solver-reported residual.  The
code space:

* ``CT010``/``CT011`` — primal feasibility (bounds, rows);
* ``CT020``/``CT021`` — dual feasibility, reduced-cost signs;
* ``CT030``/``CT031`` — complementary slackness, relative duality gap;
* ``CT040``/``CT041`` — incumbent integrality, bound-sandwich width;
* ``CT050``/``CT051`` — coupling-row satisfaction after a decomposed
  block accept, and the collapse→expand profit identity.

Dual-side families skip silently when the backend attached no marginals
(the own simplex, IPM, B&B, and presolve-restored solutions are
primal-only); :func:`~repro.analysis.certify.certify.certify_solution`
records the skip in the report details so "clean" is never mistaken for
"fully checked".
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.analysis.certify.findings import CertFinding
from repro.analysis.certify.registry import (
    CertifyContext,
    CertifyRule,
    register_certify,
)

__all__ = [
    "PrimalCertificateRule",
    "DualCertificateRule",
    "GapCertificateRule",
    "IntegralityCertificateRule",
    "DecompositionCertificateRule",
]


@register_certify
class PrimalCertificateRule(CertifyRule):
    code = "CT010"
    codes = {
        "CT010": "solution violates a variable bound (or is non-finite)",
        "CT011": "solution violates a constraint row",
    }
    name = "primal-feasibility"
    rationale = (
        "A claimed-optimal point must first be a *feasible* point: every "
        "bound and every row recomputed from scratch within the "
        "feasibility tolerance, scaled by the bound/rhs magnitude so "
        "big-M rows and \\$-scale objectives are judged fairly."
    )

    def check(self, ctx: CertifyContext) -> Iterator[CertFinding]:
        x = ctx.x
        tol = ctx.thresholds.feas_tol
        if not np.all(np.isfinite(x)):
            bad = int(np.flatnonzero(~np.isfinite(x))[0])
            yield self.finding(
                "CT010", "error", f"primal.x[{bad}]",
                "solution vector contains a non-finite entry",
            )
            return
        lp = ctx.lp
        lo_viol = lp.lower - x
        hi_viol = x - lp.upper
        lo_lim = tol * np.maximum(
            1.0, np.where(np.isfinite(lp.lower), np.abs(lp.lower), 1.0)
        )
        hi_lim = tol * np.maximum(
            1.0, np.where(np.isfinite(lp.upper), np.abs(lp.upper), 1.0)
        )
        for viol, lim, side in ((lo_viol, lo_lim, "lower"),
                                (hi_viol, hi_lim, "upper")):
            over = viol - lim
            if np.any(over > 0.0):
                j = int(np.argmax(over))
                yield self.finding(
                    "CT010", "error", f"primal.bound[x{j}]",
                    f"{side} bound violated by {viol[j]:.3e} "
                    f"(tolerance {lim[j]:.3e}; "
                    f"{int(np.sum(over > 0.0))} bound(s) total)",
                    violation=float(viol[j]), tolerance=float(lim[j]),
                    count=float(np.sum(over > 0.0)),
                )
        if lp.a_ub is not None:
            slack = ctx.slack_ub()
            lim = tol * np.maximum(1.0, np.abs(lp.b_ub))
            over = -slack - lim
            if np.any(over > 0.0):
                i = int(np.argmax(over))
                yield self.finding(
                    "CT011", "error", f"primal.row[ub:{i}]",
                    f"inequality row exceeded by {-slack[i]:.3e} "
                    f"(tolerance {lim[i]:.3e}; "
                    f"{int(np.sum(over > 0.0))} row(s) total)",
                    violation=float(-slack[i]), tolerance=float(lim[i]),
                    count=float(np.sum(over > 0.0)),
                )
        if lp.a_eq is not None:
            resid = np.abs(np.asarray(lp.a_eq @ x).ravel() - lp.b_eq)
            lim = tol * np.maximum(1.0, np.abs(lp.b_eq))
            over = resid - lim
            if np.any(over > 0.0):
                i = int(np.argmax(over))
                yield self.finding(
                    "CT011", "error", f"primal.row[eq:{i}]",
                    f"equality row off by {resid[i]:.3e} "
                    f"(tolerance {lim[i]:.3e}; "
                    f"{int(np.sum(over > 0.0))} row(s) total)",
                    violation=float(resid[i]), tolerance=float(lim[i]),
                    count=float(np.sum(over > 0.0)),
                )


@register_certify
class DualCertificateRule(CertifyRule):
    code = "CT020"
    codes = {
        "CT020": "dual multiplier has the wrong sign (or is non-finite)",
        "CT021": "reduced cost violates its sign condition",
    }
    name = "dual-feasibility"
    rationale = (
        "In the marginal convention (duals report the change of the "
        "minimization objective per unit of rhs), a binding ``<=`` row "
        "carries y <= 0 and the reduced cost c - A'y must be "
        "nonnegative at a lower bound, nonpositive at an upper bound, "
        "and zero for interior variables.  A sign flip means the "
        "claimed dual certificate proves nothing."
    )

    def check(self, ctx: CertifyContext) -> Iterator[CertFinding]:
        if not ctx.has_duals:
            return
        scale = ctx.objective_scale
        tol = ctx.thresholds.dual_tol * scale
        y = np.asarray(ctx.solution.ineq_marginals, dtype=float).ravel()
        if not np.all(np.isfinite(y)):
            bad = int(np.flatnonzero(~np.isfinite(y))[0])
            yield self.finding(
                "CT020", "error", f"dual.row[ub:{bad}]",
                "inequality marginal is non-finite",
            )
            return
        if np.any(y > tol):
            i = int(np.argmax(y))
            yield self.finding(
                "CT020", "error", f"dual.row[ub:{i}]",
                f"marginal of a <= row is positive ({y[i]:.3e}; "
                f"tolerance {tol:.3e}; "
                f"{int(np.sum(y > tol))} row(s) total)",
                value=float(y[i]), tolerance=tol,
                count=float(np.sum(y > tol)),
            )
        d = ctx.reduced_costs()
        if d is None or not np.all(np.isfinite(d)):
            if d is not None:
                bad = int(np.flatnonzero(~np.isfinite(d))[0])
                yield self.finding(
                    "CT021", "error", f"dual.reduced[x{bad}]",
                    "reduced cost is non-finite",
                )
            return
        x, lp = ctx.x, ctx.lp
        feas = ctx.thresholds.feas_tol
        at_lower = np.isfinite(lp.lower) & (
            x - lp.lower
            <= feas * np.maximum(1.0, np.abs(np.where(
                np.isfinite(lp.lower), lp.lower, 0.0)))
        )
        at_upper = np.isfinite(lp.upper) & (
            lp.upper - x
            <= feas * np.maximum(1.0, np.abs(np.where(
                np.isfinite(lp.upper), lp.upper, 0.0)))
        )
        fixed = at_lower & at_upper
        viol = np.zeros_like(d)
        only_lower = at_lower & ~fixed
        only_upper = at_upper & ~fixed
        interior = ~at_lower & ~at_upper
        viol[only_lower] = np.maximum(0.0, -d[only_lower] - tol)
        viol[only_upper] = np.maximum(0.0, d[only_upper] - tol)
        viol[interior] = np.maximum(0.0, np.abs(d[interior]) - tol)
        if np.any(viol > 0.0):
            j = int(np.argmax(viol))
            kind = ("at lower bound" if only_lower[j]
                    else "at upper bound" if only_upper[j] else "interior")
            yield self.finding(
                "CT021", "error", f"dual.reduced[x{j}]",
                f"reduced cost {d[j]:.3e} violates the sign condition "
                f"for a variable {kind} (tolerance {tol:.3e}; "
                f"{int(np.sum(viol > 0.0))} variable(s) total)",
                reduced_cost=float(d[j]), tolerance=tol,
                count=float(np.sum(viol > 0.0)),
            )


@register_certify
class GapCertificateRule(CertifyRule):
    code = "CT030"
    codes = {
        "CT030": "complementary slackness violated on a row",
        "CT031": "relative primal-dual gap exceeds the gate",
    }
    name = "optimality-gap"
    rationale = (
        "Strong duality certifies optimality: a slack row must carry a "
        "zero multiplier, and the dual objective recomputed from the "
        "multipliers and bound terms must match the reported primal "
        "objective to the relative gap gate.  This is the check that "
        "catches a corrupted objective value even when the point itself "
        "is feasible."
    )

    def check(self, ctx: CertifyContext) -> Iterator[CertFinding]:
        if not ctx.has_duals:
            return
        lp = ctx.lp
        scale = ctx.objective_scale
        th = ctx.thresholds
        y = np.asarray(ctx.solution.ineq_marginals, dtype=float).ravel()
        if not np.all(np.isfinite(y)):
            return  # CT020 reports it
        slack = ctx.slack_ub()
        if slack is not None:
            slack_lim = th.comp_tol * np.maximum(1.0, np.abs(lp.b_ub))
            mult_lim = th.comp_tol * scale
            bad = (slack > slack_lim) & (np.abs(y) > mult_lim)
            if np.any(bad):
                prod = np.where(bad, slack * np.abs(y), 0.0)
                i = int(np.argmax(prod))
                yield self.finding(
                    "CT030", "error", f"gap.row[ub:{i}]",
                    f"row has slack {slack[i]:.3e} and multiplier "
                    f"{y[i]:.3e} at once ({int(bad.sum())} row(s) total)",
                    slack=float(slack[i]), multiplier=float(y[i]),
                    count=float(bad.sum()),
                )
        d = ctx.reduced_costs()
        if d is None or not np.all(np.isfinite(d)):
            return  # CT021 reports it
        tol = th.dual_tol * scale
        dual_obj = float(y @ lp.b_ub) if lp.a_ub is not None else 0.0
        if lp.a_eq is not None:
            y_eq = np.asarray(
                ctx.solution.eq_marginals, dtype=float
            ).ravel()
            if not np.all(np.isfinite(y_eq)):
                return
            dual_obj += float(y_eq @ lp.b_eq)
        # Bound terms of the dual objective; sub-tolerance reduced costs
        # are clamped to zero so inf bounds never produce inf * 0.
        pos = d > tol
        neg = d < -tol
        bounds_used = np.where(pos, lp.lower, np.where(neg, lp.upper, 0.0))
        active = pos | neg
        if np.any(active & ~np.isfinite(bounds_used)):
            return  # dual-infeasible direction: CT021 reports the sign
        contrib = np.where(active, d * bounds_used, 0.0)
        dual_obj += float(contrib.sum())
        primal = (
            float(ctx.solution.objective)
            if ctx.solution.objective is not None
            else float(lp.c @ ctx.x)
        )
        gap = abs(primal - dual_obj) / (1.0 + abs(primal))
        if gap > th.gap_rel:
            yield self.finding(
                "CT031", "error", "gap.objective",
                f"relative primal-dual gap {gap:.3e} exceeds "
                f"{th.gap_rel:.1e} (primal {primal:.6e}, "
                f"dual {dual_obj:.6e})",
                gap=gap, primal=primal, dual=dual_obj,
            )


@register_certify
class IntegralityCertificateRule(CertifyRule):
    code = "CT040"
    codes = {
        "CT040": "MILP incumbent has a fractional integer variable",
        "CT041": "branch-and-bound bound sandwich is loose or impossible",
    }
    name = "milp-incumbent"
    rationale = (
        "A MILP incumbent must actually be integral, and its objective "
        "must sit inside the proven bound sandwich.  The gap gate "
        "scales with the big-M recommended for the slot's TUFs, since "
        "multilevel objectives are O(big) and an absolute gate would "
        "either always or never fire."
    )

    def check(self, ctx: CertifyContext) -> Iterator[CertFinding]:
        if ctx.integer_mask is None or not np.any(ctx.integer_mask):
            return
        x = ctx.x
        th = ctx.thresholds
        idx = np.flatnonzero(ctx.integer_mask)
        frac = np.abs(x[idx] - np.round(x[idx]))
        if np.any(frac > th.int_tol):
            worst = int(np.argmax(frac))
            j = int(idx[worst])
            yield self.finding(
                "CT040", "error", f"milp.integer[x{j}]",
                f"integer variable is {x[j]:.6f} "
                f"({frac[worst]:.3e} from integral; "
                f"{int(np.sum(frac > th.int_tol))} variable(s) total)",
                value=float(x[j]), fractional=float(frac[worst]),
                count=float(np.sum(frac > th.int_tol)),
            )
        objective = (
            abs(float(ctx.solution.objective))
            if ctx.solution.objective is not None else 0.0
        )
        scale = max(1.0, objective, self._recommended_big(ctx))
        gap = float(ctx.solution.gap)
        if gap < -th.feas_tol * scale:
            yield self.finding(
                "CT041", "error", "milp.gap",
                f"bound sandwich is impossible: incumbent sits "
                f"{-gap:.3e} below the proven bound",
                gap=gap, scale=scale,
            )
        elif gap > th.milp_gap_rel * scale:
            yield self.finding(
                "CT041", "warning", "milp.gap",
                f"bound sandwich width {gap:.3e} exceeds "
                f"{th.milp_gap_rel:.1e} x scale {scale:.3e}",
                gap=gap, scale=scale,
            )

    @staticmethod
    def _recommended_big(ctx: CertifyContext) -> float:
        """Worst tightened big-M over the slot's multilevel TUFs."""
        if ctx.inputs is None:
            return 0.0
        from repro.analysis.model.bigm import recommended_big

        worst = 0.0
        for rc in ctx.inputs.topology.request_classes:
            if rc.tuf.num_levels > 1:
                worst = max(worst, float(recommended_big(
                    rc.tuf.values, rc.tuf.deadlines
                )))
        return worst


@register_certify
class DecompositionCertificateRule(CertifyRule):
    code = "CT050"
    codes = {
        "CT050": "coupling row violated after decomposed block accept",
        "CT051": "decoded plan's profit disagrees with the objective",
    }
    name = "decomposition-invariants"
    rationale = (
        "The sparse path solves per-class blocks and accepts the "
        "concatenation only if the shared capacity rows still hold; the "
        "symmetric collapse is only valid if expanding the aggregated "
        "solution back to per-server rates reproduces the objective as "
        "net profit.  Both invariants are recomputed here end to end."
    )

    def check(self, ctx: CertifyContext) -> Iterator[CertFinding]:
        lp = ctx.lp
        th = ctx.thresholds
        if ctx.coupling_rows is not None and lp.a_ub is not None:
            rows = ctx.coupling_rows
            slack = ctx.slack_ub()[rows]
            lim = th.feas_tol * np.maximum(1.0, np.abs(lp.b_ub[rows]))
            over = -slack - lim
            if np.any(over > 0.0):
                w = int(np.argmax(over))
                yield self.finding(
                    "CT050", "error", f"decomp.coupling[{int(rows[w])}]",
                    f"coupling row exceeded by {-slack[w]:.3e} after "
                    f"block accept (tolerance {lim[w]:.3e}; "
                    f"{int(np.sum(over > 0.0))} row(s) total)",
                    violation=float(-slack[w]), tolerance=float(lim[w]),
                    count=float(np.sum(over > 0.0)),
                )
        if ctx.plan is None or ctx.inputs is None:
            return
        if ctx.solution.objective is None:
            return
        from repro.core.objective import evaluate_plan

        try:
            breakdown = evaluate_plan(
                ctx.plan,
                ctx.inputs.arrivals,
                ctx.inputs.prices,
                slot_duration=ctx.inputs.slot_duration,
                apply_pue=ctx.inputs.apply_pue,
            )
        except ValueError as exc:
            yield self.finding(
                "CT051", "error", "decomp.profit",
                f"decoded plan is not scoreable: {exc}",
            )
            return
        recomputed = float(breakdown.net_profit)
        claimed = -float(ctx.solution.objective)
        lim = th.profit_rel * max(1.0, abs(recomputed), abs(claimed))
        if recomputed < claimed - lim:
            yield self.finding(
                "CT051", "error", "decomp.profit",
                f"recomputed net profit {recomputed:.6e} falls short of "
                f"the objective {claimed:.6e} "
                f"(shortfall {claimed - recomputed:.3e} > {lim:.3e})",
                recomputed=recomputed, claimed=claimed,
                tolerance=lim,
            )
        elif recomputed > claimed + lim:
            # Step TUFs earn the band the *realized* delay lands in, so
            # a plan with slack on a delay row can legitimately beat the
            # level the objective targeted — report, don't gate.
            yield self.finding(
                "CT051", "info", "decomp.profit",
                f"recomputed net profit {recomputed:.6e} beats the "
                f"objective {claimed:.6e} (realized delays land in a "
                f"better utility band)",
                recomputed=recomputed, claimed=claimed,
                tolerance=lim,
            )
