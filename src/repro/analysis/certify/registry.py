"""Certificate-rule registry and the context handed to every check.

Mirrors :mod:`repro.analysis.model.registry` (the formulation auditor):
a :class:`CertifyRule` registers itself under a stable ``CT0xx``
*family* code via :func:`register_certify`, carries a name and a
rationale for the catalog, and yields
:class:`~repro.analysis.certify.findings.CertFinding` records from
:meth:`CertifyRule.check`.  Rules are stateless; everything
solve-specific lives on the shared :class:`CertifyContext`, which also
caches the derived quantities (row slacks, reduced costs, the dual
objective) several families share.

A rule family may emit several related codes (e.g. the primal family
owns CT010 *and* CT011); the registry key is the family's lead code and
:attr:`CertifyRule.codes` enumerates the full set for ``--list-checks``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Type

import numpy as np

from repro.analysis.certify.findings import CertFinding
from repro.core.formulation import SlotInputs
from repro.core.plan import DispatchPlan
from repro.solvers.base import LinearProgram, Solution
from repro.solvers.tolerances import FEASIBILITY_TOL, INTEGRALITY_TOL

__all__ = [
    "CertifyContext",
    "CertifyRule",
    "CertifyThresholds",
    "register_certify",
    "all_certify_rules",
    "get_certify_rule",
]

_CODE_RE = re.compile(r"^CT\d{3}$")


@dataclass
class CertifyThresholds:
    """Configurable tolerances shared by the certificate checks.

    Defaults derive from :mod:`repro.solvers.tolerances` so the
    certifier and the solvers agree on what "satisfied" means; each
    check scales its tolerance by the relevant problem magnitude
    (right-hand side, objective norm) so certificates stay meaningful
    across the paper's \\$-scale objectives and big-M rows.

    Attributes
    ----------
    feas_tol:
        Relative primal-feasibility tolerance (bounds and rows,
        CT010/CT011/CT050).
    dual_tol:
        Relative dual-feasibility and reduced-cost-sign tolerance
        (CT020/CT021), scaled by ``max(1, |c|_inf)``.
    comp_tol:
        Complementary-slackness tolerance (CT030): a row is flagged when
        both its slack and its multiplier are above this, relatively.
    gap_rel:
        Relative primal-dual gap gate (CT031).
    int_tol:
        Distance from the nearest integer tolerated for
        integer-constrained variables (CT040).
    milp_gap_rel:
        Relative branch-and-bound bound-sandwich width above which
        CT041 warns (an incumbent far from its proven bound).
    profit_rel:
        Relative mismatch tolerated between the decoded plan's
        recomputed net profit and the solver objective (CT051).
    """

    feas_tol: float = FEASIBILITY_TOL
    dual_tol: float = 1e-6
    comp_tol: float = 1e-6
    gap_rel: float = 1e-6
    int_tol: float = INTEGRALITY_TOL
    milp_gap_rel: float = 1e-4
    profit_rel: float = 1e-6


@dataclass
class CertifyContext:
    """Everything the certificate checks may need about one solve.

    The context is built once per certification and caches the shared
    recomputations.  ``solution`` must be an ``OPTIMAL`` solution of
    ``lp`` (callers gate on :attr:`Solution.ok` before certifying);
    dual-side checks degrade gracefully when the backend attached no
    marginals (the own simplex, IPM, B&B, and presolve-restored
    solutions carry primal data only).
    """

    lp: LinearProgram
    solution: Solution
    #: Integrality mask when the solve was a MILP (enables CT040/041).
    integer_mask: Optional[np.ndarray] = None
    #: Slot problem behind the LP (enables the CT051 profit identity).
    inputs: Optional[SlotInputs] = None
    #: Decoded plan for the solution (enables CT051).
    plan: Optional[DispatchPlan] = None
    #: Indices of ``a_ub`` rows coupling decomposed blocks (CT050).
    coupling_rows: Optional[np.ndarray] = None
    thresholds: CertifyThresholds = field(default_factory=CertifyThresholds)

    _x: Optional[np.ndarray] = field(default=None, repr=False)
    _slack_ub: Optional[np.ndarray] = field(default=None, repr=False)
    _reduced_costs: Optional[np.ndarray] = field(default=None, repr=False)
    _built_reduced: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.integer_mask is not None:
            self.integer_mask = np.asarray(
                self.integer_mask, dtype=bool
            ).ravel()
        if self.coupling_rows is not None:
            self.coupling_rows = np.asarray(
                self.coupling_rows, dtype=int
            ).ravel()

    # ------------------------------------------------------ cached derived

    @property
    def x(self) -> np.ndarray:
        """The solution vector as a float array (never None)."""
        if self._x is None:
            if self.solution.x is None:
                raise ValueError("cannot certify a solution without x")
            self._x = np.asarray(self.solution.x, dtype=float).ravel()
        return self._x

    @property
    def objective_scale(self) -> float:
        """``max(1, |c|_inf)`` — the dual-side tolerance scale."""
        return max(1.0, float(np.abs(self.lp.c).max(initial=0.0)))

    @property
    def has_duals(self) -> bool:
        """True when the dual-side families (CT020..CT031) can run.

        Requires inequality marginals matching the row count, plus
        equality marginals whenever the problem has equality rows (the
        reduced costs need both).  Marginals of the wrong length (e.g.
        block-local duals surviving a decomposition) degrade to
        primal-only certification rather than crashing.
        """
        if self.lp.a_ub is not None:
            y = self.solution.ineq_marginals
            if y is None or np.asarray(y).size != self.lp.a_ub.shape[0]:
                return False
        elif self.solution.ineq_marginals is None:
            return False
        if self.lp.a_eq is not None:
            y_eq = self.solution.eq_marginals
            if y_eq is None or np.asarray(y_eq).size != self.lp.a_eq.shape[0]:
                return False
        return True

    def slack_ub(self) -> Optional[np.ndarray]:
        """``b_ub - A_ub x`` (None when the LP has no inequality rows)."""
        if self.lp.a_ub is None:
            return None
        if self._slack_ub is None:
            self._slack_ub = np.asarray(
                self.lp.b_ub - self.lp.a_ub @ self.x
            ).ravel()
        return self._slack_ub

    def reduced_costs(self) -> Optional[np.ndarray]:
        """``c - A_ub' y - A_eq' y_eq`` (None without dual data).

        In the marginal convention (``y`` is the change of the
        *minimization* objective per unit of rhs), binding ``<=`` rows
        carry ``y <= 0`` and the reduced cost of a variable at its
        lower bound is nonnegative.
        """
        if not self._built_reduced:
            self._built_reduced = True
            if self.has_duals:
                d = self.lp.c.astype(float).copy()
                if self.lp.a_ub is not None:
                    y = np.asarray(
                        self.solution.ineq_marginals, dtype=float
                    ).ravel()
                    d -= np.asarray(self.lp.a_ub.T @ y).ravel()
                if self.lp.a_eq is not None:
                    y_eq = np.asarray(
                        self.solution.eq_marginals, dtype=float
                    ).ravel()
                    d -= np.asarray(self.lp.a_eq.T @ y_eq).ravel()
                self._reduced_costs = d
        return self._reduced_costs


class CertifyRule:
    """Base class for certificate checks; subclasses override + check.

    Attributes
    ----------
    code:
        Lead ``CT0xx`` code the family registers under.
    codes:
        All codes the family can emit, mapped to a one-line summary
        (surfaced by ``repro certify --list-checks`` and the docs
        catalog).
    name:
        Short kebab-case slug of the check family.
    rationale:
        One paragraph tying the certificate to LP/MILP optimality
        theory or to the repo's solve-path invariants.
    """

    code: str = ""
    codes: Dict[str, str] = {}
    name: str = ""
    rationale: str = ""

    def check(self, ctx: CertifyContext) -> Iterator[CertFinding]:
        """Yield findings for one solved problem."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for typing

    def finding(
        self,
        code: str,
        severity: str,
        component: str,
        message: str,
        **data: float,
    ) -> CertFinding:
        """Build one finding, asserting the code belongs to this family."""
        if code not in self.codes:
            raise ValueError(
                f"rule {self.name} emitted unregistered code {code}"
            )
        return CertFinding(
            code=code, severity=severity, component=component,
            message=message, data=data,
        )


_REGISTRY: Dict[str, CertifyRule] = {}


def register_certify(rule_cls: Type[CertifyRule]) -> Type[CertifyRule]:
    """Class decorator adding one certificate check to the registry."""
    if not _CODE_RE.match(rule_cls.code or ""):
        raise ValueError(
            f"certify rule {rule_cls.__name__} needs a lead code matching "
            f"CTxxx, got {rule_cls.code!r}"
        )
    if rule_cls.code in _REGISTRY:
        raise ValueError(f"duplicate certify rule code {rule_cls.code}")
    if not rule_cls.name:
        raise ValueError(f"certify rule {rule_cls.code} needs a name")
    for code in rule_cls.codes:
        if not _CODE_RE.match(code):
            raise ValueError(
                f"certify rule {rule_cls.name}: bad code {code!r}"
            )
    if rule_cls.code not in rule_cls.codes:
        raise ValueError(
            f"certify rule {rule_cls.name}: lead code {rule_cls.code} "
            "missing from its codes catalog"
        )
    _REGISTRY[rule_cls.code] = rule_cls()
    return rule_cls


def all_certify_rules() -> List[CertifyRule]:
    """Every registered certificate check, sorted by lead code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_certify_rule(code: str) -> CertifyRule:
    """Look up the check family owning ``code`` (lead or member)."""
    for rule in _REGISTRY.values():
        if code == rule.code or code in rule.codes:
            return rule
    raise KeyError(
        f"unknown certificate code {code!r}; known: "
        f"{sorted(c for r in _REGISTRY.values() for c in r.codes)}"
    )
