"""Optimality-certificate verifier (``repro certify``) for solve paths.

Third member of the analysis triad, with its own ``CT0xx`` code space:

* ``repro.analysis`` (``repro lint``, ``RP0xx``) statically checks the
  *source code*;
* ``repro.analysis.model`` (``repro audit``, ``MD0xx``) statically
  checks the *built slot problem* before solving;
* this package (``repro certify``, ``CT0xx``) independently verifies
  the *solved answer*: primal feasibility, dual feasibility and
  reduced-cost signs, complementary slackness and the duality gap,
  MILP incumbent integrality and bound sandwiches, and the sparse
  path's decomposition/collapse invariants — all recomputed from the
  problem data, trusting no solver-reported residual.

Three entry points, mirroring the auditor:

* :func:`certify_solution` — the programmatic API;
* ``OptimizerConfig(certify="warn"|"error")`` — per-solve gating in
  ``plan_slot`` (findings land on ``SlotTrace.certificates``);
* ``repro certify`` — the CLI gate (exit 1 on CT-level errors).

Like :mod:`repro.analysis.model`, this package needs :mod:`numpy` and
the core builders, so it is *not* imported from
:mod:`repro.analysis` — import it explicitly (the CLI does so lazily),
keeping ``repro lint`` numpy-free.
"""

from repro.analysis.certify.certify import CertifyReport, certify_solution
from repro.analysis.certify.checks import (
    DecompositionCertificateRule,
    DualCertificateRule,
    GapCertificateRule,
    IntegralityCertificateRule,
    PrimalCertificateRule,
)
from repro.analysis.certify.findings import (
    SEVERITIES,
    CertFinding,
    render_certify_json,
    render_certify_text,
)
from repro.analysis.certify.registry import (
    CertifyContext,
    CertifyRule,
    CertifyThresholds,
    all_certify_rules,
    get_certify_rule,
    register_certify,
)

__all__ = [
    "CertFinding",
    "CertifyContext",
    "CertifyReport",
    "CertifyRule",
    "CertifyThresholds",
    "DecompositionCertificateRule",
    "DualCertificateRule",
    "GapCertificateRule",
    "IntegralityCertificateRule",
    "PrimalCertificateRule",
    "SEVERITIES",
    "all_certify_rules",
    "certify_solution",
    "get_certify_rule",
    "register_certify",
    "render_certify_json",
    "render_certify_text",
]
