"""Inline suppression comments for ``reprolint``.

Two forms, both parsed from real COMMENT tokens (``tokenize``), so text
that merely *looks* like a directive inside a string literal never
suppresses anything:

* ``# reprolint: disable=RP001`` — suppress the listed codes on the
  comment's line (the conventional trailing-comment form).  Multiple
  codes separate with commas: ``disable=RP001,RP002``.  ``disable=all``
  suppresses every rule on that line.
* ``# reprolint: disable-file=RP002`` — anywhere in the file (top of
  the module by convention), suppress the listed codes file-wide.

Suppressions match the diagnostic's *anchor line* (where the flagged
node starts), so the directive goes on the same line as the construct
it excuses.  Unknown or malformed directives raise at lint time rather
than silently suppressing nothing.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Set

from repro.analysis.diagnostics import Diagnostic

__all__ = ["SuppressionIndex", "collect_suppressions", "SuppressionError"]

_DIRECTIVE_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable(?:-file)?)\s*=\s*(?P<codes>[^#]*)"
)
_ALL = "all"


class SuppressionError(ValueError):
    """A malformed ``# reprolint:`` directive (bad code list, no codes)."""


@dataclass
class SuppressionIndex:
    """Per-file map of suppressed codes by line, plus file-wide codes."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    file_wide: Set[str] = field(default_factory=set)

    def is_suppressed(self, diagnostic: Diagnostic) -> bool:
        """True when ``diagnostic`` is excused by a directive."""
        if _ALL in self.file_wide or diagnostic.code in self.file_wide:
            return True
        codes = self.by_line.get(diagnostic.line, ())
        return _ALL in codes or diagnostic.code in codes


def _parse_codes(raw: str, line: int) -> Set[str]:
    codes = {tok.strip() for tok in raw.split(",") if tok.strip()}
    if not codes:
        raise SuppressionError(
            f"line {line}: 'reprolint: disable=' needs at least one RP code"
        )
    for code in codes:
        # The directive namespace is shared with the architecture
        # auditor (AR0xx anchors to files too); each tool only matches
        # its own codes, so an AR code never silences an RP finding.
        if code != _ALL and not re.match(r"^[A-Z]{2}\d{3}$", code):
            raise SuppressionError(
                f"line {line}: bad suppression code {code!r} "
                "(expected a code like RP001 or AR030, or 'all')"
            )
    return codes


def collect_suppressions(source: str) -> SuppressionIndex:
    """Scan ``source`` for directives; raises :class:`SuppressionError`.

    Tokenization errors are ignored here — the runner reports the file
    as unparseable through its own ``RP000`` channel, and a file that
    does not tokenize has no trustworthy comments anyway.
    """
    index = SuppressionIndex()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return index
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE_RE.search(tok.string)
        if match is None:
            continue
        line = tok.start[0]
        codes = _parse_codes(match.group("codes"), line)
        if match.group("kind") == "disable-file":
            index.file_wide |= codes
        else:
            index.by_line.setdefault(line, set()).update(codes)
    return index
