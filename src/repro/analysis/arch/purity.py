"""Hot-path purity rules: AR040 densification, AR041 scalar loops,
AR042 hoistable allocation.

These apply only inside the modules the tracked bench baselines prove
hot (``contract.hot_paths``: the sparse solver core, the DES engine,
the streaming plane).  Elsewhere the same patterns are fine — the
rules guard the profit-aware dispatch loop's asymptotics, not style.

* AR040 — a sparse matrix densified (``.toarray()``/``.todense()``,
  or ``np.asarray`` over a sparse-named value): turns O(nnz) work
  into O(n*m) and silently re-allocates the whole operand.
* AR041 — a ``for i in range(...)`` loop whose body assigns through
  ``x[i]``: the per-server scalar loop the vectorized solvers exist
  to avoid.
* AR042 — a numpy array allocated inside a loop from arguments the
  loop never rebinds: the allocation is loop-invariant and belongs
  outside (or in a reused scratch buffer).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Sequence, Set, Union

from repro.analysis.arch.graph import ModuleInfo
from repro.analysis.arch.registry import (
    ArchContext,
    ArchFinding,
    ArchRule,
    register_arch,
)

__all__ = ["HotPathPurityRule"]

_DENSIFIERS = {"toarray", "todense", "asmatrix"}
_NUMPY_ALIASES = {"np", "numpy"}
_ALLOCATORS = {
    "empty", "zeros", "ones", "full", "arange", "eye", "identity",
    "empty_like", "zeros_like", "ones_like", "full_like",
}
_SPARSE_HINTS = ("csr", "csc", "coo", "sparse")

_LoopNode = Union[ast.For, ast.While]


def _is_numpy_call(node: ast.Call, attrs: Set[str]) -> bool:
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr in attrs
        and isinstance(func.value, ast.Name)
        and func.value.id in _NUMPY_ALIASES
    )


def _mentions_sparse(node: ast.expr) -> bool:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parses
        return False
    lowered = text.lower()
    return any(hint in lowered for hint in _SPARSE_HINTS)


def _loop_targets(loop: _LoopNode) -> Set[str]:
    names: Set[str] = set()
    if isinstance(loop, ast.For):
        for node in ast.walk(loop.target):
            if isinstance(node, ast.Name):
                names.add(node.id)
    return names


def _assigned_in(body: Sequence[ast.stmt]) -> Set[str]:
    """Every name (re)bound anywhere under ``body``."""
    names: Set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    for part in ast.walk(target):
                        if isinstance(part, ast.Name):
                            names.add(part.id)
            elif isinstance(node, ast.For):
                for part in ast.walk(node.target):
                    if isinstance(part, ast.Name):
                        names.add(part.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(node.name)
    return names


def _free_names(node: ast.expr) -> Set[str]:
    return {
        part.id
        for part in ast.walk(node)
        if isinstance(part, ast.Name)
    }


def _subscript_assigns_by(body: Sequence[ast.stmt], names: Set[str]) -> int:
    """First line assigning ``x[i]`` with ``i`` a loop variable, or 0."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript) and (
                        _free_names(target.slice) & names
                    ):
                        return node.lineno
    return 0


class _PurityVisitor(ast.NodeVisitor):
    def __init__(self, info: ModuleInfo) -> None:
        self.info = info
        self.findings: List[ArchFinding] = []
        self._loops: List[Set[str]] = []  # names rebound per open loop

    # -- loops ----------------------------------------------------------
    def _enter_loop(self, node: _LoopNode) -> None:
        rebound = _assigned_in(node.body) | _loop_targets(node)
        self._loops.append(rebound)
        self.generic_visit(node)
        self._loops.pop()

    def visit_For(self, node: ast.For) -> None:
        targets = _loop_targets(node)
        if (
            isinstance(node.iter, ast.Call)
            and isinstance(node.iter.func, ast.Name)
            and node.iter.func.id == "range"
        ):
            line = _subscript_assigns_by(node.body, targets)
            if line:
                self.findings.append(ArchFinding(
                    code="AR041",
                    severity="info",
                    component=(
                        f"loop[{self.info.name}:{node.lineno}]"
                    ),
                    message=(
                        "scalar for-range loop assigns element-wise "
                        "through its index in a bench-hot module; "
                        "vectorize or justify with a suppression"
                    ),
                    data={"assign_line": line},
                    path=self.info.path,
                    line=node.lineno,
                ))
        self._enter_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._enter_loop(node)

    # -- calls ----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _DENSIFIERS:
            self.findings.append(ArchFinding(
                code="AR040",
                severity="warning",
                component=f"dense[{self.info.name}:{node.lineno}]",
                message=(
                    f".{func.attr}() densifies a sparse operand in a "
                    "bench-hot module (O(nnz) becomes O(n*m)); stay "
                    "sparse or suppress with justification"
                ),
                data={"call": func.attr},
                path=self.info.path,
                line=node.lineno,
            ))
        elif _is_numpy_call(node, {"asarray", "array"}) and node.args:
            if any(_mentions_sparse(arg) for arg in node.args):
                self.findings.append(ArchFinding(
                    code="AR040",
                    severity="warning",
                    component=f"dense[{self.info.name}:{node.lineno}]",
                    message=(
                        "np.asarray/np.array over a sparse-named "
                        "value densifies it in a bench-hot module; "
                        "stay sparse or suppress with justification"
                    ),
                    data={"call": "asarray"},
                    path=self.info.path,
                    line=node.lineno,
                ))
        if self._loops and _is_numpy_call(node, _ALLOCATORS):
            rebound: Set[str] = set()
            for loop_rebound in self._loops:
                rebound |= loop_rebound
            args = list(node.args) + [kw.value for kw in node.keywords]
            free: Set[str] = set()
            for arg in args:
                free |= _free_names(arg)
            if not (free & rebound):
                assert isinstance(node.func, ast.Attribute)
                self.findings.append(ArchFinding(
                    code="AR042",
                    severity="info",
                    component=f"alloc[{self.info.name}:{node.lineno}]",
                    message=(
                        f"np.{node.func.attr}(...) allocates inside a "
                        "loop from loop-invariant arguments; hoist the "
                        "allocation (or reuse a scratch buffer) in "
                        "this bench-hot module"
                    ),
                    data={"allocator": node.func.attr},
                    path=self.info.path,
                    line=node.lineno,
                ))
        self.generic_visit(node)


@register_arch
class HotPathPurityRule(ArchRule):
    code = "AR040"
    name = "hot-path-purity"
    codes = {
        "AR040": "sparse operand densified in a bench-hot module",
        "AR041": "scalar per-element for-range loop in a bench-hot module",
        "AR042": "loop-invariant numpy allocation inside a hot loop",
    }
    rationale = (
        "The bench suite pins the sparse solver core, the DES engine, "
        "and the streaming plane as the modules where asymptotics "
        "decide wall-clock.  Densifying a sparse matrix, iterating "
        "servers one Python index at a time, or re-allocating an "
        "invariant array every iteration are the three regressions "
        "that repeatedly sneak past review because they are locally "
        "idiomatic; inside the declared hot paths they fail the gate "
        "instead."
    )

    def check(self, ctx: ArchContext) -> Iterator[ArchFinding]:
        for info in ctx.index.modules.values():
            if not ctx.contract.is_hot(info.name):
                continue
            visitor = _PurityVisitor(info)
            visitor.visit(info.tree)
            yield from visitor.findings
