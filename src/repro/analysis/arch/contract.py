"""The declared architecture contract the ``AR0xx`` rules enforce.

This module is the machine-checked version of what used to be tribal
knowledge: which of the subpackages may import which, which module
edges are sanctioned exceptions, and which modules the benches prove
are hot (and therefore subject to the purity rules).

The layering (bottom → top)::

    cli_registry   utils                          (stdlib-only bottom)
      obs  market  workload  queueing             (leaf domain models)
      cloud  solvers                              (substrate + backends)
      des  core                                   (engines)
      sim  analysis                               (harness + trust stack)
      stream  bench                               (online plane + perf)
      experiments                                 (paper studies)
      repro  cli  __main__                        (assembly + entry)

A package may *eagerly* import only packages in its allowed set —
eager means module scope outside ``if TYPE_CHECKING:``, the imports
that execute at import time and can therefore deadlock or erode
layering.  Function-scoped (lazy) imports are exempt: the CLI modules
lazily pull :mod:`repro.experiments` to build scenarios, and
``plan_slot`` lazily pulls the auditor/certifier hooks; neither makes
the importer *depend* on the upper layer to be importable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

__all__ = [
    "DEFAULT_CONTRACT",
    "LayerContract",
    "default_contract",
]


@dataclass(frozen=True)
class LayerContract:
    """A declared layering: allowed eager deps per layering node.

    Attributes
    ----------
    layers:
        Map from layering node (subpackage name, top-level module
        name, or the root package name) to the set of nodes it may
        eagerly import.  A node absent from the map is unconstrained
        (useful for fixture trees that only declare a few nodes).
    exceptions:
        Sanctioned module-level eager edges ``(source_module,
        target_module)`` that violate the package-level contract.
        Every entry needs a tracking comment at its definition — they
        are a ratchet, not an allowance.
    hot_paths:
        Dotted module prefixes the benches prove are hot; the purity
        rules (AR040–AR042) apply inside them only.
    """

    layers: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    exceptions: FrozenSet[Tuple[str, str]] = frozenset()
    hot_paths: Tuple[str, ...] = ()

    def allows(self, source_pkg: str, target_pkg: str) -> bool:
        """True when the package-level eager edge is contract-legal."""
        if source_pkg == target_pkg:
            return True
        allowed = self.layers.get(source_pkg)
        if allowed is None:
            return True
        return target_pkg in allowed

    def excepted(self, source_module: str, target_module: str) -> bool:
        """True when the module edge is a sanctioned exception."""
        return (source_module, target_module) in self.exceptions

    def is_hot(self, module: str) -> bool:
        """True when ``module`` falls under a declared hot path."""
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.hot_paths
        )


def default_contract() -> LayerContract:
    """The repro tree's layering contract.

    Reading order is bottom-up; each entry lists everything the
    package may eagerly import.  ``des`` stays engine-pure (utils plus
    the energy model it bills against); ``core`` may not touch
    ``sim``/``stream``/``bench``/``experiments``; ``analysis`` may not
    eagerly touch ``experiments`` (its CLIs build scenarios lazily).
    """
    layers: Dict[str, FrozenSet[str]] = {
        # Stdlib-only bottom: anything may import these, they import
        # nothing of ours.
        "cli_registry": frozenset(),
        "utils": frozenset(),
        # Leaf domain models over utils only.
        "obs": frozenset({"utils"}),
        "market": frozenset({"utils"}),
        "workload": frozenset({"utils"}),
        "queueing": frozenset({"utils"}),
        # Substrate and solver backends.
        "cloud": frozenset({"utils", "market"}),
        "solvers": frozenset({"utils", "obs"}),
        # Engines: the DES is self-contained apart from the energy
        # model it meters; core is the optimization brain.
        "des": frozenset({"utils", "cloud"}),
        "core": frozenset({
            "utils", "obs", "queueing", "cloud", "market", "workload",
            "solvers",
        }),
        # Harness + trust stack.
        "sim": frozenset({
            "utils", "obs", "queueing", "cloud", "market", "workload",
            "solvers", "core", "des",
        }),
        "analysis": frozenset({
            "utils", "cli_registry", "obs", "cloud", "solvers", "core",
        }),
        # Online control plane and the perf suite.
        "stream": frozenset({
            "utils", "cli_registry", "obs", "cloud", "market",
            "workload", "solvers", "core", "analysis",
        }),
        "bench": frozenset({
            "utils", "cli_registry", "obs", "des", "core", "sim",
            "stream", "workload",
        }),
        # Paper studies consume everything below.
        "experiments": frozenset({
            "utils", "obs", "queueing", "cloud", "market", "workload",
            "solvers", "core", "des", "sim", "analysis", "stream",
            "bench",
        }),
        # Assembly layer: the root package re-exports the public API
        # (everything but the studies and the CLI), the CLI wires the
        # subcommand registry, __main__ is the entry shim.
        "repro": frozenset({
            "utils", "obs", "queueing", "cloud", "market", "workload",
            "solvers", "core", "des", "sim", "analysis", "stream",
            "bench", "cli_registry",
        }),
        "cli": frozenset({
            "utils", "obs", "queueing", "cloud", "market", "workload",
            "solvers", "core", "des", "sim", "analysis", "stream",
            "bench", "experiments", "cli_registry",
        }),
        "__main__": frozenset({"cli"}),
    }
    exceptions = frozenset({
        # The task model (RequestClass, the TUFs) lives in repro.core
        # but sits layer-wise *beneath* repro.cloud: topologies are
        # typed by the request classes they serve.  Splitting it into
        # its own bottom package is queued work; until then these
        # three leaf imports are the only sanctioned upward edges,
        # and they must not grow (core.request/core.tuf import
        # nothing above utils, so no import cycle can form).
        ("repro.cloud.topology", "repro.core.request"),
        ("repro.cloud.topology", "repro.core.tuf"),
        ("repro.cloud.sla", "repro.core.request"),
        ("repro.cloud.heterogeneous", "repro.core.request"),
    })
    hot_paths = (
        # The modules the tracked BENCH_*.json scenarios prove hot:
        # the sparse dual-simplex core (fleet_10x/fleet_100x), the DES
        # engine hot loop (des_million), and the per-tick streaming
        # plane (streaming_ingest).
        "repro.solvers.sparse",
        "repro.des.engine",
        "repro.stream",
    )
    return LayerContract(
        layers=layers, exceptions=exceptions, hot_paths=hot_paths
    )


#: Shared default instance (the contract is immutable).
DEFAULT_CONTRACT = default_contract()
