"""Architecture auditor (``repro arch``): the ``AR0xx`` code space.

Fourth member of the analysis family — reprolint (``RP0xx``) reads
the source, the formulation auditor (``MD0xx``) reads the problem,
the certifier (``CT0xx``) reads the solution, and this tool reads the
*codebase structure*: a zero-dependency AST pass over the whole tree
that enforces the declared architecture instead of trusting review to
remember it.

Rule families:

* ``AR010``/``AR011`` — import-layer contracts: the declared layering
  of the subpackages, checked against the statically extracted eager
  import graph, plus module-cycle detection;
* ``AR020``/``AR021`` — public-API surface lock: a committed
  byte-stable snapshot (``API_SURFACE.json``) of everything reachable
  from ``__init__`` exports; removals and shape changes are breaking
  (AR020), undeclared additions are drift (AR021);
* ``AR030``/``AR031`` — dead code: exports nothing imports, private
  helpers referenced nowhere, whole modules nothing reaches;
* ``AR040``–``AR042`` — hot-path purity inside the bench-proven hot
  modules: sparse densification, scalar per-element loops, and
  loop-invariant allocations.

Importing this package registers every rule; :func:`audit_tree` is
the library entry point, :mod:`repro.analysis.arch.cli` the gate.
"""

from repro.analysis.arch.audit import ArchReport, audit_tree
from repro.analysis.arch.contract import (
    DEFAULT_CONTRACT,
    LayerContract,
    default_contract,
)
from repro.analysis.arch.graph import build_tree_index, resolve_export
from repro.analysis.arch.registry import (
    ArchContext,
    ArchFinding,
    ArchRule,
    all_arch_rules,
    get_arch_rule,
    register_arch,
)
from repro.analysis.arch.surface import build_api_surface, render_api_surface

# Rule modules register on import; the catalog is complete as soon as
# the package is.
from repro.analysis.arch import deadcode as _deadcode  # noqa: F401
from repro.analysis.arch import layers as _layers  # noqa: F401
from repro.analysis.arch import purity as _purity  # noqa: F401
from repro.analysis.arch import surface as _surface  # noqa: F401

__all__ = [
    "ArchContext",
    "ArchFinding",
    "ArchReport",
    "ArchRule",
    "DEFAULT_CONTRACT",
    "LayerContract",
    "all_arch_rules",
    "audit_tree",
    "build_api_surface",
    "build_tree_index",
    "default_contract",
    "get_arch_rule",
    "register_arch",
    "render_api_surface",
    "resolve_export",
]
