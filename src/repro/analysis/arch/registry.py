"""Architecture-rule registry and the context handed to every rule.

Mirrors its three siblings (:mod:`repro.analysis.registry` for
reprolint, :mod:`repro.analysis.model.registry` for the auditor,
:mod:`repro.analysis.certify.registry` for the certifier): an
:class:`ArchRule` registers itself under a stable ``AR0xx`` *family*
code via :func:`register_arch`, carries a name and a rationale for the
catalog, and yields :class:`ArchFinding` records from
:meth:`ArchRule.check`.  Rules are stateless; everything tree-specific
lives on the shared :class:`ArchContext` (the module index, the layer
contract, the API-surface baseline, the usage index).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import ClassVar, Dict, Iterator, List, Optional, Type

from repro.analysis.arch.contract import LayerContract
from repro.analysis.arch.graph import TreeIndex, UsageIndex
from repro.analysis.report import Finding

__all__ = [
    "ArchContext",
    "ArchFinding",
    "ArchRule",
    "all_arch_rules",
    "get_arch_rule",
    "register_arch",
]

_CODE_RE = re.compile(r"^AR\d{3}$")


@dataclass(frozen=True)
class ArchFinding(Finding):
    """One architecture finding.

    Adds a file anchor (``path``/``line``) on top of the shared
    component-anchored :class:`~repro.analysis.report.Finding` so
    file-scoped rules (dead code, hot-path purity) honor the inline
    ``# reprolint: disable=AR0xx`` directives; graph-scoped findings
    (layering, API surface) leave the anchor empty and are excused
    through the findings baseline instead.  The baseline fingerprint
    is ``(component, code)`` — line-free, so structural findings
    survive unrelated edits.
    """

    path: str = ""
    line: int = 0

    CODE_PREFIX: ClassVar[str] = "AR"
    CODE_LABEL: ClassVar[str] = "architecture"
    COERCE_FLOAT: ClassVar[bool] = False

    def to_dict(self) -> Dict:
        record = super().to_dict()
        if self.path:
            record["path"] = self.path
            record["line"] = self.line
        return record


@dataclass
class ArchContext:
    """Everything a rule may need about the tree under audit.

    Attributes
    ----------
    index:
        The parsed module table and import graph.
    contract:
        The layer contract in force (tests inject synthetic ones).
    usage:
        Name-usage harvested from the tree plus the usage roots
        (tests/, benchmarks/, examples/) so test-only consumers keep
        an export alive.
    api_baseline:
        The committed API-surface snapshot (parsed JSON), or ``None``
        when no baseline is available — the surface rules then only
        record coverage, they cannot diff.
    """

    index: TreeIndex
    contract: LayerContract
    usage: UsageIndex
    api_baseline: Optional[Dict] = None
    #: Populated by the surface rule: the live snapshot, so the CLI
    #: can write/diff it without re-extracting.
    api_surface: Dict = field(default_factory=dict)


class ArchRule:
    """Base class for architecture rules; subclasses set the metadata.

    Attributes
    ----------
    code:
        The family's lead ``AR0xx`` identifier (registry key).
    name:
        Short kebab-case slug for ``repro arch --list-rules``.
    codes:
        Every code the family may emit, mapped to a one-line meaning.
    rationale:
        One paragraph connecting the erosion class to the system's
        scale goals; surfaced in the catalog (docs/DEVELOPMENT.md).
    """

    code: str = ""
    name: str = ""
    codes: Dict[str, str] = {}
    rationale: str = ""

    def check(self, ctx: ArchContext) -> Iterator[ArchFinding]:
        """Yield findings for the tree under audit."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for typing


_REGISTRY: Dict[str, ArchRule] = {}


def register_arch(rule_cls: Type[ArchRule]) -> Type[ArchRule]:
    """Class decorator adding one rule instance to the registry."""
    if not _CODE_RE.match(rule_cls.code or ""):
        raise ValueError(
            f"rule {rule_cls.__name__} needs a code matching ARxxx, "
            f"got {rule_cls.code!r}"
        )
    if rule_cls.code in _REGISTRY:
        raise ValueError(f"duplicate arch rule code {rule_cls.code}")
    if not rule_cls.name:
        raise ValueError(f"rule {rule_cls.code} needs a name")
    for code in rule_cls.codes:
        if not _CODE_RE.match(code):
            raise ValueError(
                f"rule {rule_cls.code} lists a non-ARxxx code {code!r}"
            )
    _REGISTRY[rule_cls.code] = rule_cls()
    return rule_cls


def all_arch_rules() -> List[ArchRule]:
    """Every registered rule family, sorted by lead code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_arch_rule(code: str) -> ArchRule:
    """Look up one rule family by its lead ``AR0xx`` code."""
    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(
            f"unknown arch rule code {code!r}; known: {sorted(_REGISTRY)}"
        ) from None
