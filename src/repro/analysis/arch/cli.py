"""The ``repro arch`` subcommand (wired up by :mod:`repro.cli`).

Runs the architecture auditor over a tree.  Exit codes follow the
lint-gate convention shared by the whole analysis family:

* ``0`` — no findings (after suppression and baseline filtering);
* ``1`` — at least one finding (any severity — every AR rule flags
  something actionable);
* ``2`` — usage error (bad path, corrupt baseline, unwritable report).

The API-surface lock reads ``API_SURFACE.json`` from the current
directory by default (committed at the repo root, like the tracked
``BENCH_*.json`` baselines); refresh it deliberately with
``repro arch --write-api-baseline`` after reviewing the diff.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Tuple

from repro.analysis.arch.audit import ArchReport, audit_tree
from repro.analysis.arch.registry import ArchFinding, all_arch_rules
from repro.analysis.arch.surface import render_api_surface
from repro.analysis.report import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    apply_findings_baseline,
    read_findings_baseline,
    write_findings_baseline,
)
from repro.cli_registry import register_subcommand

__all__ = ["add_arch_arguments", "run_arch"]

_DEFAULT_PATHS = ["src"]
_DEFAULT_API_BASELINE = "API_SURFACE.json"


def add_arch_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro arch`` flags to ``parser``."""
    parser.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help="package roots to audit (default: src)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--out", type=str, default=None, metavar="FILE",
        help="additionally write the JSON report to this file",
    )
    parser.add_argument(
        "--baseline", type=str, default=None, metavar="FILE",
        help="filter findings recorded in this baseline file; new "
             "findings still fail the run",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to --baseline FILE and exit 0",
    )
    parser.add_argument(
        "--api-baseline", type=str, default=_DEFAULT_API_BASELINE,
        metavar="FILE",
        help="API-surface snapshot to diff against (default: "
             "API_SURFACE.json; a missing file disables the diff)",
    )
    parser.add_argument(
        "--write-api-baseline", action="store_true",
        help="write the live API surface to --api-baseline FILE and "
             "exit 0 (the deliberate way to accept surface changes)",
    )
    parser.add_argument(
        "--usage-path", action="append", default=None, metavar="PATH",
        dest="usage_paths",
        help="extra tree consulted for name usage (repeatable; "
             "default: tests, benchmarks, examples when present)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the AR rule catalog (codes, rationale) and exit",
    )


def _print_rules() -> None:
    for rule in all_arch_rules():
        print(f"{rule.code}  {rule.name}")
        for code in sorted(rule.codes):
            print(f"    {code}: {rule.codes[code]}")
        print(f"    {rule.rationale}")


def _baseline_sort_key(finding: ArchFinding) -> Tuple[str, str, str]:
    # Fingerprint-first so regenerated baselines are byte-identical.
    return (finding.component, finding.code, finding.message)


def _baseline_fingerprint(record: Dict) -> Tuple[str, str]:
    return (str(record["component"]), str(record["code"]))


@register_subcommand(
    "arch",
    help_text="audit import layering, the public-API surface lock, "
              "dead code, and hot-path purity; exit 1 on findings",
    configure=add_arch_arguments,
)
def run_arch(args: argparse.Namespace) -> int:
    """Execute ``repro arch`` for parsed ``args``; returns the exit
    code."""
    if args.list_rules:
        _print_rules()
        return EXIT_CLEAN
    if args.write_baseline and args.baseline is None:
        print("error: --write-baseline requires --baseline FILE",
              file=sys.stderr)
        return EXIT_USAGE
    paths: List[str] = args.paths or _DEFAULT_PATHS
    try:
        report = audit_tree(
            paths,
            usage_paths=args.usage_paths,
            api_baseline_path=args.api_baseline,
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if args.write_api_baseline:
        try:
            with open(args.api_baseline, "w", encoding="utf-8") as handle:
                handle.write(render_api_surface(report.api_surface))
        except OSError as exc:
            print(f"error: cannot write API baseline: {exc}",
                  file=sys.stderr)
            return EXIT_USAGE
        modules = report.api_surface.get("modules", {})
        names = sum(
            len(entries) for entries in modules.values()  # type: ignore[union-attr]
        ) if isinstance(modules, dict) else 0
        print(
            f"wrote API surface ({len(modules)} module(s), "
            f"{names} export(s)) to {args.api_baseline}"
        )
        return EXIT_CLEAN

    if args.write_baseline:
        count = write_findings_baseline(
            report.findings, args.baseline, sort_key=_baseline_sort_key
        )
        print(f"wrote {count} finding(s) to baseline {args.baseline}")
        return EXIT_CLEAN

    baselined = 0
    if args.baseline is not None:
        try:
            baseline = read_findings_baseline(
                args.baseline,
                fingerprint_of=_baseline_fingerprint,
                tool="arch",
            )
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return EXIT_USAGE
        report.findings, baselined = apply_findings_baseline(
            report.findings, baseline, sort_key=_baseline_sort_key
        )
    report.details["baselined"] = baselined

    if args.out is not None:
        try:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(report.render_json() + "\n")
        except OSError as exc:
            print(f"error: cannot write report: {exc}", file=sys.stderr)
            return EXIT_USAGE

    if args.format == "json":
        print(report.render_json())
        return EXIT_CLEAN if report.clean else EXIT_FINDINGS

    if report.findings:
        print(report.render_text())
    summary = (
        f"{len(report.findings)} finding(s) in "
        f"{report.details['modules']} module(s)"
    )
    if report.suppressed:
        summary += f", {report.suppressed} suppressed"
    if baselined:
        summary += f", {baselined} baselined"
    print(("" if not report.findings else "\n") + summary)
    return EXIT_CLEAN if report.clean else EXIT_FINDINGS


def _standalone(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.analysis.arch.cli`` — the gate without the
    main CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-arch",
        description="architecture auditor: layering, API surface lock, "
                    "dead code, hot-path purity",
    )
    add_arch_arguments(parser)
    return run_arch(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - thin wrapper
    sys.exit(_standalone())
