"""Dead-code detection: AR030 dead exports, AR031 orphan code.

AR030 flags a subpackage export whose resolved definition is never
imported or attribute-accessed anywhere outside its own re-export
plumbing — not by another module in the tree, not by the tests,
benchmarks, or examples (the usage roots), and not re-exported from
the root package's public API.  AR031 flags two shapes of orphan code:
a module-private ``_helper`` referenced nowhere in its module, and a
whole module nothing imports.

Both anchor to the defining file, so intentional oracles (e.g. the
reference implementations kept for differential testing) opt out with
the existing directive mechanism::

    # reprolint: disable-file=AR030,AR031
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Set, Tuple

from repro.analysis.arch.graph import (
    DefInfo,
    ModuleInfo,
    TreeIndex,
    UsageIndex,
    resolve_export,
)
from repro.analysis.arch.registry import (
    ArchContext,
    ArchFinding,
    ArchRule,
    register_arch,
)

__all__ = ["DeadExportRule", "OrphanCodeRule"]

_EXTERNAL = "<external>"

_DefKey = Tuple[str, str]


def _is_registered(definition: DefInfo) -> bool:
    """True when a decorator wires the def into a registry.

    Registration decorators follow the ``register*`` naming convention
    throughout the tree (``@register``, ``@register_scenario``,
    ``@register_subcommand``, ``@register_arch``); inert decorators
    (``@dataclass``, ``@lru_cache``) transform without consuming.
    """
    return any(
        name.startswith("register") for name in definition.decorators
    )


def _resolved_key(index: TreeIndex, module: str, name: str) -> _DefKey:
    resolved = resolve_export(index, module, name)
    return (resolved.module, resolved.name)


def _collect_used_defs(
    index: TreeIndex, usage: UsageIndex
) -> Set[_DefKey]:
    """Definitions consumed by something other than re-export plumbing.

    Tree import edges count unless the importing module is an
    ``__init__`` re-exporting the very name it imports; usage-root
    imports and attribute accesses through module aliases always
    count.
    """
    used: Set[_DefKey] = set()
    for info in index.modules.values():
        exports = set(info.exports or ())
        for edge in info.edges:
            if not edge.name:
                continue
            if info.is_init and edge.alias in exports:
                continue
            used.add(_resolved_key(index, edge.target, edge.name))
    for (module, name), sources in usage.by_source.items():
        if _EXTERNAL in sources:
            used.add(_resolved_key(index, module, name))
    for module, attr in usage.attributes:
        if module in index.modules:
            used.add(_resolved_key(index, module, attr))
    return used


_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _signature_referenced(index: TreeIndex) -> Set[str]:
    """Names appearing in any def's signature, fields, or bases.

    A type referenced by an exported function's annotation or a
    dataclass field is API vocabulary — callers need it to spell the
    types of values they already hold — so it is not a dead export
    even when nothing imports it by name yet.
    """
    tokens: Set[str] = set()
    for info in index.modules.values():
        for definition in info.defs.values():
            for text in (
                definition.signature,
                *definition.bases,
                *definition.fields,
                *definition.methods,
            ):
                tokens.update(_IDENT_RE.findall(text))
    return tokens


def _root_public_defs(index: TreeIndex) -> Set[_DefKey]:
    root = index.modules.get(index.root_package)
    if root is None or root.exports is None:
        return set()
    return {
        _resolved_key(index, root.name, name) for name in root.exports
    }


@register_arch
class DeadExportRule(ArchRule):
    code = "AR030"
    name = "dead-export"
    codes = {
        "AR030": "a subpackage export is never imported by anything",
    }
    rationale = (
        "An export nobody imports is API surface without users: it "
        "still costs review attention on every change, still appears "
        "in the surface lock, and still constrains refactors.  The "
        "usage scan spans the tree plus the test/bench/example roots, "
        "so a test-only helper stays alive; what remains is genuinely "
        "unreferenced and should be deleted or demoted to private."
    )

    def check(self, ctx: ArchContext) -> Iterator[ArchFinding]:
        index = ctx.index
        used = _collect_used_defs(index, ctx.usage)
        public = _root_public_defs(index)
        vocabulary = _signature_referenced(index)
        for info in index.modules.values():
            if not info.is_init or info.exports is None:
                continue
            if info.name == index.root_package:
                # The root __all__ IS the public API; external users
                # are out of scope for a static scan.
                continue
            for name in info.exports:
                resolved = resolve_export(index, info.name, name)
                if resolved.kind in ("module", "opaque"):
                    continue
                if _is_registered(resolved):
                    # Registered via a decorator (rule registries, CLI
                    # subcommands): the registry is the consumer.
                    continue
                key = (resolved.module, resolved.name)
                if key in used or key in public:
                    continue
                if (
                    resolved.kind == "class"
                    and resolved.name in vocabulary
                ):
                    # Referenced by another def's signature or fields:
                    # part of the API's type vocabulary.
                    continue
                anchor = index.modules.get(resolved.module, info)
                yield ArchFinding(
                    code="AR030",
                    severity="warning",
                    component=f"export[{info.name}.{name}]",
                    message=(
                        f"{info.name} exports {name} "
                        f"(defined in {resolved.module}) but nothing "
                        "in the tree, tests, benchmarks, or examples "
                        "imports it; delete it, demote it to private, "
                        "or suppress with a reprolint directive if it "
                        "is a deliberate oracle"
                    ),
                    data={"defined_in": resolved.module},
                    path=anchor.path,
                    line=resolved.line or 1,
                )


def _private_candidates(info: ModuleInfo) -> Iterator[DefInfo]:
    exports = set(info.exports or ())
    for definition in info.defs.values():
        if definition.kind not in ("function", "class"):
            continue
        name = definition.name
        if not name.startswith("_") or name.startswith("__"):
            continue
        if name in exports or _is_registered(definition):
            continue
        yield definition


def _referenced_names(info: ModuleInfo) -> Set[str]:
    """Names loaded at module level outside their own definition."""
    referenced: Set[str] = set()
    for stmt in info.tree.body:
        owner = ""
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            owner = stmt.name
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                if node.id != owner:
                    referenced.add(node.id)
            elif isinstance(node, ast.Constant) and isinstance(
                node.value, str
            ):
                # String annotations / forward refs keep a name alive.
                referenced.update(
                    part for part in _identifier_parts(node.value)
                )
    return referenced


def _identifier_parts(text: str) -> Iterator[str]:
    if len(text) > 200:
        return
    token = ""
    for char in text + " ":
        if char.isidentifier() or (token and char.isdigit()):
            token += char
        else:
            if token:
                yield token
            token = ""


@register_arch
class OrphanCodeRule(ArchRule):
    code = "AR031"
    name = "orphan-code"
    codes = {
        "AR031": "a private helper or whole module is referenced nowhere",
    }
    rationale = (
        "Unreachable code rots silently: it compiles, it lints, and "
        "it misleads readers into thinking it participates.  A "
        "``_helper`` no statement in its module references, or a "
        "module no import anywhere reaches, is dead weight the next "
        "refactor must still read around — delete it, or mark a "
        "deliberate oracle with a reprolint directive."
    )

    def check(self, ctx: ArchContext) -> Iterator[ArchFinding]:
        index = ctx.index
        usage = ctx.usage
        imported_pairs = {
            f"{module}.{name}" for module, name in usage.imported
        }
        referenced_modules: Set[str] = set(usage.imported_modules)
        for info in index.modules.values():
            for edge in info.edges:
                referenced_modules.add(edge.target)
        for info in index.modules.values():
            referenced = _referenced_names(info)
            for definition in _private_candidates(info):
                if definition.name in referenced:
                    continue
                if (info.name, definition.name) in usage.imported:
                    continue
                yield ArchFinding(
                    code="AR031",
                    severity="warning",
                    component=f"private[{info.name}.{definition.name}]",
                    message=(
                        f"private {definition.kind} {definition.name} "
                        f"is referenced nowhere in {info.name}; delete "
                        "it or suppress if kept deliberately"
                    ),
                    data={"kind": definition.kind},
                    path=info.path,
                    line=definition.line,
                )
            if info.is_init:
                continue
            parts = info.name.split(".")
            if parts[-1] in ("__main__", "conftest"):
                continue
            if (
                info.name in referenced_modules
                or info.name in imported_pairs
            ):
                continue
            yield ArchFinding(
                code="AR031",
                severity="warning",
                component=f"module[{info.name}]",
                message=(
                    f"module {info.name} is imported by nothing in the "
                    "tree, tests, benchmarks, or examples; delete it "
                    "or wire it in"
                ),
                data={"path": info.path},
                path=info.path,
                line=1,
            )
