"""Static module index: the import graph and definition table.

Everything the architecture rules consume is extracted here, once, by
a pure-AST walk over the tree — no module is ever imported, so the
analyzer works on broken trees, costs milliseconds, and stays
zero-dependency (stdlib ``ast`` only, like reprolint).

Three artifacts per module:

* :class:`ImportEdge` records — every ``import``/``from .. import``
  of an in-tree module, tagged ``eager`` (module scope, executed at
  import time) vs lazy (function scope) and ``typecheck`` (inside an
  ``if TYPE_CHECKING:`` block).  The layer contract and cycle
  detection run on *eager, non-typecheck* edges — the ones that can
  actually deadlock an import or erode layering at runtime;
* :class:`DefInfo` records — top-level functions, classes (with
  signatures, bases, dataclass fields, public-method signatures),
  constants and import aliases, the raw material of the public-API
  surface snapshot;
* the statically extracted ``__all__`` list, when the module declares
  one as a plain literal.

:func:`resolve_export` follows alias chains (``repro/__init__``
re-exporting from ``repro.core`` re-exporting from
``repro.core.optimizer``) to the defining module, so the API surface
locks *definitions*, not re-export plumbing.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "DefInfo",
    "ImportEdge",
    "ModuleInfo",
    "TreeIndex",
    "UsageIndex",
    "build_tree_index",
    "build_usage_index",
    "format_signature",
    "resolve_export",
]

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


@dataclass(frozen=True)
class ImportEdge:
    """One static import of an in-tree module.

    ``name`` is the imported symbol for ``from target import name``
    and ``""`` for a plain ``import target``.  ``alias`` is the local
    binding created by the import.
    """

    source: str
    target: str
    name: str
    alias: str
    line: int
    eager: bool
    typecheck: bool


@dataclass(frozen=True)
class DefInfo:
    """One top-level definition (or import alias) in a module.

    ``kind`` is ``"function"``, ``"class"``, ``"constant"``,
    ``"alias"`` (an imported name), ``"module"`` (a submodule reached
    through a package) or ``"opaque"`` (resolution left the tree).
    """

    kind: str
    module: str
    name: str
    line: int = 0
    signature: str = ""
    bases: Tuple[str, ...] = ()
    fields: Tuple[str, ...] = ()
    methods: Tuple[str, ...] = ()
    is_dataclass: bool = False
    #: Decorator names on the def (``register_scenario``,
    #: ``dataclass``, ...).  The dead-code rules treat registration
    #: decorators as consumers: a ``@register_*``-decorated def is
    #: wired in even when nothing imports it by name.
    decorators: Tuple[str, ...] = ()
    alias_target: Tuple[str, str] = ("", "")

    def surface_dict(self) -> Dict[str, object]:
        """The byte-stable snapshot record for the API-surface lock."""
        record: Dict[str, object] = {
            "kind": self.kind,
            "defined_in": self.module,
        }
        if self.kind == "function":
            record["signature"] = self.signature
        elif self.kind == "class":
            record["bases"] = list(self.bases)
            record["methods"] = list(self.methods)
            if self.is_dataclass:
                record["dataclass_fields"] = list(self.fields)
        return record


@dataclass
class ModuleInfo:
    """Everything the rules need to know about one parsed module."""

    name: str
    path: str
    source: str
    tree: ast.Module
    package: str
    is_init: bool
    exports: Optional[List[str]] = None
    defs: Dict[str, DefInfo] = field(default_factory=dict)
    edges: List[ImportEdge] = field(default_factory=list)


@dataclass
class TreeIndex:
    """The parsed tree: module table plus derived lookups."""

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    root_package: str = ""

    def packages(self) -> List[str]:
        """Top-level layering nodes present in the tree, sorted."""
        return sorted({m.package for m in self.modules.values()})

    def eager_edges(self) -> Iterator[ImportEdge]:
        """Import-time edges: module scope, outside TYPE_CHECKING."""
        for info in self.modules.values():
            for edge in info.edges:
                if edge.eager and not edge.typecheck:
                    yield edge

    def all_edges(self) -> Iterator[ImportEdge]:
        """Every recorded edge, eager and lazy alike."""
        for info in self.modules.values():
            yield from info.edges


@dataclass
class UsageIndex:
    """Name usage harvested from the tree plus external usage roots.

    ``imported`` holds ``(module, name)`` pairs as written at the
    import site (pre-resolution); ``imported_modules`` the modules
    imported whole; ``attributes`` ``(module, attr)`` accesses through
    a module alias (``import repro.sim as s; s.run`` records
    ``("repro.sim", "run")``).  ``by_source`` maps each *importing*
    package to the pairs it imports, so "used outside the defining
    package" is answerable.
    """

    imported: Set[Tuple[str, str]] = field(default_factory=set)
    imported_modules: Set[str] = field(default_factory=set)
    attributes: Set[Tuple[str, str]] = field(default_factory=set)
    by_source: Dict[Tuple[str, str], Set[str]] = field(default_factory=dict)

    def record_import(self, module: str, name: str, source_pkg: str) -> None:
        self.imported.add((module, name))
        self.by_source.setdefault((module, name), set()).add(source_pkg)


# ------------------------------------------------------------ extraction


def format_signature(args: ast.arguments, returns: Optional[ast.expr]) -> str:
    """Deterministic one-line signature text for a function def."""
    parts: List[str] = []

    def fmt(arg: ast.arg, default: Optional[ast.expr]) -> str:
        text = arg.arg
        if arg.annotation is not None:
            text += f": {ast.unparse(arg.annotation)}"
        if default is not None:
            sep = " = " if arg.annotation is not None else "="
            text += f"{sep}{ast.unparse(default)}"
        return text

    positional = list(args.posonlyargs) + list(args.args)
    defaults: List[Optional[ast.expr]] = (
        [None] * (len(positional) - len(args.defaults)) + list(args.defaults)
    )
    for arg, default in zip(positional[: len(args.posonlyargs)], defaults):
        parts.append(fmt(arg, default))
    if args.posonlyargs:
        parts.append("/")
    for arg, default in zip(
        positional[len(args.posonlyargs):], defaults[len(args.posonlyargs):]
    ):
        parts.append(fmt(arg, default))
    if args.vararg is not None:
        parts.append("*" + fmt(args.vararg, None))
    elif args.kwonlyargs:
        parts.append("*")
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        parts.append(fmt(arg, default))
    if args.kwarg is not None:
        parts.append("**" + fmt(args.kwarg, None))
    signature = f"({', '.join(parts)})"
    if returns is not None:
        signature += f" -> {ast.unparse(returns)}"
    return signature


def _literal_str_list(node: ast.expr) -> Optional[List[str]]:
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    names: List[str] = []
    for element in node.elts:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            names.append(element.value)
        else:
            return None
    return names


def _decorator_names(
    decorator_list: Sequence[ast.expr],
) -> Tuple[str, ...]:
    names = []
    for decorator in decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, ast.Attribute):
            names.append(target.attr)
    return tuple(names)


def _class_def_info(module: str, node: ast.ClassDef) -> DefInfo:
    bases = tuple(ast.unparse(base) for base in node.bases)
    decorators = _decorator_names(node.decorator_list)
    is_dc = "dataclass" in decorators
    fields: List[str] = []
    methods: List[str] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            text = f"{stmt.target.id}: {ast.unparse(stmt.annotation)}"
            if stmt.value is not None:
                text += f" = {ast.unparse(stmt.value)}"
            fields.append(text)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not stmt.name.startswith("_") or stmt.name in (
                "__init__", "__call__", "__post_init__"
            ):
                methods.append(
                    stmt.name + format_signature(stmt.args, stmt.returns)
                )
    return DefInfo(
        kind="class", module=module, name=node.name, line=node.lineno,
        bases=bases, fields=tuple(fields), methods=tuple(methods),
        is_dataclass=is_dc, decorators=decorators,
    )


class _ModuleExtractor:
    """One pass over a module AST collecting defs, exports, and edges."""

    def __init__(self, info: ModuleInfo) -> None:
        self.info = info

    def extract(self) -> None:
        self._visit_body(
            self.info.tree.body, eager=True, typecheck=False,
            module_scope=True,
        )

    def _visit_body(
        self,
        body: Sequence[ast.stmt],
        *,
        eager: bool,
        typecheck: bool,
        module_scope: bool,
    ) -> None:
        for stmt in body:
            self._visit_stmt(
                stmt, eager=eager, typecheck=typecheck,
                module_scope=module_scope,
            )

    def _visit_stmt(
        self,
        stmt: ast.stmt,
        *,
        eager: bool,
        typecheck: bool,
        module_scope: bool,
    ) -> None:
        info = self.info
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.name.split(".")[0] != _root_of(info.name):
                    continue
                local = alias.asname or alias.name.split(".")[0]
                info.edges.append(ImportEdge(
                    source=info.name, target=alias.name, name="",
                    alias=local, line=stmt.lineno, eager=eager,
                    typecheck=typecheck,
                ))
                if eager and module_scope:
                    info.defs.setdefault(local, DefInfo(
                        kind="alias", module=info.name, name=local,
                        line=stmt.lineno, alias_target=(alias.name, ""),
                    ))
        elif isinstance(stmt, ast.ImportFrom):
            target = self._absolute_target(stmt)
            if target is None or target.split(".")[0] != _root_of(info.name):
                return
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.edges.append(ImportEdge(
                    source=info.name, target=target, name=alias.name,
                    alias=local, line=stmt.lineno, eager=eager,
                    typecheck=typecheck,
                ))
                if eager and module_scope:
                    info.defs.setdefault(local, DefInfo(
                        kind="alias", module=info.name, name=local,
                        line=stmt.lineno, alias_target=(target, alias.name),
                    ))
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if eager and not typecheck and module_scope:
                info.defs.setdefault(stmt.name, DefInfo(
                    kind="function", module=info.name, name=stmt.name,
                    line=stmt.lineno,
                    signature=format_signature(stmt.args, stmt.returns),
                    decorators=_decorator_names(stmt.decorator_list),
                ))
            self._visit_body(stmt.body, eager=False, typecheck=typecheck,
                             module_scope=False)
        elif isinstance(stmt, ast.ClassDef):
            if eager and not typecheck and module_scope:
                info.defs.setdefault(
                    stmt.name, _class_def_info(info.name, stmt)
                )
            # Class bodies execute at import time: imports stay eager —
            # but their defs are attributes, not module-level names.
            self._visit_body(stmt.body, eager=eager, typecheck=typecheck,
                             module_scope=False)
        elif isinstance(stmt, ast.Assign):
            if module_scope:
                for target_node in stmt.targets:
                    if isinstance(target_node, ast.Name):
                        self._record_assign(target_node.id, stmt)
            self._visit_children(stmt, eager=eager, typecheck=typecheck,
                                 module_scope=module_scope)
        elif isinstance(stmt, ast.AnnAssign):
            if module_scope and isinstance(stmt.target, ast.Name):
                self._record_assign(stmt.target.id, stmt)
            self._visit_children(stmt, eager=eager, typecheck=typecheck,
                                 module_scope=module_scope)
        elif isinstance(stmt, ast.If):
            branch_typecheck = typecheck or _is_type_checking_test(stmt.test)
            self._visit_body(stmt.body, eager=eager,
                             typecheck=branch_typecheck,
                             module_scope=module_scope)
            self._visit_body(stmt.orelse, eager=eager, typecheck=typecheck,
                             module_scope=module_scope)
        elif isinstance(stmt, (ast.Try, ast.With, ast.For, ast.While)):
            self._visit_children(stmt, eager=eager, typecheck=typecheck,
                                 module_scope=module_scope)

    def _visit_children(
        self,
        stmt: ast.stmt,
        *,
        eager: bool,
        typecheck: bool,
        module_scope: bool,
    ) -> None:
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._visit_stmt(child, eager=eager, typecheck=typecheck,
                                 module_scope=module_scope)
            elif isinstance(child, ast.ExceptHandler):
                self._visit_body(child.body, eager=eager,
                                 typecheck=typecheck,
                                 module_scope=module_scope)

    def _record_assign(self, name: str, stmt: ast.stmt) -> None:
        info = self.info
        value = getattr(stmt, "value", None)
        if name == "__all__":
            if value is not None:
                info.exports = _literal_str_list(value)
            return
        if name.startswith("__") and name.endswith("__"):
            return
        # Module-level name aliasing an existing def keeps the alias
        # chain intact: `render_model_text = render_findings_text`.
        if (
            value is not None
            and isinstance(value, ast.Name)
            and value.id in info.defs
        ):
            info.defs.setdefault(name, DefInfo(
                kind="alias", module=info.name, name=name,
                line=int(getattr(stmt, "lineno", 0)),
                alias_target=(info.name, value.id),
            ))
            return
        annotation = getattr(stmt, "annotation", None)
        info.defs.setdefault(name, DefInfo(
            kind="constant", module=info.name, name=name,
            line=getattr(stmt, "lineno", 0),
            # The annotation participates in the API's type vocabulary
            # (dead-code analysis), not in the surface snapshot.
            signature=ast.unparse(annotation) if annotation is not None
            else "",
        ))

    def _absolute_target(self, stmt: ast.ImportFrom) -> Optional[str]:
        if stmt.level == 0:
            return stmt.module
        # Relative import: resolve against this module's package path.
        parts = self.info.name.split(".")
        if self.info.is_init:
            base = parts[: len(parts) - (stmt.level - 1)]
        else:
            base = parts[: len(parts) - stmt.level]
        if not base:
            return None
        if stmt.module:
            base = base + stmt.module.split(".")
        return ".".join(base)


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _root_of(module: str) -> str:
    return module.split(".")[0]


def package_of(module: str, root: str) -> str:
    """The layering node a module belongs to.

    Subpackage modules map to their subpackage (``repro.core.plan`` →
    ``core``); top-level modules map to themselves (``repro.cli`` →
    ``cli``); the root ``__init__`` maps to the root package name.
    """
    parts = module.split(".")
    if len(parts) == 1:
        return root
    return parts[1]


# ------------------------------------------------------------- discovery


def _find_package_dirs(paths: Sequence[str]) -> List[Tuple[str, str]]:
    """Locate top-level packages under ``paths``.

    Returns ``(package_name, package_dir)`` pairs.  A path may be a
    source root containing packages (``src``), a package directory
    itself (``src/repro``), or a single ``.py`` file (treated as a
    one-module tree for fixtures).
    """
    found: List[Tuple[str, str]] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(("", path))
            continue
        if os.path.isfile(os.path.join(path, "__init__.py")):
            found.append((os.path.basename(os.path.abspath(path)), path))
            continue
        for entry in sorted(os.listdir(path)):
            candidate = os.path.join(path, entry)
            if os.path.isfile(os.path.join(candidate, "__init__.py")):
                found.append((entry, candidate))
    return found


def _iter_module_files(package_dir: str) -> Iterator[str]:
    for dirpath, dirnames, filenames in os.walk(package_dir):
        dirnames[:] = sorted(
            d for d in dirnames
            if d not in _SKIP_DIRS and not d.startswith(".")
        )
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def _module_name(package: str, package_dir: str, path: str) -> str:
    rel = os.path.relpath(path, package_dir).replace(os.sep, "/")
    dotted = rel[:-3].replace("/", ".")
    if dotted == "__init__":
        return package
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    return f"{package}.{dotted}"


def build_tree_index(paths: Sequence[str]) -> TreeIndex:
    """Parse every module under ``paths`` into a :class:`TreeIndex`.

    Files that do not parse are skipped here — reprolint owns the
    "file does not parse" finding (RP000); the architecture pass works
    with whatever parses.
    """
    index = TreeIndex()
    for package, package_dir in _find_package_dirs(paths):
        if package == "":
            files: List[str] = [package_dir]
            package = os.path.splitext(os.path.basename(package_dir))[0]
            package_dir = os.path.dirname(package_dir) or "."
        else:
            files = list(_iter_module_files(package_dir))
        if not index.root_package:
            index.root_package = package
        for path in files:
            normalized = path.replace(os.sep, "/")
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
                tree = ast.parse(source, filename=normalized)
            except (OSError, SyntaxError):
                continue
            name = _module_name(package, package_dir, path)
            info = ModuleInfo(
                name=name,
                path=normalized,
                source=source,
                tree=tree,
                package=package_of(name, package),
                is_init=normalized.endswith("__init__.py"),
            )
            _ModuleExtractor(info).extract()
            index.modules[name] = info
    return index


# ------------------------------------------------------------ resolution


def resolve_export(
    index: TreeIndex, module: str, name: str
) -> DefInfo:
    """Follow alias chains from ``(module, name)`` to the definition.

    Returns an ``"opaque"`` :class:`DefInfo` when resolution leaves
    the indexed tree (external package, dynamic definition).
    """
    seen: Set[Tuple[str, str]] = set()
    current_module, current_name = module, name
    while (current_module, current_name) not in seen:
        seen.add((current_module, current_name))
        info = index.modules.get(current_module)
        if info is None:
            return DefInfo(kind="opaque", module=current_module,
                           name=current_name)
        definition = info.defs.get(current_name)
        if definition is None:
            submodule = f"{current_module}.{current_name}"
            if submodule in index.modules:
                return DefInfo(kind="module", module=submodule,
                               name=current_name)
            return DefInfo(kind="opaque", module=current_module,
                           name=current_name)
        if definition.kind != "alias":
            return definition
        target_module, target_name = definition.alias_target
        if target_name == "":
            # `import repro.x` binds a module object.
            return DefInfo(kind="module", module=target_module,
                           name=current_name)
        current_module, current_name = target_module, target_name
    return DefInfo(kind="opaque", module=module, name=name)


# ----------------------------------------------------------- usage index


class _UsageVisitor(ast.NodeVisitor):
    def __init__(self, usage: UsageIndex, source_pkg: str, root: str) -> None:
        self.usage = usage
        self.source_pkg = source_pkg
        self.root = root
        self.aliases: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name.split(".")[0] != self.root:
                continue
            self.usage.imported_modules.add(alias.name)
            local = alias.asname or alias.name.split(".")[0]
            self.aliases[local] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level != 0 or node.module is None:
            return
        if node.module.split(".")[0] != self.root:
            return
        self.usage.imported_modules.add(node.module)
        for alias in node.names:
            if alias.name == "*":
                continue
            self.usage.record_import(
                node.module, alias.name, self.source_pkg
            )
            self.aliases[alias.asname or alias.name] = (
                f"{node.module}.{alias.name}"
            )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        chain: List[str] = [node.attr]
        value: ast.expr = node.value
        while isinstance(value, ast.Attribute):
            chain.append(value.attr)
            value = value.value
        if isinstance(value, ast.Name) and value.id in self.aliases:
            chain.append(self.aliases[value.id])
            dotted = ".".join(reversed(chain))
            prefix, _, attr = dotted.rpartition(".")
            self.usage.attributes.add((prefix, attr))
        self.generic_visit(node)


def build_usage_index(
    index: TreeIndex, usage_paths: Sequence[str]
) -> UsageIndex:
    """Harvest name usage from the tree plus external usage roots.

    ``usage_paths`` typically names the test/bench/example trees so an
    export consumed only there still counts as used; the tree's own
    modules contribute their import edges with the *importing package*
    recorded, letting rules ask "used outside the defining package?".
    """
    usage = UsageIndex()
    root = index.root_package
    for info in index.modules.values():
        for edge in info.edges:
            if edge.name:
                usage.record_import(edge.target, edge.name, info.package)
            else:
                usage.imported_modules.add(edge.target)
        visitor = _UsageVisitor(usage, info.package, root)
        visitor.visit(info.tree)
    for path in usage_paths:
        if not os.path.isdir(path) and not os.path.isfile(path):
            continue
        files = [path] if os.path.isfile(path) else [
            os.path.join(dirpath, name)
            for dirpath, dirnames, filenames in os.walk(path)
            for name in sorted(filenames)
            if name.endswith(".py")
            and not any(
                part in _SKIP_DIRS or part.startswith(".")
                for part in dirpath.split(os.sep)
            )
        ]
        for filename in files:
            try:
                with open(filename, "r", encoding="utf-8") as handle:
                    tree = ast.parse(handle.read(), filename=filename)
            except (OSError, SyntaxError):
                continue
            visitor = _UsageVisitor(usage, "<external>", root)
            visitor.visit(tree)
    return usage
