"""Public-API surface lock: AR020 breaking changes, AR021 drift.

The *surface* is every name reachable from a package ``__init__``'s
``__all__``, resolved through re-export alias chains to its defining
module and summarized structurally (function signatures, class bases,
public-method signatures, dataclass fields).  The snapshot serializes
byte-stably (sorted keys, two-space indent, trailing newline) and is
committed as ``API_SURFACE.json`` at the repo root, like the tracked
``BENCH_*.json`` baselines.

AR020 fires when a baselined entry is removed or its summarized shape
changes — the breaking-change half of the lock.  AR021 fires when the
live tree exports something the baseline never saw — additions are
cheap to make and expensive to retract, so they must be deliberate
(refresh with ``repro arch --write-api-baseline``).
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List

from repro.analysis.arch.graph import TreeIndex, resolve_export
from repro.analysis.arch.registry import (
    ArchContext,
    ArchFinding,
    ArchRule,
    register_arch,
)

__all__ = [
    "ApiSurfaceRule",
    "build_api_surface",
    "render_api_surface",
]

SURFACE_VERSION = 1


def build_api_surface(index: TreeIndex) -> Dict[str, object]:
    """Extract the exported-API snapshot from every ``__init__``.

    Only modules that declare a literal ``__all__`` participate — an
    init without one has not opted into the surface lock (the tree's
    inits all declare one; reprolint keeps it that way).
    """
    modules: Dict[str, Dict[str, Dict[str, object]]] = {}
    for info in index.modules.values():
        if not info.is_init or info.exports is None:
            continue
        entries: Dict[str, Dict[str, object]] = {}
        for name in info.exports:
            resolved = resolve_export(index, info.name, name)
            entries[name] = resolved.surface_dict()
        modules[info.name] = entries
    return {"version": SURFACE_VERSION, "modules": modules}


def render_api_surface(surface: Dict[str, object]) -> str:
    """Byte-stable text form of a surface snapshot."""
    return json.dumps(surface, indent=2, sort_keys=True) + "\n"


def _diff_keys(
    old: Dict[str, object], new: Dict[str, object]
) -> List[str]:
    changed = sorted(
        key
        for key in set(old) | set(new)
        if old.get(key) != new.get(key)
    )
    return changed


@register_arch
class ApiSurfaceRule(ArchRule):
    code = "AR020"
    name = "api-surface"
    codes = {
        "AR020": "a baselined public export was removed or changed shape",
        "AR021": "the tree exports a name the API baseline never saw",
    }
    rationale = (
        "Everything reachable from an ``__init__`` export is a promise "
        "— downstream notebooks, the CLI, and the test suite all bind "
        "to it.  Locking the surface in a committed byte-stable "
        "snapshot turns silent signature drift and accidental "
        "exports into reviewable diffs: removals and shape changes "
        "(AR020) fail the gate outright, additions (AR021) must be "
        "acknowledged by refreshing the baseline."
    )

    def check(self, ctx: ArchContext) -> Iterator[ArchFinding]:
        live = build_api_surface(ctx.index)
        ctx.api_surface = live
        baseline = ctx.api_baseline
        if baseline is None:
            return
        base_modules = baseline.get("modules", {})
        live_modules = live["modules"]
        assert isinstance(live_modules, dict)
        for module in sorted(base_modules):
            base_entries = base_modules[module]
            if module not in live_modules:
                yield ArchFinding(
                    code="AR020",
                    severity="error",
                    component=f"api[{module}]",
                    message=(
                        f"module {module} no longer exports a surface "
                        f"({len(base_entries)} baselined names gone); "
                        "if intentional, refresh with "
                        "'repro arch --write-api-baseline'"
                    ),
                    data={"baselined_names": len(base_entries)},
                )
                continue
            live_entries = live_modules[module]
            for name in sorted(base_entries):
                if name not in live_entries:
                    yield ArchFinding(
                        code="AR020",
                        severity="error",
                        component=f"api[{module}.{name}]",
                        message=(
                            f"public export {module}.{name} was removed "
                            "from __all__; restore it or refresh the "
                            "API baseline to acknowledge the break"
                        ),
                        data={"was": str(base_entries[name].get("kind"))},
                    )
                    continue
                changed = _diff_keys(base_entries[name], live_entries[name])
                if changed:
                    yield ArchFinding(
                        code="AR020",
                        severity="error",
                        component=f"api[{module}.{name}]",
                        message=(
                            f"public export {module}.{name} changed "
                            f"shape ({', '.join(changed)} differ); "
                            "breaking changes need a deliberate "
                            "baseline refresh"
                        ),
                        data={"changed_keys": ", ".join(changed)},
                    )
            undeclared = sorted(set(live_entries) - set(base_entries))
            for name in undeclared:
                yield ArchFinding(
                    code="AR021",
                    severity="warning",
                    component=f"api[{module}.{name}]",
                    message=(
                        f"{module} exports {name} but the API baseline "
                        "has no record of it; refresh the baseline to "
                        "declare the new export"
                    ),
                    data={"kind": str(live_entries[name].get("kind"))},
                )
        for module in sorted(set(live_modules) - set(base_modules)):
            names = sorted(live_modules[module])
            yield ArchFinding(
                code="AR021",
                severity="warning",
                component=f"api[{module}]",
                message=(
                    f"module {module} exports a surface "
                    f"({len(names)} names) absent from the API "
                    "baseline; refresh the baseline to declare it"
                ),
                data={"names": len(names)},
            )
