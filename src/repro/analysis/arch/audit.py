"""Run every architecture rule over a tree: the ``ArchReport`` API.

:func:`audit_tree` is the single entry point shared by the CLI, the
CI gate, and the tests: parse the tree once, build the usage index
over the tree plus the usage roots (``tests/``, ``benchmarks/``,
``examples/`` when present), hand every registered rule the shared
:class:`~repro.analysis.arch.registry.ArchContext`, honor inline
``# reprolint: disable=AR0xx`` directives for file-anchored findings,
and return an :class:`ArchReport`.

Like reprolint (and unlike the numeric auditors), the gate is
*any finding* — warnings and info findings fail ``repro arch`` too,
because every rule here flags something actionable; deliberate
exceptions go in a findings baseline or an inline directive, not in a
severity loophole.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.arch.contract import DEFAULT_CONTRACT, LayerContract
from repro.analysis.arch.graph import (
    TreeIndex,
    build_tree_index,
    build_usage_index,
)
from repro.analysis.arch.registry import (
    ArchContext,
    ArchFinding,
    all_arch_rules,
)
from repro.analysis.report import (
    render_findings_json,
    render_findings_text,
)
from repro.analysis.suppression import (
    SuppressionError,
    SuppressionIndex,
    collect_suppressions,
)

__all__ = [
    "ArchReport",
    "DEFAULT_USAGE_ROOTS",
    "audit_tree",
    "load_api_baseline",
]

#: Conventional usage roots consulted when they exist under the
#: current directory: an export consumed only by tests or benches is
#: alive, not dead.
DEFAULT_USAGE_ROOTS = ("tests", "benchmarks", "examples")


@dataclass
class ArchReport:
    """Outcome of one architecture audit."""

    findings: List[ArchFinding] = field(default_factory=list)
    suppressed: int = 0
    api_surface: Dict[str, object] = field(default_factory=dict)
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def errors(self) -> List[ArchFinding]:
        return [f for f in self.findings if f.severity == "error"]

    def render_text(self) -> str:
        return render_findings_text(self.findings)

    def render_json(self) -> str:
        details = dict(self.details)
        details["suppressed"] = self.suppressed
        return render_findings_json(self.findings, details=details)


def load_api_baseline(path: str) -> Dict[str, object]:
    """Parse a committed API-surface snapshot; raises ``ValueError``."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ValueError(f"cannot read API baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(payload, dict) or "modules" not in payload:
        raise ValueError(f"{path}: not an API-surface snapshot")
    return payload


def _default_usage_paths() -> List[str]:
    return [root for root in DEFAULT_USAGE_ROOTS if os.path.isdir(root)]


def _suppression_for(
    index: TreeIndex, cache: Dict[str, SuppressionIndex], path: str
) -> Optional[SuppressionIndex]:
    if path in cache:
        return cache[path]
    source = None
    for info in index.modules.values():
        if info.path == path:
            source = info.source
            break
    if source is None:
        cache[path] = SuppressionIndex()
        return cache[path]
    try:
        cache[path] = collect_suppressions(source)
    except SuppressionError:
        # reprolint owns reporting malformed directives (RP0xx); a
        # directive we cannot parse suppresses nothing here.
        cache[path] = SuppressionIndex()
    return cache[path]


def audit_tree(
    paths: Sequence[str],
    *,
    contract: Optional[LayerContract] = None,
    usage_paths: Optional[Sequence[str]] = None,
    api_baseline: Optional[Dict[str, object]] = None,
    api_baseline_path: Optional[str] = None,
) -> ArchReport:
    """Audit the tree under ``paths`` with every registered rule.

    ``contract`` defaults to the repo's declared layering; tests
    inject synthetic contracts (and baselines) to drive the negative
    paths without touching the real tree.  ``api_baseline`` (a parsed
    snapshot) wins over ``api_baseline_path`` (a file); when neither
    is given the surface rules only record the live snapshot — a tree
    cannot drift from a baseline it does not have.
    """
    active_contract = contract if contract is not None else DEFAULT_CONTRACT
    index = build_tree_index(paths)
    roots = (
        list(usage_paths) if usage_paths is not None
        else _default_usage_paths()
    )
    usage = build_usage_index(index, roots)
    baseline = api_baseline
    baseline_source = "inline" if api_baseline is not None else ""
    if baseline is None and api_baseline_path is not None:
        if os.path.isfile(api_baseline_path):
            baseline = load_api_baseline(api_baseline_path)
            baseline_source = api_baseline_path
        else:
            baseline_source = f"{api_baseline_path} (missing)"
    ctx = ArchContext(
        index=index,
        contract=active_contract,
        usage=usage,
        api_baseline=baseline,
    )
    raw: List[ArchFinding] = []
    for rule in all_arch_rules():
        raw.extend(rule.check(ctx))

    cache: Dict[str, SuppressionIndex] = {}
    kept: List[ArchFinding] = []
    suppressed = 0
    for finding in raw:
        if finding.path:
            suppressions = _suppression_for(index, cache, finding.path)
            if suppressions is not None and suppressions.is_suppressed(
                finding
            ):
                suppressed += 1
                continue
        kept.append(finding)
    kept.sort(key=lambda f: f.sort_key)

    eager = sum(1 for _ in index.eager_edges())
    hot = sum(
        1 for name in index.modules if active_contract.is_hot(name)
    )
    surface_modules = ctx.api_surface.get("modules", {})
    details: Dict[str, object] = {
        "modules": len(index.modules),
        "packages": index.packages(),
        "eager_edges": eager,
        "hot_modules": hot,
        "surface_modules": len(surface_modules)
        if isinstance(surface_modules, dict) else 0,
        "api_baseline": baseline_source or "none",
        "usage_roots": roots,
    }
    return ArchReport(
        findings=kept,
        suppressed=suppressed,
        api_surface=ctx.api_surface,
        details=details,
    )
