"""Import-layer contracts: AR010 layering violations, AR011 cycles.

The layer contract (:mod:`repro.analysis.arch.contract`) declares
which subpackages may eagerly import which.  AR010 flags every eager
module edge whose package pair the contract forbids (unless the exact
module edge is a sanctioned exception); AR011 runs Tarjan's strongly-
connected-components over the eager module graph and flags every
non-trivial SCC — a genuine import-time cycle, whether or not the
contract allows the packages involved.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.arch.graph import package_of
from repro.analysis.arch.registry import (
    ArchContext,
    ArchFinding,
    ArchRule,
    register_arch,
)

__all__ = ["LayerContractRule", "ImportCycleRule"]


@register_arch
class LayerContractRule(ArchRule):
    code = "AR010"
    name = "layer-contract"
    codes = {
        "AR010": "eager import crosses a layer boundary the contract "
                 "forbids",
    }
    rationale = (
        "The 15 subpackages form a layered DAG (utils/queueing at the "
        "bottom, experiments at the top).  Layering erodes one "
        "convenient import at a time; each one couples build, test, "
        "and reasoning order until 'core' cannot be imported without "
        "dragging in the whole simulation harness.  The contract makes "
        "the declared layering machine-checked: any eager import not "
        "in the importing package's allowed set fails the gate."
    )

    def check(self, ctx: ArchContext) -> Iterator[ArchFinding]:
        root = ctx.index.root_package
        seen: Set[Tuple[str, str]] = set()
        for edge in ctx.index.eager_edges():
            source_pkg = package_of(edge.source, root)
            target_pkg = package_of(edge.target, root)
            if ctx.contract.allows(source_pkg, target_pkg):
                continue
            if ctx.contract.excepted(edge.source, edge.target):
                continue
            key = (edge.source, edge.target)
            if key in seen:
                continue
            seen.add(key)
            info = ctx.index.modules[edge.source]
            allowed = sorted(ctx.contract.layers.get(source_pkg, ()))
            yield ArchFinding(
                code="AR010",
                severity="error",
                component=f"layer[{edge.source} -> {edge.target}]",
                message=(
                    f"{source_pkg!r} may not eagerly import "
                    f"{target_pkg!r} (allowed: {', '.join(allowed) or 'nothing'}); "
                    "make the import lazy (function scope), move the "
                    "shared code down a layer, or add a sanctioned "
                    "exception to the contract with a tracking comment"
                ),
                data={
                    "source_package": source_pkg,
                    "target_package": target_pkg,
                    "line": float(edge.line),
                },
                path=info.path,
                line=edge.line,
            )


@register_arch
class ImportCycleRule(ArchRule):
    code = "AR011"
    name = "import-cycle"
    codes = {
        "AR011": "eager module imports form a dependency cycle",
    }
    rationale = (
        "A module cycle means import order decides whether the tree "
        "loads at all — the classic partially-initialized-module "
        "crash that only reproduces from some entry points.  Cycles "
        "are detected on the eager module graph (lazy function-scoped "
        "imports cannot deadlock an import), independent of what the "
        "layer contract allows."
    )

    def check(self, ctx: ArchContext) -> Iterator[ArchFinding]:
        modules = ctx.index.modules
        graph: Dict[str, List[str]] = {}
        for edge in ctx.index.eager_edges():
            # `from repro.des import engine` binds the submodule: the
            # real dependency is on `repro.des.engine`, not the init.
            if edge.name and f"{edge.target}.{edge.name}" in modules:
                target = f"{edge.target}.{edge.name}"
            elif edge.target in modules:
                target = edge.target
            else:
                # `from repro.core import X` targets the package init.
                parent, _, _ = edge.target.rpartition(".")
                if parent not in modules:
                    continue
                target = parent
            if target == edge.source:
                # An init importing its own submodules is the normal
                # package assembly pattern, not a cycle.
                continue
            graph.setdefault(edge.source, []).append(target)
        for component in _strongly_connected(graph):
            if len(component) < 2:
                continue
            members = sorted(component)
            yield ArchFinding(
                code="AR011",
                severity="error",
                component=f"cycle[{' <-> '.join(members)}]",
                message=(
                    f"{len(members)} modules form an eager import "
                    "cycle; break it by moving one import to function "
                    "scope or extracting the shared definitions "
                    "downward"
                ),
                data={"size": float(len(members))},
            )


def _strongly_connected(graph: Dict[str, List[str]]) -> List[List[str]]:
    """Tarjan's SCC algorithm, iterative (trees can be deep)."""
    index_counter = [0]
    stack: List[str] = []
    lowlink: Dict[str, int] = {}
    number: Dict[str, int] = {}
    on_stack: Set[str] = set()
    result: List[List[str]] = []

    nodes: Set[str] = set(graph)
    for targets in graph.values():
        nodes.update(targets)

    for start in sorted(nodes):
        if start in number:
            continue
        work: List[Tuple[str, int]] = [(start, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                number[node] = lowlink[node] = index_counter[0]
                index_counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = graph.get(node, [])
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in number:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], number[child])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == number[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(component)
            if work:
                parent, _ = work[-1]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return result
