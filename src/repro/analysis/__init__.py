"""Domain-aware static analysis (``reprolint``) for this codebase.

The paper's profit numbers rest on numerically delicate machinery —
big-M step-TUF constraints (Eqs. 11-16), M/M/1 stability boundaries
(Eq. 1), and per-slot re-solves — where a float-equality check, an
unseeded RNG, or an unpicklable object crossing the process-pool
boundary corrupts results *silently* instead of crashing.  This package
is the correctness tooling that keeps those bug classes out of the tree:

* :mod:`repro.analysis.diagnostics` — finding datatypes and text/JSON
  rendering;
* :mod:`repro.analysis.registry`    — the rule registry (``Rule`` base
  class, ``@register``, per-rule ``RP0xx`` codes);
* :mod:`repro.analysis.rules`       — the domain rules themselves
  (``RP001``..``RP006``);
* :mod:`repro.analysis.suppression` — inline ``# reprolint:
  disable=RP0xx`` handling;
* :mod:`repro.analysis.runner`      — file walking, parsing, and rule
  dispatch (``lint_paths`` / ``lint_source``);
* :mod:`repro.analysis.baseline`    — findings baseline files so
  pre-existing debt can be frozen without blocking CI on new findings;
* :mod:`repro.analysis.cli`         — the ``repro lint`` subcommand;
* :mod:`repro.analysis.model`       — the *formulation auditor*
  (``repro audit``): static ``MD0xx`` passes over a built slot
  LP/MILP (big-M tightness, dimensional consistency, matrix
  diagnostics, feasibility pre-checks);
* :mod:`repro.analysis.report`      — the shared finding base class,
  renderers, exit codes, and findings-baseline machinery the whole
  family builds on;
* :mod:`repro.analysis.arch`        — the *architecture auditor*
  (``repro arch``): ``AR0xx`` passes over the import graph (layer
  contracts, cycles, the ``API_SURFACE.json`` lock, dead code,
  hot-path purity);
* :mod:`repro.analysis.check`       — the ``repro check`` umbrella
  (lint + arch + audit + certify, worst-of exit code).

The AST-lint layer is zero-dependency (stdlib ``ast`` + ``tokenize``),
in line with the repo's no-new-packages policy; the model subpackage
needs :mod:`numpy` and the core builders, so it is *not* imported here
— import :mod:`repro.analysis.model` explicitly (the CLI does so
lazily), keeping ``repro lint`` numpy-free.
"""

from repro.analysis.baseline import (
    Baseline,
    apply_baseline,
    read_baseline,
    write_baseline,
)
from repro.analysis.diagnostics import Diagnostic, render_json, render_text
from repro.analysis.registry import Rule, all_rules, get_rule, register
from repro.analysis.runner import LintReport, lint_paths, lint_source

# Importing the rules module populates the registry as a side effect.
from repro.analysis import rules as _rules  # noqa: F401  (registration import)

__all__ = [
    "Baseline",
    "Diagnostic",
    "apply_baseline",
    "LintReport",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "read_baseline",
    "register",
    "render_json",
    "render_text",
    "write_baseline",
]
