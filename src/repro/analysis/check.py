"""The ``repro check`` umbrella subcommand (wired up by :mod:`repro.cli`).

Runs the whole trust stack in one invocation — reprolint (``RP0xx``),
the formulation auditor (``MD0xx``), the optimality certifier
(``CT0xx``) and the architecture auditor (``AR0xx``) — and reports a
unified JSON document plus a worst-of exit code:

* ``0`` — every check gate passed;
* ``1`` — at least one check found gate-failing findings;
* ``2`` — usage error in any check (dominates findings).

Individual checks can be skipped (``--skip certify``), which is
recorded in the report rather than silently omitted.  CI runs this as
its smoke gate and uploads the JSON artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.report import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    SEVERITIES,
    worst_exit_code,
)
from repro.cli_registry import register_subcommand

__all__ = ["CHECK_NAMES", "add_check_arguments", "run_check", "run_checks"]

#: Execution order: cheap AST passes first, solver-backed last.
CHECK_NAMES = ("lint", "arch", "audit", "certify")

_DEFAULT_PATHS = ["src"]


def _summarize(findings: List[Dict]) -> Dict[str, int]:
    counts = {name: 0 for name in SEVERITIES}
    for record in findings:
        severity = record.get("severity")
        if severity in counts:
            counts[severity] += 1
    return {
        "findings": len(findings),
        "errors": counts["error"],
        "warnings": counts["warning"],
        "info": counts["info"],
    }


def _check_lint(paths: List[str], options: Dict) -> Tuple[int, Dict]:
    from repro.analysis.runner import LintReport, lint_paths

    report: LintReport = lint_paths(paths)
    findings = [d.to_dict() for d in report.findings]
    return (
        EXIT_CLEAN if report.clean else EXIT_FINDINGS,
        {
            "findings": findings,
            "summary": _summarize(findings),
            "details": {
                "files_checked": report.files_checked,
                "suppressed": report.suppressed,
            },
        },
    )


def _check_arch(paths: List[str], options: Dict) -> Tuple[int, Dict]:
    from repro.analysis.arch import audit_tree

    report = audit_tree(
        paths, api_baseline_path=options.get("api_baseline")
    )
    findings = [f.to_dict() for f in report.findings]
    details = dict(report.details)
    details["suppressed"] = report.suppressed
    return (
        EXIT_CLEAN if report.clean else EXIT_FINDINGS,
        {
            "findings": findings,
            "summary": _summarize(findings),
            "details": details,
        },
    )


def _check_audit(paths: List[str], options: Dict) -> Tuple[int, Dict]:
    from repro.analysis.model.cli import _scenario_inputs
    from repro.analysis.model import audit_slot

    inputs = _scenario_inputs(options["scenario"], options["slot"])
    report = audit_slot(inputs)
    findings = [f.to_dict() for f in report.findings]
    return (
        EXIT_CLEAN if report.clean else EXIT_FINDINGS,
        {
            "findings": findings,
            "summary": _summarize(findings),
            "details": {
                "scenario": options["scenario"],
                "slot": options["slot"],
            },
        },
    )


def _check_certify(paths: List[str], options: Dict) -> Tuple[int, Dict]:
    from repro.analysis.certify.cli import _certify_slots

    slots = list(range(options["certify_slots"]))
    found, details = _certify_slots(
        options["scenario"], slots, "auto", "highs", False
    )
    findings = [f.to_dict() for f in found]
    errors = sum(1 for f in found if f.severity == "error")
    return (
        EXIT_FINDINGS if errors else EXIT_CLEAN,
        {
            "findings": findings,
            "summary": _summarize(findings),
            "details": details,
        },
    )


_RUNNERS: Dict[str, Callable[[List[str], Dict], Tuple[int, Dict]]] = {
    "lint": _check_lint,
    "arch": _check_arch,
    "audit": _check_audit,
    "certify": _check_certify,
}


def run_checks(
    paths: List[str],
    *,
    skip: Tuple[str, ...] = (),
    scenario: str = "section6",
    slot: int = 0,
    certify_slots: int = 1,
    api_baseline: str = "API_SURFACE.json",
) -> Tuple[int, Dict]:
    """Run every non-skipped check; returns (exit_code, report dict).

    The report shape is stable for scripting::

        {"checks": {name: {"exit_code", "findings", "summary",
                           "details"} | {"skipped": true}},
         "summary": {"exit_code", "ran", "skipped"}}
    """
    options = {
        "scenario": scenario,
        "slot": slot,
        "certify_slots": certify_slots,
        "api_baseline": api_baseline,
    }
    checks: Dict[str, Dict] = {}
    codes: List[int] = []
    ran: List[str] = []
    for name in CHECK_NAMES:
        if name in skip:
            checks[name] = {"skipped": True}
            continue
        try:
            code, payload = _RUNNERS[name](paths, options)
        except FileNotFoundError as exc:
            code, payload = EXIT_USAGE, {"error": str(exc)}
        except ValueError as exc:
            code, payload = EXIT_USAGE, {"error": str(exc)}
        checks[name] = {"exit_code": code, **payload}
        codes.append(code)
        ran.append(name)
    exit_code = worst_exit_code(codes)
    report = {
        "checks": checks,
        "summary": {
            "exit_code": exit_code,
            "ran": ran,
            "skipped": sorted(skip),
        },
    }
    return exit_code, report


def add_check_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro check`` flags to ``parser``."""
    parser.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help="tree passed to the lint and arch checks (default: src)",
    )
    parser.add_argument(
        "--skip", action="append", default=None,
        choices=list(CHECK_NAMES), metavar="CHECK",
        help="skip one check (repeatable); recorded in the report",
    )
    parser.add_argument(
        "--scenario", choices=["section5", "section6", "section7"],
        default="section6",
        help="scenario for the audit and certify checks "
             "(default: section6)",
    )
    parser.add_argument(
        "--slot", type=int, default=0,
        help="slot audited by the audit check (default: 0)",
    )
    parser.add_argument(
        "--certify-slots", type=int, default=1, metavar="N",
        help="certify slots 0..N-1 (default: 1)",
    )
    parser.add_argument(
        "--api-baseline", type=str, default="API_SURFACE.json",
        metavar="FILE",
        help="API-surface snapshot for the arch check "
             "(default: API_SURFACE.json)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--out", type=str, default=None, metavar="FILE",
        help="additionally write the JSON report to this file",
    )


@register_subcommand(
    "check",
    help_text="run lint + arch + audit + certify in one gate; "
              "worst-of exit code",
    configure=add_check_arguments,
)
def run_check(args: argparse.Namespace) -> int:
    """Execute ``repro check`` for parsed ``args``; returns the exit
    code."""
    if args.certify_slots < 1:
        print(
            f"error: --certify-slots must be >= 1 (got "
            f"{args.certify_slots})",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.slot < 0:
        print(f"error: --slot must be >= 0 (got {args.slot})",
              file=sys.stderr)
        return EXIT_USAGE
    paths = args.paths or _DEFAULT_PATHS
    skip = tuple(dict.fromkeys(args.skip or ()))
    exit_code, report = run_checks(
        paths,
        skip=skip,
        scenario=args.scenario,
        slot=args.slot,
        certify_slots=args.certify_slots,
        api_baseline=args.api_baseline,
    )

    rendered = json.dumps(report, indent=2, sort_keys=True)
    if args.out is not None:
        try:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(rendered + "\n")
        except OSError as exc:
            print(f"error: cannot write report: {exc}", file=sys.stderr)
            return EXIT_USAGE

    if args.format == "json":
        print(rendered)
        return exit_code

    for name in CHECK_NAMES:
        entry = report["checks"][name]
        if entry.get("skipped"):
            print(f"{name:8s} skipped")
            continue
        if "error" in entry:
            print(f"{name:8s} usage error: {entry['error']}")
            continue
        summary = entry["summary"]
        verdict = "ok" if entry["exit_code"] == EXIT_CLEAN else "FAIL"
        print(
            f"{name:8s} {verdict}  {summary['findings']} finding(s): "
            f"{summary['errors']} error(s), "
            f"{summary['warnings']} warning(s), {summary['info']} info"
        )
    print(f"check: exit {exit_code}")
    return exit_code


def _standalone(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.analysis.check`` — the gate without the CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="umbrella gate: lint + arch + audit + certify",
    )
    add_check_arguments(parser)
    return run_check(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - thin wrapper
    sys.exit(_standalone())
