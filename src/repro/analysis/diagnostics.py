"""Finding datatypes and rendering for the ``reprolint`` pass.

A :class:`Diagnostic` is one finding: a rule code anchored to a file
and line.  Findings are plain frozen dataclasses so reports serialize
(JSON output, baseline files) without any custom machinery.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, List, Tuple

__all__ = ["Diagnostic", "render_text", "render_json"]


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One static-analysis finding.

    Ordering is (path, line, col, code) so sorted reports group by file
    and read top to bottom.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def __post_init__(self) -> None:
        if not self.code.startswith("RP"):
            raise ValueError(f"rule codes are RPxxx, got {self.code!r}")
        if self.line < 1 or self.col < 0:
            raise ValueError(
                f"bad location {self.line}:{self.col} for {self.code}"
            )

    @property
    def fingerprint(self) -> Tuple[str, str, int]:
        """Baseline-matching key: (path, code, line)."""
        return (self.path, self.code, self.line)

    def to_dict(self) -> dict:
        """Plain-dict form for ``--format json`` and baselines."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


def render_text(diagnostics: Iterable[Diagnostic]) -> str:
    """``path:line:col: CODE message`` lines, one per finding, sorted."""
    return "\n".join(
        f"{d.path}:{d.line}:{d.col}: {d.code} {d.message}"
        for d in sorted(diagnostics)
    )


def render_json(
    diagnostics: Iterable[Diagnostic],
    *,
    suppressed: int = 0,
    baselined: int = 0,
    files_checked: int = 0,
) -> str:
    """Machine-readable report for ``repro lint --format json``."""
    findings: List[dict] = [d.to_dict() for d in sorted(diagnostics)]
    return json.dumps(
        {
            "findings": findings,
            "summary": {
                "findings": len(findings),
                "suppressed": suppressed,
                "baselined": baselined,
                "files_checked": files_checked,
            },
        },
        indent=2,
    )
