"""API-hygiene rules: RP007, RP008.

Both guard interfaces rather than expressions: RP007 catches the classic
shared-mutable-default bug anywhere in ``src/``, and RP008 enforces the
dtype contract of array-returning functions in the numerical packages
(``core``/``solvers``), where a silent float32/object coercion changes
profit numbers instead of raising.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import FileContext, Rule, register

__all__ = ["MutableDefaultRule", "ArrayDtypeContractRule"]

#: Call names whose results are mutable containers when used as defaults.
_MUTABLE_FACTORIES = ("list", "dict", "set", "bytearray")


def _mutable_default(node: ast.AST) -> Optional[str]:
    """A description of ``node`` when it is a mutable default, else None."""
    if isinstance(node, ast.List):
        return "list literal"
    if isinstance(node, ast.Dict):
        return "dict literal"
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else None
        if name in _MUTABLE_FACTORIES and not node.args and not node.keywords:
            return f"{name}()"
    return None


@register
class MutableDefaultRule(Rule):
    """RP007 — mutable default argument values."""

    code = "RP007"
    name = "mutable-default"
    rationale = (
        "A mutable default ([] / {} / set() / dict()) is evaluated once "
        "at def time and shared by every call; the first caller that "
        "appends to it changes the default for all later callers. In "
        "this codebase that means one slot's solver options, collected "
        "findings, or level vectors leaking into the next slot — a "
        "cross-slot state bug the warm-start tests cannot distinguish "
        "from a legitimate cache. Default to None and create the "
        "container inside the function."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            owner = "<lambda>" if isinstance(node, ast.Lambda) else node.name
            args = node.args
            defaults: List[Tuple[ast.arg, ast.AST]] = []
            positional = args.posonlyargs + args.args
            for arg, default in zip(
                positional[len(positional) - len(args.defaults):],
                args.defaults,
            ):
                defaults.append((arg, default))
            for arg, default in zip(args.kwonlyargs, args.kw_defaults):
                if default is not None:
                    defaults.append((arg, default))
            for arg, default in defaults:
                description = _mutable_default(default)
                if description is not None:
                    yield self.diagnostic(
                        ctx, default,
                        f"mutable default {description} for parameter "
                        f"'{arg.arg}' of '{owner}' is shared across "
                        "calls; default to None and build the container "
                        "in the body",
                    )


def _returns_ndarray(fn: ast.FunctionDef) -> bool:
    """True when the return annotation names ``np.ndarray``/``ndarray``."""
    ann = fn.returns
    if ann is None:
        return False
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        text = ann.value
    else:
        try:
            text = ast.unparse(ann)
        except ValueError:  # pragma: no cover - malformed annotation
            return False
    return "np.ndarray" in text or text == "ndarray"


@register
class ArrayDtypeContractRule(Rule):
    """RP008 — ndarray-returning APIs must document their dtype."""

    code = "RP008"
    name = "array-dtype-contract"
    rationale = (
        "Profit aggregation, LP matrices, and delay formulas assume "
        "float64 end to end; an ndarray-returning function that quietly "
        "yields float32 (e.g. from a downsampled trace) or object dtype "
        "(from a ragged list) loses half the mantissa or breaks "
        "vectorized ops far from the source. Public array-returning "
        "functions in the numerical packages (core/, solvers/) must "
        "state the dtype contract in their docstring — mention "
        "'float64' (or the word 'dtype' for the exceptional cases) so "
        "callers and reviewers see the guarantee."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_package("core", "solvers"):
            return
        yield from self._walk(ctx, ctx.tree, private_scope=False)

    def _walk(
        self, ctx: FileContext, node: ast.AST, private_scope: bool
    ) -> Iterator[Diagnostic]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from self._walk(
                    ctx, child,
                    private_scope or child.name.startswith("_"),
                )
            elif isinstance(child, ast.FunctionDef):
                if not private_scope and not child.name.startswith("_"):
                    yield from self._check_function(ctx, child)
                # Nested defs are local helpers — not API surface.

    def _check_function(
        self, ctx: FileContext, fn: ast.FunctionDef
    ) -> Iterator[Diagnostic]:
        if not _returns_ndarray(fn):
            return
        doc = ast.get_docstring(fn) or ""
        lowered = doc.lower()
        if "float64" not in lowered and "dtype" not in lowered:
            yield self.diagnostic(
                ctx, fn,
                f"'{fn.name}' returns np.ndarray but its docstring does "
                "not state the dtype contract; document 'float64' (or "
                "the intended dtype) so silent float32/object coercion "
                "is reviewable",
            )
