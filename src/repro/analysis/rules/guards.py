"""Numeric-guard rules: RP009 (tolerance literals), RP010 (division).

Both protect the same invariant from different sides: every numeric
threshold the pipeline branches on must be *named* (so two call sites
cannot silently disagree about what "zero" means), and every division
whose denominator models a physical quantity that can reach zero
(arrival rates, server counts, capacities) must be guarded before the
``inf``/``nan`` escapes into a profit number.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import FileContext, Rule, register

__all__ = ["ToleranceLiteralRule", "UnguardedDivisionRule"]

#: The module allowed to define tolerance constants.
_TOLERANCE_HOME_SUFFIX = "solvers/tolerances.py"

#: Magnitude at or below which a float literal in a comparison or an
#: additive nudge reads as a *tolerance* rather than model data.  Model
#: coefficients in the paper (prices, powers, deadlines) all sit well
#: above 1e-4; everything at or below it is an epsilon.
_TOLERANCE_CEILING = 1e-4


def _float_value(node: ast.AST) -> Optional[float]:
    """The literal float value of ``node`` (through unary +/-), else None."""
    if isinstance(node, ast.Constant) and type(node.value) is float:
        return float(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        inner = _float_value(node.operand)
        if inner is not None:
            return -inner if isinstance(node.op, ast.USub) else inner
    return None


def _is_tolerance_literal(node: ast.AST) -> bool:
    value = _float_value(node)
    return value is not None and 0.0 < abs(value) <= _TOLERANCE_CEILING


@register
class ToleranceLiteralRule(Rule):
    """RP009 — hardcoded tolerance literal outside the tolerance module."""

    code = "RP009"
    name = "hardcoded-tolerance"
    rationale = (
        "A tolerance spelled inline (1e-6 here, 1e-8 there) drifts: two "
        "call sites that must agree on what counts as zero — presolve "
        "dropping a row, the simplex ratio test keeping it — end up "
        "with different epsilons and the solve paths diverge on "
        "degenerate slots. Every threshold that gates a comparison or "
        "nudges a bound must be a named constant from "
        "repro.solvers.tolerances so a change lands everywhere at once."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_package("solvers", "core"):
            return
        if ctx.path.endswith(_TOLERANCE_HOME_SUFFIX):
            return
        seen: Set[Tuple[int, int]] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Compare):
                candidates = [node.left, *node.comparators]
                context = "compared against"
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                candidates = [node.left, node.right]
                context = "added to / subtracted from a quantity"
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                candidates = [node.value]
                context = "added to / subtracted from a quantity"
            else:
                continue
            for cand in candidates:
                if not _is_tolerance_literal(cand):
                    continue
                key = (
                    int(getattr(cand, "lineno", 0)),
                    int(getattr(cand, "col_offset", 0)),
                )
                if key in seen:
                    continue
                seen.add(key)
                value = _float_value(cand)
                yield self.diagnostic(
                    ctx, cand,
                    f"tolerance literal {value!r} {context}; name it in "
                    "repro.solvers.tolerances and import it so every "
                    "solve path agrees on the same epsilon",
                )


#: Denominator leaf-name fragments that model quantities the paper lets
#: reach zero: per-class arrival rates between bursts, powered-on
#: server counts after right-sizing, residual capacities at saturation.
_RISKY_FRAGMENTS = (
    "arrival", "rate", "server", "capacity", "count", "total",
    "load", "demand", "mu", "lam",
)

#: Call names that clamp a denominator away from zero.
_CLAMP_CALLS = {"max", "maximum", "fmax", "clip"}


def _leaf_name(node: ast.AST) -> Optional[str]:
    """Rightmost identifier of a denominator expression, if any.

    ``rates`` -> 'rates'; ``self.arrival_rates`` -> 'arrival_rates';
    ``mu[k]`` -> 'mu'.  Parenthesized arithmetic and calls return None —
    a computed denominator carries no recognizable quantity name.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return _leaf_name(node.value)
    return None


def _is_risky_name(name: Optional[str]) -> bool:
    if name is None:
        return False
    lowered = name.lower()
    return any(frag in lowered for frag in _RISKY_FRAGMENTS)


def _call_leaf(node: ast.AST) -> Optional[str]:
    func = node.func if isinstance(node, ast.Call) else None
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _has_inline_clamp(denominator: ast.AST) -> bool:
    """True when the denominator expression itself bounds away from zero."""
    for sub in ast.walk(denominator):
        if isinstance(sub, ast.Call) and _call_leaf(sub) in _CLAMP_CALLS:
            return True
        # ``x / (rate + eps)`` — an additive positive constant floors it.
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Add):
            for side in (sub.left, sub.right):
                value = _float_value(side)
                if value is None and isinstance(side, ast.Constant):
                    raw = side.value
                    value = float(raw) if type(raw) is int else None
                if value is not None and value > 0.0:
                    return True
    return False


def _guard_names(test: ast.AST) -> Set[str]:
    """Identifiers (names and attribute leaves) appearing in a test."""
    names: Set[str] = set()
    for sub in ast.walk(test):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
    return names


def _terminates(body: list) -> bool:
    """True when a block always leaves the enclosing suite."""
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


def _validated_names(stmt: ast.stmt) -> Set[str]:
    """Names a statement establishes as safe denominators.

    Two repo idioms count: routing a value through
    ``repro.utils.validation.check_positive`` (``mu =
    check_positive(rate, ..)`` raises before zero ever reaches a
    division — the weaker ``check_nonnegative`` does *not* count), and
    binding a clamped or selected expression (``safe = np.where(cond,
    x, 1.0)`` / ``np.maximum(x, eps)``) to a name.
    """
    names: Set[str] = set()
    for sub in ast.walk(stmt):
        if isinstance(sub, ast.Call) and _call_leaf(sub) == "check_positive":
            for arg in sub.args:
                validated = _leaf_name(arg)
                if validated is not None:
                    names.add(validated)
    targets: list = []
    value: Optional[ast.AST] = None
    if isinstance(stmt, ast.Assign):
        targets, value = stmt.targets, stmt.value
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        targets, value = [stmt.target], stmt.value
    if value is not None and (
        _has_inline_clamp(value)
        or _call_leaf(value) in (_CLAMP_CALLS | {"where", "check_positive"})
    ):
        for target in targets:
            bound = _leaf_name(target)
            if bound is not None:
                names.add(bound)
    return names


def _class_invariants(cls: ast.ClassDef) -> Set[str]:
    """Attribute names ``__post_init__`` proves nonzero for the class.

    Frozen dataclasses validate in ``__post_init__`` and never mutate,
    so a field routed through ``check_positive`` there (or gated by an
    ``if field < 1: raise``) stays safe in every method.
    """
    invariants: Set[str] = set()
    for stmt in cls.body:
        if not (
            isinstance(stmt, ast.FunctionDef)
            and stmt.name == "__post_init__"
        ):
            continue
        for inner in stmt.body:
            invariants |= _validated_names(inner)
            if isinstance(inner, ast.If) and _terminates(inner.body):
                invariants |= _guard_names(inner.test)
    return invariants


@register
class UnguardedDivisionRule(Rule):
    """RP010 — unguarded division by a possibly-zero modeled quantity."""

    code = "RP010"
    name = "unguarded-division"
    rationale = (
        "Arrival rates go to zero between bursts, right-sizing powers "
        "server counts down to zero, and residual capacity hits zero "
        "exactly at the M/M/1 stability boundary (Eq. 1). Dividing by "
        "any of them without a guard turns one idle class into inf/nan "
        "that propagates through delays into the profit objective "
        "without raising. Clamp the denominator (np.maximum(d, eps)), "
        "add a positive floor, or branch on it first."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_package("core", "stream", "queueing"):
            return
        yield from self._scan_block(ctx, ctx.tree.body, set(), frozenset())

    # -- statement-level walk, threading the guarded-name set ---------

    def _scan_block(
        self,
        ctx: FileContext,
        body: list,
        guarded: Set[str],
        invariants: "frozenset[str]",
    ) -> Iterator[Diagnostic]:
        guarded = set(guarded)
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Fresh scope: an enclosing guard does not protect calls
                # made later with different arguments.  Class invariants
                # (``__post_init__`` validation on a frozen dataclass)
                # do carry into every method.
                yield from self._scan_block(
                    ctx, stmt.body, set(invariants), invariants
                )
            elif isinstance(stmt, ast.ClassDef):
                yield from self._scan_block(
                    ctx, stmt.body, guarded,
                    invariants | _class_invariants(stmt),
                )
            elif isinstance(stmt, ast.Assert):
                yield from self._check_expr(ctx, stmt.test, guarded)
                guarded |= _guard_names(stmt.test)
            elif isinstance(stmt, ast.If):
                yield from self._check_expr(ctx, stmt.test, guarded)
                tested = _guard_names(stmt.test)
                yield from self._scan_block(
                    ctx, stmt.body, guarded | tested, invariants
                )
                yield from self._scan_block(
                    ctx, stmt.orelse, guarded | tested, invariants
                )
                # ``if rate == 0: return 0.0`` guards everything after.
                if _terminates(stmt.body) or _terminates(stmt.orelse):
                    guarded |= tested
            elif isinstance(stmt, ast.While):
                yield from self._check_expr(ctx, stmt.test, guarded)
                tested = _guard_names(stmt.test)
                yield from self._scan_block(
                    ctx, stmt.body, guarded | tested, invariants
                )
                yield from self._scan_block(
                    ctx, stmt.orelse, guarded, invariants
                )
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                yield from self._check_expr(ctx, stmt.iter, guarded)
                yield from self._scan_block(ctx, stmt.body, guarded, invariants)
                yield from self._scan_block(
                    ctx, stmt.orelse, guarded, invariants
                )
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    yield from self._check_expr(
                        ctx, item.context_expr, guarded
                    )
                yield from self._scan_block(ctx, stmt.body, guarded, invariants)
            elif isinstance(stmt, ast.Try):
                yield from self._scan_block(ctx, stmt.body, guarded, invariants)
                for handler in stmt.handlers:
                    yield from self._scan_block(
                        ctx, handler.body, guarded, invariants
                    )
                yield from self._scan_block(
                    ctx, stmt.orelse, guarded, invariants
                )
                yield from self._scan_block(
                    ctx, stmt.finalbody, guarded, invariants
                )
            else:
                yield from self._check_expr(ctx, stmt, guarded)
                guarded |= _validated_names(stmt)

    # -- expression-level walk -----------------------------------------

    def _check_expr(
        self, ctx: FileContext, node: ast.AST, guarded: Set[str]
    ) -> Iterator[Diagnostic]:
        if isinstance(node, ast.IfExp):
            yield from self._check_expr(ctx, node.test, guarded)
            branch_guard = guarded | _guard_names(node.test)
            yield from self._check_expr(ctx, node.body, branch_guard)
            yield from self._check_expr(ctx, node.orelse, branch_guard)
            return
        if (
            isinstance(node, ast.Call)
            and _call_leaf(node) == "where"
            and len(node.args) >= 3
        ):
            # np.where(rate > 0, x / rate, fallback): the condition
            # selects away the zero lanes before the division lands.
            yield from self._check_expr(ctx, node.args[0], guarded)
            branch_guard = guarded | _guard_names(node.args[0])
            for arg in node.args[1:]:
                yield from self._check_expr(ctx, arg, branch_guard)
            for kw in node.keywords:
                yield from self._check_expr(ctx, kw.value, branch_guard)
            return
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Div, ast.FloorDiv)
        ):
            yield from self._maybe_flag(ctx, node, guarded)
        for child in ast.iter_child_nodes(node):
            yield from self._check_expr(ctx, child, guarded)

    def _maybe_flag(
        self, ctx: FileContext, node: ast.BinOp, guarded: Set[str]
    ) -> Iterator[Diagnostic]:
        name = _leaf_name(node.right)
        if not _is_risky_name(name):
            return
        if name in guarded:
            return
        if _has_inline_clamp(node.right):
            return
        yield self.diagnostic(
            ctx, node,
            f"division by {name!r}, a modeled quantity that can reach "
            "zero (idle class / powered-down site / saturated link); "
            f"clamp it (np.maximum({name}, eps)) or branch on it first",
        )
