"""Cross-module contract rules: RP004, RP005, RP006.

These encode contracts introduced by the warm-start (PR 1), telemetry
(PR 2), and fault-tolerance (PR 3) layers — contracts a module can
silently drop without any test noticing until a run loses its traces,
its warm state, or a whole slot's failure cause.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import FileContext, Rule, register

__all__ = ["SolverContractRule", "PoolPicklabilityRule", "SwallowedExceptionRule"]


def _param_names(fn: ast.FunctionDef) -> Set[str]:
    args = fn.args
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    return names


@register
class SolverContractRule(Rule):
    """RP004 — solver entry points must accept ``state`` and ``collector``."""

    code = "RP004"
    name = "solver-contract"
    rationale = (
        "Every solver entry point threads two cross-cutting objects: the "
        "SolverState warm-start token (repro/solvers/base.py) and the "
        "repro.obs Collector. An entry point without those parameters "
        "silently severs the chain — downstream callers cannot forward "
        "warm state or telemetry through it, cross-slot warm-start hits "
        "quietly become cold solves, and the slot traces lose the "
        "solver's timings. Accept state=None and collector=None even "
        "when a backend cannot consume them (document that they are "
        "offered but unused)."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_package("solvers"):
            return
        entry_points: List[Tuple[ast.FunctionDef, str]] = []
        module = ctx.tree
        assert isinstance(module, ast.Module)
        for node in module.body:
            if isinstance(node, ast.FunctionDef) and (
                node.name == "solve" or node.name.startswith("solve_")
            ):
                entry_points.append((node, node.name))
            elif isinstance(node, ast.ClassDef) and node.name.endswith("Solver"):
                for item in node.body:
                    if isinstance(item, ast.FunctionDef) and item.name == "solve":
                        entry_points.append((item, f"{node.name}.solve"))
        for fn, label in entry_points:
            missing = sorted({"state", "collector"} - _param_names(fn))
            if missing:
                yield self.diagnostic(
                    ctx, fn,
                    f"solver entry point '{label}' drops the threading "
                    f"contract: missing parameter(s) {', '.join(missing)} "
                    "(warm-start SolverState / repro.obs Collector; see "
                    "repro/solvers/base.py)",
                )


def _chain_tail(node: ast.AST) -> Optional[str]:
    """Last attribute/name segment of a call target, or None."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _receiver_name(node: ast.AST) -> str:
    """Best-effort dotted receiver of an attribute call, lowercased."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(parts[::-1]).lower()


@register
class PoolPicklabilityRule(Rule):
    """RP005 — lambdas/nested callables handed to process-pool boundaries."""

    code = "RP005"
    name = "pool-picklability"
    rationale = (
        "Lambdas, closures, and locally-defined functions do not pickle, "
        "so they cannot cross the ProcessPoolExecutor boundary used by "
        "repro.sim.parallel. Worse, since PR 3 the pool path *recovers* "
        "from worker failures by re-solving chunks serially, so an "
        "unpicklable callable does not crash the run — it degrades every "
        "chunk into a serial re-solve and records the pickle error as a "
        "slot failure. Pass a module-level function or a picklable spec "
        "(DispatcherSpec) instead."
    )

    #: Callables these names receive must cross a process boundary.
    _POOL_FUNCTIONS = {"parallel_run_simulation", "ProcessPoolExecutor"}

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        yield from self._walk(ctx, ctx.tree, local_callables=frozenset())

    def _local_callables(self, fn: ast.AST) -> Set[str]:
        """Names bound to nested defs / lambdas directly inside ``fn``."""
        names: Set[str] = set()
        for child in ast.iter_child_nodes(fn):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(child.name)
            elif isinstance(child, ast.Assign) and isinstance(child.value, ast.Lambda):
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    def _walk(
        self, ctx: FileContext, node: ast.AST, local_callables: frozenset
    ) -> Iterator[Diagnostic]:
        for child in ast.iter_child_nodes(node):
            scope = local_callables
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope = local_callables | self._local_callables(child)
            elif isinstance(child, ast.Call):
                yield from self._check_call(ctx, child, local_callables)
            yield from self._walk(ctx, child, scope)

    def _check_call(
        self, ctx: FileContext, call: ast.Call, local_callables: frozenset
    ) -> Iterator[Diagnostic]:
        tail = _chain_tail(call.func)
        is_boundary = False
        if tail == "submit" and isinstance(call.func, ast.Attribute):
            is_boundary = True
        elif tail == "map" and isinstance(call.func, ast.Attribute):
            receiver = _receiver_name(call.func.value)
            is_boundary = "pool" in receiver or "executor" in receiver
        elif tail in self._POOL_FUNCTIONS:
            is_boundary = True
        if not is_boundary:
            return
        candidates = list(call.args) + [kw.value for kw in call.keywords]
        for arg in candidates:
            if isinstance(arg, ast.Lambda):
                yield self.diagnostic(
                    ctx, arg,
                    f"lambda passed across the process-pool boundary "
                    f"('{tail}'); lambdas do not pickle — use a "
                    "module-level function or a picklable spec",
                )
            elif isinstance(arg, ast.Name) and arg.id in local_callables:
                yield self.diagnostic(
                    ctx, arg,
                    f"locally-defined callable '{arg.id}' passed across "
                    f"the process-pool boundary ('{tail}'); nested "
                    "functions do not pickle — move it to module scope",
                )


#: Identifier substrings that count as recording a failure. "failure",
#: "failures", "failed_chunks", and "fallback_*" all match.
_FAILURE_MARKERS = ("fail", "fallback")


def _is_broad_handler(handler: ast.ExceptHandler) -> Tuple[bool, str]:
    """(is bare-or-broad, description) for an except clause."""
    if handler.type is None:
        return True, "bare 'except:'"
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for t in types:
        tail = _chain_tail(t)
        if tail in ("Exception", "BaseException"):
            return True, f"'except {tail}'"
    return False, ""


def _handler_records_failure(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            tail = _chain_tail(node.func)
            if tail in ("warn", "warning", "error", "exception"):
                return True
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None:
            lowered = name.lower()
            if any(marker in lowered for marker in _FAILURE_MARKERS):
                return True
    return False


@register
class SwallowedExceptionRule(Rule):
    """RP006 — bare/swallowed ``except`` in solver and fallback code."""

    code = "RP006"
    name = "swallowed-exception"
    rationale = (
        "The fallback chain (PR 3) turns solver failures into recorded "
        "degradations: every caught error must either re-raise, warn, or "
        "land in a failure record (SolveStats.failure, "
        "SimulationResult.failures, fallback counters). A bare or broad "
        "except that just swallows leaves the run reporting a clean, "
        "wrong profit — in this domain a wrong plan is a wrong dollar "
        "amount, not an exception."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        scoped = ctx.in_package("solvers", "core", "sim")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                broad, description = _is_broad_handler(handler)
                if handler.type is None:
                    yield self.diagnostic(
                        ctx, handler,
                        "bare 'except:' catches SystemExit/KeyboardInterrupt "
                        "too; name the exception types and record or "
                        "re-raise the failure",
                    )
                    continue
                if not scoped or not broad:
                    continue
                if not _handler_records_failure(handler):
                    yield self.diagnostic(
                        ctx, handler,
                        f"{description} swallows the error without "
                        "re-raising, warning, or recording a failure "
                        "(SolveStats.failure / SimulationResult.failures); "
                        "a silently-dropped solver error becomes a wrong "
                        "profit number",
                    )
