"""The domain rule set; importing this package registers every rule.

Codes are stable and append-only (a retired rule's code is never
reused — baselines and suppression comments outlive rules):

* ``RP001`` float ``==``/``!=`` comparisons (numeric-boundary hazard);
* ``RP002`` unseeded / legacy-global RNG use outside ``utils/rng.py``;
* ``RP003`` frozen-dataclass mutation outside ``__post_init__``;
* ``RP004`` solver entry points dropping the ``state``/``collector``
  threading contract of :mod:`repro.solvers.base`;
* ``RP005`` unpicklable callables (lambdas, nested defs) handed to
  process-pool boundaries;
* ``RP006`` bare or swallowed ``except`` in solver/fallback code;
* ``RP007`` mutable default argument values (shared-state bug);
* ``RP008`` public ndarray-returning functions in ``core``/``solvers``
  without a documented dtype contract (float64 coercion risk);
* ``RP009`` hardcoded tolerance literals in ``solvers``/``core``
  compared or added outside :mod:`repro.solvers.tolerances`;
* ``RP010`` unguarded division by possibly-zero modeled quantities
  (arrival rates, server counts, capacities) in
  ``core``/``stream``/``queueing``.
"""

from repro.analysis.rules.contracts import (
    PoolPicklabilityRule,
    SolverContractRule,
    SwallowedExceptionRule,
)
from repro.analysis.rules.guards import (
    ToleranceLiteralRule,
    UnguardedDivisionRule,
)
from repro.analysis.rules.hygiene import (
    ArrayDtypeContractRule,
    MutableDefaultRule,
)
from repro.analysis.rules.numerics import (
    FloatEqualityRule,
    FrozenMutationRule,
    UnseededRngRule,
)

__all__ = [
    "FloatEqualityRule",
    "UnseededRngRule",
    "FrozenMutationRule",
    "SolverContractRule",
    "PoolPicklabilityRule",
    "SwallowedExceptionRule",
    "MutableDefaultRule",
    "ArrayDtypeContractRule",
    "ToleranceLiteralRule",
    "UnguardedDivisionRule",
]
