"""Numeric-reproducibility rules: RP001, RP002, RP003.

These guard the failure modes that corrupt the paper's profit numbers
without raising: float-equality branches that flip on 1-ulp noise at
the M/M/1 stability boundary (Eq. 1), RNG streams that silently differ
between runs or processes, and frozen-config mutation that invalidates
warm-start caches keyed on config identity.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import FileContext, Rule, register

__all__ = ["FloatEqualityRule", "UnseededRngRule", "FrozenMutationRule"]


def _is_float_constant(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and type(node.value) is float:
        return True
    # Negative literals parse as UnaryOp(USub, Constant).
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and _is_float_constant(node.operand)
    ):
        return True
    # float("inf"), float(x) — an explicit float() cast marks the
    # comparison as floating-point even without a literal.
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    ):
        return True
    return False


@register
class FloatEqualityRule(Rule):
    """RP001 — exact ``==``/``!=`` against a float operand."""

    code = "RP001"
    name = "float-equality"
    rationale = (
        "Exact float equality flips on one-ulp noise. At the M/M/1 "
        "stability boundary (Eq. 1) or a zero-energy guard, a branch "
        "taken the wrong way yields a finite-but-wrong profit, not an "
        "exception. Compare with an explicit tolerance (math.isclose, "
        "abs(a-b) <= tol) or restructure to an inequality that is "
        "correct on both sides of the boundary."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                if _is_float_constant(left) or _is_float_constant(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.diagnostic(
                        ctx, node,
                        f"exact float comparison ('{symbol}' with a float "
                        "operand); use a tolerance (math.isclose / "
                        "abs(a-b) <= tol) or an inequality guard",
                    )


#: Legacy numpy global-state RNG entry points. Calls through
#: ``np.random.<name>`` share one hidden global stream: any library call
#: that also touches it silently perturbs every simulation after it.
_LEGACY_NP_RANDOM: Set[str] = {
    "seed", "get_state", "set_state", "rand", "randn", "randint",
    "random", "random_sample", "ranf", "sample", "random_integers",
    "choice", "shuffle", "permutation", "bytes",
    "normal", "standard_normal", "uniform", "exponential", "poisson",
    "binomial", "gamma", "beta", "lognormal", "weibull", "pareto",
    "geometric", "triangular", "laplace", "chisquare", "dirichlet",
    "multinomial", "multivariate_normal", "RandomState",
}

#: The file allowed to own RNG plumbing.
_RNG_HOME_SUFFIX = "utils/rng.py"


def _attribute_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ['a', 'b', 'c']; None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


@register
class UnseededRngRule(Rule):
    """RP002 — unseeded or legacy-global randomness outside utils/rng.py."""

    code = "RP002"
    name = "unseeded-rng"
    rationale = (
        "Monte-Carlo and DES results must be reproducible given a seed "
        "(RandomStreams derives named child generators from one root). "
        "Legacy np.random.* globals share hidden state across the whole "
        "process, random (stdlib) adds a second seeding regime, and "
        "default_rng() with no seed gives every run and every pool "
        "worker a different stream. Thread a Generator from "
        "repro.utils.rng instead."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.path.endswith(_RNG_HOME_SUFFIX):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.diagnostic(
                            ctx, node,
                            "stdlib 'random' import; use numpy Generators "
                            "from repro.utils.rng so all streams share one "
                            "seeding scheme",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield self.diagnostic(
                        ctx, node,
                        "stdlib 'random' import; use numpy Generators from "
                        "repro.utils.rng so all streams share one seeding "
                        "scheme",
                    )
            elif isinstance(node, ast.Call):
                chain = _attribute_chain(node.func)
                if chain is None:
                    continue
                # np.random.<legacy>(...) / numpy.random.<legacy>(...)
                if (
                    len(chain) >= 3
                    and chain[-2] == "random"
                    and chain[-1] in _LEGACY_NP_RANDOM
                ):
                    yield self.diagnostic(
                        ctx, node,
                        f"legacy global-state RNG 'np.random.{chain[-1]}'; "
                        "derive a Generator via repro.utils.rng "
                        "(RandomStreams / as_generator)",
                    )
                # default_rng() with no arguments = OS-entropy seed.
                elif chain[-1] == "default_rng" and not node.args and not node.keywords:
                    yield self.diagnostic(
                        ctx, node,
                        "default_rng() without a seed is a fresh "
                        "OS-entropy stream on every call; pass a seed or "
                        "a SeedSequence from repro.utils.rng",
                    )


#: Methods where mutating a frozen instance is legitimate: dataclasses'
#: own canonicalization hook, and pickle's state-restore protocol.
_FROZEN_MUTATION_OK = {"__post_init__", "__setstate__", "__new__"}


@register
class FrozenMutationRule(Rule):
    """RP003 — ``object.__setattr__`` outside ``__post_init__``."""

    code = "RP003"
    name = "frozen-mutation"
    rationale = (
        "Frozen dataclasses (OptimizerConfig, SlotTrace, DispatcherSpec) "
        "are shared across slots and pickled into pool workers on the "
        "promise they never change. object.__setattr__ outside "
        "__post_init__ breaks that promise invisibly: caches keyed on "
        "config identity go stale and telemetry records mutate after "
        "being written. Build a new instance (dataclasses.replace) "
        "instead."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        yield from self._walk(ctx, ctx.tree, enclosing=None)

    def _walk(
        self, ctx: FileContext, node: ast.AST, enclosing: Optional[str]
    ) -> Iterator[Diagnostic]:
        for child in ast.iter_child_nodes(node):
            scope = enclosing
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope = child.name
            elif isinstance(child, ast.Call):
                chain = _attribute_chain(child.func)
                if (
                    chain == ["object", "__setattr__"]
                    and enclosing not in _FROZEN_MUTATION_OK
                ):
                    where = (
                        f"in {enclosing!r}" if enclosing else "at module scope"
                    )
                    yield self.diagnostic(
                        ctx, child,
                        f"object.__setattr__ {where} mutates a frozen "
                        "instance; only __post_init__/__setstate__ may do "
                        "this — use dataclasses.replace to derive a new "
                        "instance",
                    )
            yield from self._walk(ctx, child, scope)
