"""Rule registry: every lint rule registers itself under an ``RP0xx`` code.

A rule is a class with a unique ``code``, a short ``name``, a
``rationale`` tying it to the numerics it protects, and a ``check``
method that walks one parsed file and yields
:class:`~repro.analysis.diagnostics.Diagnostic` findings.  Rules are
stateless across files; per-file state lives in the visitor instances
they create inside ``check``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Type

from repro.analysis.diagnostics import Diagnostic

__all__ = ["FileContext", "Rule", "register", "all_rules", "get_rule"]

_CODE_RE = re.compile(r"^RP\d{3}$")


@dataclass
class FileContext:
    """Everything a rule may need about the file under analysis.

    ``path`` is normalized to forward slashes so path-scoped rules
    (solver modules, the RNG helper exemption) behave identically on
    every platform.
    """

    path: str
    source: str
    tree: ast.AST
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.path = self.path.replace("\\", "/")
        if not self.lines:
            self.lines = self.source.splitlines()

    def in_package(self, *parts: str) -> bool:
        """True when the file lives under any ``repro/<part>/`` tree."""
        return any(f"/{part}/" in f"/{self.path}" for part in parts)


class Rule:
    """Base class for lint rules; subclasses override the metadata + check.

    Attributes
    ----------
    code:
        Stable ``RP0xx`` identifier used in reports, suppressions, and
        baselines.
    name:
        Short kebab-case slug for ``repro lint --list-rules``.
    rationale:
        One paragraph connecting the bug class to the paper's numerics;
        surfaced in the rule catalog (docs/DEVELOPMENT.md).
    """

    code: str = ""
    name: str = ""
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Yield findings for one parsed file."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for typing

    def diagnostic(self, ctx: FileContext, node: ast.AST, message: str) -> Diagnostic:
        """Build a finding anchored at ``node``."""
        return Diagnostic(
            path=ctx.path,
            line=int(getattr(node, "lineno", 1)),
            col=int(getattr(node, "col_offset", 0)),
            code=self.code,
            message=message,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one rule instance to the global registry."""
    if not _CODE_RE.match(rule_cls.code or ""):
        raise ValueError(
            f"rule {rule_cls.__name__} needs a code matching RPxxx, "
            f"got {rule_cls.code!r}"
        )
    if rule_cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    if not rule_cls.name:
        raise ValueError(f"rule {rule_cls.code} needs a name")
    _REGISTRY[rule_cls.code] = rule_cls()
    return rule_cls


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    """Look up one rule by its ``RP0xx`` code."""
    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(
            f"unknown rule code {code!r}; known: {sorted(_REGISTRY)}"
        ) from None
