"""Findings baselines: freeze pre-existing debt without blocking CI.

A baseline file is a JSON snapshot of known findings.  ``repro lint
--baseline FILE`` filters findings that match a baseline entry, so a
deliberately-unfixed legacy finding does not fail the gate while any
*new* finding still does.  Matching is by fingerprint ``(path, code,
line)`` as a multiset: each baseline entry absorbs at most one live
finding, so a second violation appearing on an already-baselined line's
file still fails.

Baselines are regenerated with ``repro lint --write-baseline`` after a
deliberate decision to defer; they are a ratchet, not a dumping ground
— the catalog in docs/DEVELOPMENT.md asks for a tracking note per
entry.

The multiset engine itself lives in :mod:`repro.analysis.report`
(shared with ``repro arch``); this module binds it to the reprolint
fingerprint and file format.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.report import (
    FindingsBaseline as Baseline,
)
from repro.analysis.report import (
    apply_findings_baseline,
    read_findings_baseline,
    write_findings_baseline,
)

__all__ = ["Baseline", "read_baseline", "write_baseline", "apply_baseline"]

Fingerprint = Tuple[str, str, int]


def _sort_key(diagnostic: Diagnostic) -> Tuple:
    return (*diagnostic.fingerprint, diagnostic.col, diagnostic.message)


def _fingerprint_of(record: Dict) -> Fingerprint:
    return (
        str(record["path"]),
        str(record["code"]),
        int(record["line"]),
    )


def write_baseline(findings: Iterable[Diagnostic], path: str) -> int:
    """Write ``findings`` as a baseline file; returns the entry count.

    The full diagnostic (including message) is stored for human review,
    but only the fingerprint participates in matching — messages may be
    reworded without invalidating a baseline.

    Serialization order is the multiset order — fingerprint first, then
    column and message as tie-breakers — so regenerating a baseline from
    the same findings is byte-identical regardless of how the caller
    ordered them (``repro lint --write-baseline`` twice on an unchanged
    tree produces the same file).
    """
    return write_findings_baseline(findings, path, sort_key=_sort_key)


def read_baseline(path: str) -> Baseline:
    """Load a baseline file written by :func:`write_baseline`."""
    return read_findings_baseline(
        path, fingerprint_of=_fingerprint_of, tool="reprolint"
    )


def apply_baseline(
    findings: Iterable[Diagnostic], baseline: Baseline
) -> Tuple[List[Diagnostic], int]:
    """Split findings into (new, baselined-count) against ``baseline``."""
    # Same order as sorted(findings) under Diagnostic's order=True
    # (field order: path, line, col, code, message).
    return apply_findings_baseline(
        list(findings), baseline,
        sort_key=lambda d: (d.path, d.line, d.col, d.code, d.message),
    )
