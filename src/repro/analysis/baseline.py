"""Findings baselines: freeze pre-existing debt without blocking CI.

A baseline file is a JSON snapshot of known findings.  ``repro lint
--baseline FILE`` filters findings that match a baseline entry, so a
deliberately-unfixed legacy finding does not fail the gate while any
*new* finding still does.  Matching is by fingerprint ``(path, code,
line)`` as a multiset: each baseline entry absorbs at most one live
finding, so a second violation appearing on an already-baselined line's
file still fails.

Baselines are regenerated with ``repro lint --write-baseline`` after a
deliberate decision to defer; they are a ratchet, not a dumping ground
— the catalog in docs/DEVELOPMENT.md asks for a tracking note per
entry.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

from repro.analysis.diagnostics import Diagnostic

__all__ = ["Baseline", "read_baseline", "write_baseline", "apply_baseline"]

_VERSION = 1

Fingerprint = Tuple[str, str, int]


@dataclass
class Baseline:
    """A multiset of accepted finding fingerprints."""

    entries: Counter = field(default_factory=Counter)

    def __len__(self) -> int:
        return int(sum(self.entries.values()))


def write_baseline(findings: Iterable[Diagnostic], path: str) -> int:
    """Write ``findings`` as a baseline file; returns the entry count.

    The full diagnostic (including message) is stored for human review,
    but only the fingerprint participates in matching — messages may be
    reworded without invalidating a baseline.

    Serialization order is the multiset order — fingerprint first, then
    column and message as tie-breakers — so regenerating a baseline from
    the same findings is byte-identical regardless of how the caller
    ordered them (``repro lint --write-baseline`` twice on an unchanged
    tree produces the same file).
    """
    records = [
        d.to_dict()
        for d in sorted(findings, key=lambda d: (*d.fingerprint, d.col, d.message))
    ]
    payload = {"version": _VERSION, "findings": records}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return len(records)


def read_baseline(path: str) -> Baseline:
    """Load a baseline file written by :func:`write_baseline`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError(f"{path}: not a reprolint baseline file")
    version = payload.get("version")
    if version != _VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {version!r} "
            f"(expected {_VERSION})"
        )
    entries: Counter = Counter()
    for record in payload["findings"]:
        try:
            fingerprint: Fingerprint = (
                str(record["path"]),
                str(record["code"]),
                int(record["line"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"{path}: malformed baseline entry {record!r}") from exc
        entries[fingerprint] += 1
    return Baseline(entries=entries)


def apply_baseline(
    findings: Iterable[Diagnostic], baseline: Baseline
) -> Tuple[List[Diagnostic], int]:
    """Split findings into (new, baselined-count) against ``baseline``."""
    budget = Counter(baseline.entries)
    fresh: List[Diagnostic] = []
    absorbed = 0
    for diagnostic in sorted(findings):
        if budget[diagnostic.fingerprint] > 0:
            budget[diagnostic.fingerprint] -= 1
            absorbed += 1
        else:
            fresh.append(diagnostic)
    return fresh, absorbed
