"""repro — Profit Aware Load Balancing for Distributed Cloud Data Centers.

A from-scratch reproduction of Liu, Ren, Quan, Zhao & Ren (IPDPS
Workshops 2013): an energy-efficient, profit- and cost-aware request
dispatching and resource allocation system for geographically
distributed cloud data centers operating in multi-electricity markets.

Quickstart
----------
>>> import numpy as np
>>> from repro import (ConstantTUF, RequestClass, DataCenter, FrontEnd,
...                    CloudTopology, ProfitAwareOptimizer, evaluate_plan)
>>> rc = RequestClass("search", ConstantTUF(value=10.0, deadline=0.02),
...                   transfer_unit_cost=0.003)
>>> dc = DataCenter("dc1", num_servers=4,
...                 service_rates=np.array([150.0]),
...                 energy_per_request=np.array([3e-4]))
>>> topo = CloudTopology(request_classes=(rc,), frontends=(FrontEnd("fe1"),),
...                      datacenters=(dc,), distances=np.array([[500.0]]))
>>> plan = ProfitAwareOptimizer(topo).plan_slot(
...     arrivals=np.array([[100.0]]), prices=np.array([0.08]))
>>> outcome = evaluate_plan(plan, np.array([[100.0]]), np.array([0.08]),
...                         slot_duration=3600.0)
>>> outcome.net_profit > 0
True
"""

from repro.core import (
    BalancedDispatcher,
    ConstantTUF,
    Dispatcher,
    DispatchPlan,
    EvenSplitDispatcher,
    MonotonicTUF,
    NetProfitBreakdown,
    OptimizerConfig,
    ProfitAwareOptimizer,
    RequestClass,
    SlottedController,
    StepDownwardTUF,
    TimeUtilityFunction,
    UtilityLevel,
    consolidate_plan,
    evaluate_plan,
    powered_on_servers,
)
from repro.cloud import (
    CloudTopology,
    DataCenter,
    EnergyModel,
    FrontEnd,
    LocationSpec,
    Server,
    ServerGroup,
    ServiceLevelAgreement,
    TransferModel,
    build_heterogeneous_topology,
    random_topology,
)
from repro.market import (
    GreenEnergyProfile,
    MultiElectricityMarket,
    PriceTrace,
    apply_green_energy,
    atlanta_profile,
    brown_energy_fraction,
    houston_profile,
    mountain_view_profile,
    paper_locations,
    solar_profile,
    synthetic_profile,
    wind_profile,
)
from repro.workload import (
    EWMAPredictor,
    KalmanFilterPredictor,
    WorkloadTrace,
    google_like_trace,
    worldcup_like_trace,
)
from repro.sim import (
    ExperimentConfig,
    MarkovServerAvailability,
    ProfitLedger,
    SimulationResult,
    compare_dispatchers,
    comparison_report,
    run_simulation,
    run_with_failures,
)
from repro.des import ClusterSimulation, SimulatedSlotOutcome, simulate_plan
from repro.obs import (
    InMemoryCollector,
    NullCollector,
    SlotTrace,
    read_traces,
    write_traces,
)
from repro.core.sensitivity import SlotSensitivity, slot_sensitivity
from repro.queueing import JacksonNetwork
from repro.sim import ProfitDistribution, monte_carlo_profit
from repro.utils.serialization import load_json, save_json

__version__ = "1.0.0"

__all__ = [
    # TUFs & task model
    "TimeUtilityFunction", "UtilityLevel", "ConstantTUF", "StepDownwardTUF",
    "MonotonicTUF", "RequestClass",
    # cloud substrate
    "Server", "DataCenter", "FrontEnd", "CloudTopology", "random_topology",
    "EnergyModel", "TransferModel", "ServiceLevelAgreement",
    # market
    "PriceTrace", "MultiElectricityMarket", "houston_profile",
    "mountain_view_profile", "atlanta_profile", "synthetic_profile",
    "paper_locations",
    # workload
    "WorkloadTrace", "worldcup_like_trace", "google_like_trace",
    "EWMAPredictor", "KalmanFilterPredictor",
    # core algorithm
    "DispatchPlan", "NetProfitBreakdown", "evaluate_plan",
    "OptimizerConfig", "ProfitAwareOptimizer",
    "BalancedDispatcher", "EvenSplitDispatcher", "Dispatcher",
    "SlottedController", "powered_on_servers", "consolidate_plan",
    # observability
    "InMemoryCollector", "NullCollector", "SlotTrace",
    "read_traces", "write_traces",
    # simulation harness
    "ProfitLedger", "SimulationResult", "run_simulation",
    "compare_dispatchers", "ExperimentConfig", "comparison_report",
    # extensions
    "GreenEnergyProfile", "solar_profile", "wind_profile",
    "apply_green_energy", "brown_energy_fraction",
    "MarkovServerAvailability", "run_with_failures",
    "ServerGroup", "LocationSpec", "build_heterogeneous_topology",
    "ClusterSimulation", "SimulatedSlotOutcome", "simulate_plan",
    "SlotSensitivity", "slot_sensitivity", "JacksonNetwork",
    "ProfitDistribution", "monte_carlo_profit",
    "save_json", "load_json",
    "__version__",
]
