"""§VII Google-trace study with two-level TUFs (Tables VIII-XI, Figs. 8-11).

Setup per the paper: a 7-hour Google-cluster-like task trace at a single
front-end, duplicated and time-shifted to fabricate two request types;
two data centers of six servers each priced at Houston and Mountain View
electricity in the 14:00-19:00 window ("representative in terms of large
price vibration"); two-level step-downward TUFs (Tables IX-X); distances
of 1000 and 2000 miles with transfer costs 0.003/0.005 $/mile.

The default workload scale is tuned so the paper's regime holds:
Optimized completes everything while Balanced drops a few percent of
each type (paper: 99.45% and 90.19%), and Optimized spends slightly more
total cost (paper: +7.74%) yet nets more profit.
"""

from __future__ import annotations

import numpy as np

from repro.cloud.datacenter import DataCenter
from repro.cloud.frontend import FrontEnd
from repro.cloud.topology import CloudTopology
from repro.core.request import RequestClass
from repro.core.tuf import StepDownwardTUF
from repro.market.market import MultiElectricityMarket
from repro.market.prices import houston_profile, mountain_view_profile
from repro.sim.experiment import ExperimentConfig
from repro.workload.googletrace import google_like_trace

__all__ = ["section7_topology", "section7_experiment", "PRICE_WINDOW"]

#: Table VIII — processing capacities (requests/hour at full capacity).
SERVICE_RATES = {
    "datacenter1": np.array([30_000.0, 26_000.0]),
    "datacenter2": np.array([28_000.0, 32_000.0]),
}

#: Table XI — per-request processing energy (kWh).  The scan strips the
#: digits; following the §V convention (whole-kWh-scale attributions) we
#: size these so electricity-price differences matter relative to the
#: (tiny) transfer costs.
ENERGY_PER_REQUEST = {
    "datacenter1": np.array([0.25, 0.35]),
    "datacenter2": np.array([0.30, 0.30]),
}

#: Table X — two-level TUF values ($ per request).
TUF_VALUES = {
    "request1": np.array([10.0, 5.0]),
    "request2": np.array([20.0, 10.0]),
}

#: Table IX — sub-deadlines (hours).
TUF_DEADLINES_HOURS = {
    "request1": np.array([2.0e-4, 6.0e-4]),
    "request2": np.array([2.5e-4, 8.0e-4]),
}

#: Paper text gives distances of 1000 and 2000 miles; we assign the
#: *shorter* leg to datacenter2 (Mountain View), which is also the
#: cheaper market for most of the 14:00-19:00 window — the regime the
#: paper's reported numbers imply (Balanced's price-greedy routing is
#: then usually also transfer-optimal, so Optimized's extra total cost
#: comes from completing more requests, as in §VII-B2).  Transfer unit
#: costs are stripped in the scan; they are sized comparable to the
#: energy dollars so both terms influence routing.
DISTANCES = np.array([[2000.0, 1000.0]])
TRANSFER_COSTS = np.array([2.0e-5, 3.0e-5])

#: The 14:00-19:00 price window (slot indices into the daily profiles);
#: seven hourly slots to match the 7-hour Google trace.
PRICE_WINDOW = (13, 20)

SERVERS_PER_DC = 6
SLOT_DURATION = 1.0  # rates per hour, hourly slots
DEFAULT_MEAN_RATE = 75_000.0  # requests/hour per type (before AR(1) noise)


def section7_topology() -> CloudTopology:
    """Build the §VII topology."""
    classes = tuple(
        RequestClass(
            name=name,
            tuf=StepDownwardTUF(
                values=TUF_VALUES[name], deadlines=TUF_DEADLINES_HOURS[name]
            ),
            transfer_unit_cost=float(TRANSFER_COSTS[k]),
        )
        for k, name in enumerate(("request1", "request2"))
    )
    datacenters = tuple(
        DataCenter(
            name=name,
            num_servers=SERVERS_PER_DC,
            service_rates=SERVICE_RATES[name],
            energy_per_request=ENERGY_PER_REQUEST[name],
        )
        for name in ("datacenter1", "datacenter2")
    )
    return CloudTopology(
        classes, (FrontEnd("frontend1"),), datacenters, DISTANCES
    )


def section7_experiment(
    seed: int = 2010,
    load_scale: float = 1.0,
    capacity_scale: float = 1.0,
    mean_rate: float = DEFAULT_MEAN_RATE,
) -> ExperimentConfig:
    """7-hour §VII experiment with two-level TUFs.

    Parameters
    ----------
    load_scale:
        Multiplies the workload; the paper's "relatively high workload"
        study (Fig. 10b) raises it until neither approach completes all
        requests.
    capacity_scale:
        Multiplies data-center service rates; the paper's "relatively low
        workload" study (Fig. 10a) raises capacity until both approaches
        complete everything.
    mean_rate:
        Average per-type arrival rate (requests/hour) of the synthesized
        Google-like trace.
    """
    topo = section7_topology()
    # Comparisons against the exactly-representable default sentinel 1.0
    # (skip the identity rescale), not a numeric boundary.
    if capacity_scale != 1.0:  # reprolint: disable=RP001
        topo = topo.scaled_capacity(capacity_scale)
    trace = google_like_trace(
        num_slots=7, mean_rate=mean_rate, seed=seed, slot_duration=SLOT_DURATION
    ).select_classes([0, 1])
    if load_scale != 1.0:  # reprolint: disable=RP001
        trace = trace.scaled(load_scale)
    market = MultiElectricityMarket(
        [houston_profile(), mountain_view_profile()]
    ).window(*PRICE_WINDOW)
    return ExperimentConfig(
        name="section7-google",
        topology=topo,
        trace=trace,
        market=market,
        description=(
            "Google-trace study with two-level TUFs (paper §VII): one "
            "front-end, two data centers at Houston/Mountain View prices "
            "in the volatile 14:00-19:00 window."
        ),
    )
