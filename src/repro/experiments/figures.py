"""Per-figure data-series builders.

Each ``figN_*`` function regenerates the data behind one of the paper's
figures; the benchmark harness prints these series and EXPERIMENTS.md
records them against the paper's reported shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.bench.runner import summarize_times, time_callable
from repro.core.optimizer import OptimizerConfig, ProfitAwareOptimizer
from repro.experiments.section5 import section5_experiment
from repro.experiments.section6 import section6_experiment
from repro.experiments.section7 import section7_experiment
from repro.market.prices import paper_locations
from repro.sim.metrics import dc_dispatch_series, net_profit_series
from repro.sim.slotted import SimulationResult

__all__ = [
    "fig1_price_series",
    "fig4_basic_profit",
    "fig5_trace_series",
    "fig6_profit_series",
    "fig7_request1_allocation",
    "fig8_profit_series",
    "fig9_allocations",
    "fig10_workload_effect",
    "fig11_computation_time",
]


def fig1_price_series() -> Dict[str, np.ndarray]:
    """Fig. 1: one day of hourly electricity prices at three locations."""
    return {name: trace.prices for name, trace in paper_locations().items()}


def fig4_basic_profit(regime: str) -> Dict[str, Dict[str, float]]:
    """Fig. 4(a)/(b): §V one-slot net profit, Optimized vs Balanced."""
    exp = section5_experiment(regime)
    results = exp.run_comparison()
    out: Dict[str, Dict[str, float]] = {}
    for name, result in results.items():
        out[name] = {
            "net_profit": result.total_net_profit,
            "requests_processed": result.requests_processed,
            "total_cost": result.total_cost,
        }
    return out


def fig5_trace_series(seed: int = 1998) -> Dict[str, np.ndarray]:
    """Fig. 5: per-front-end daily request curves (class 0 shown)."""
    exp = section6_experiment(seed=seed)
    out: Dict[str, np.ndarray] = {}
    for s, fe in enumerate(exp.topology.frontends):
        out[fe.name] = exp.trace.class_series(0, s)
    return out


def _section6_results(seed: int = 1998) -> Dict[str, SimulationResult]:
    exp = section6_experiment(seed=seed)
    return exp.run_comparison()


def fig6_profit_series(seed: int = 1998) -> Dict[str, np.ndarray]:
    """Fig. 6: §VI hourly net profit, Optimized vs Balanced."""
    results = _section6_results(seed)
    return {
        name: net_profit_series(result.records)
        for name, result in results.items()
    }


def fig7_request1_allocation(seed: int = 1998) -> Dict[str, Dict[str, np.ndarray]]:
    """Fig. 7: §VI hourly Request1 load per data center, per approach."""
    results = _section6_results(seed)
    exp = section6_experiment(seed=seed)
    out: Dict[str, Dict[str, np.ndarray]] = {}
    for name, result in results.items():
        per_dc: Dict[str, np.ndarray] = {}
        for l, dc in enumerate(exp.topology.datacenters):
            per_dc[dc.name] = dc_dispatch_series(result.records, k=0, l=l)
        out[name] = per_dc
    return out


def fig8_profit_series(seed: int = 2010) -> Dict[str, np.ndarray]:
    """Fig. 8: §VII hourly net profit with two-level TUFs."""
    exp = section7_experiment(seed=seed)
    results = exp.run_comparison()
    return {
        name: net_profit_series(result.records)
        for name, result in results.items()
    }


@dataclass(frozen=True)
class AllocationStudy:
    """Fig. 9 bundle: allocations, completions, and cost comparison."""

    allocations: Dict[str, np.ndarray] = field(repr=False)  # name -> (T,K,L)
    completion: Dict[str, np.ndarray] = field(repr=False)   # name -> (K,)
    total_cost: Dict[str, float] = field(default_factory=dict)
    net_profit: Dict[str, float] = field(default_factory=dict)

    @property
    def cost_ratio(self) -> float:
        """Optimized total cost / Balanced total cost (paper: ~1.077)."""
        return self.total_cost["optimized"] / self.total_cost["balanced"]


def fig9_allocations(seed: int = 2010) -> AllocationStudy:
    """Fig. 9 + §VII-B2 numbers: per-slot allocations and completions."""
    exp = section7_experiment(seed=seed)
    results = exp.run_comparison()
    allocations = {
        name: np.stack([r.outcome.dc_loads for r in result.records], axis=0)
        for name, result in results.items()
    }
    return AllocationStudy(
        allocations=allocations,
        completion={n: r.completion_fractions for n, r in results.items()},
        total_cost={n: r.total_cost for n, r in results.items()},
        net_profit={n: r.total_net_profit for n, r in results.items()},
    )


def fig10_workload_effect(regime: str, seed: int = 2010) -> Dict[str, np.ndarray]:
    """Fig. 10: §VII profit series under relatively low / high workload.

    ``"low"`` doubles data-center capacity (both approaches complete all
    requests); ``"high"`` doubles the workload (neither completes all).
    """
    if regime == "low":
        exp = section7_experiment(seed=seed, capacity_scale=2.0)
    elif regime == "high":
        exp = section7_experiment(seed=seed, load_scale=2.0)
    else:
        raise ValueError(f"regime must be 'low' or 'high', got {regime!r}")
    results = exp.run_comparison()
    return {
        name: net_profit_series(result.records)
        for name, result in results.items()
    }


def fig11_computation_time(
    server_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    repeats: int = 3,
    milp_method: str = "highs",
    seed: int = 2010,
) -> Dict[int, float]:
    """Fig. 11: slot-solve wall time vs servers per data center.

    Uses the §VII two-level setup with the *per-server* formulation (the
    paper's variable layout), whose MILP size grows with the server
    count.  Returns **median** wall seconds per server count, measured
    through the shared :mod:`repro.bench.runner` so this sweep, the
    ``repro bench`` scenarios, and ``benchmarks/bench_warmstart.py``
    aggregate timings identically (the paper averages five runs;
    ``repeats`` defaults to three for bench speed).
    """
    out: Dict[int, float] = {}
    for m in server_counts:
        exp = section7_experiment(seed=seed)
        topo = exp.topology.with_servers_per_datacenter(int(m))
        optimizer = ProfitAwareOptimizer(topo, config=OptimizerConfig(
            formulation="per_server", milp_method=milp_method,
        ))
        arrivals = exp.trace.arrivals_at(0)
        prices = exp.market.prices_at(0)

        def solve_once() -> None:
            optimizer.plan_slot(arrivals, prices, slot_duration=1.0)

        timing, _ = time_callable(solve_once, repeats=repeats, warmup=0)
        out[int(m)] = summarize_times(timing.samples_s)["median_s"]
    return out
