"""§V "Study of basic characteristics" (Tables II-III, Fig. 4).

Setup per the paper: four front-end servers, three request types with
constant-value TUFs, three heterogeneous data centers of six homogeneous
servers each, local electricity prices per data center, transfer cost
excluded.  Two arrival-rate sets exercise a light and a heavy workload;
under the heavy set neither approach can process everything and the
optimizer's ~16% extra completed requests drive its profit advantage.

Table III's service rates (requests/second at full capacity) and
per-request energies (kWh) follow the readable entries of the scan;
arrival rates (Table II) and TUF values are synthesized at the implied
magnitudes (the scan strips the digits) and noted in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.cloud.datacenter import DataCenter
from repro.cloud.frontend import FrontEnd
from repro.cloud.topology import CloudTopology
from repro.core.request import RequestClass
from repro.core.tuf import ConstantTUF
from repro.market.market import MultiElectricityMarket
from repro.market.prices import PriceTrace
from repro.sim.experiment import ExperimentConfig
from repro.workload.traces import WorkloadTrace

__all__ = [
    "section5_topology",
    "section5_arrivals",
    "section5_prices",
    "section5_experiment",
]

#: Table III — per-request service rates (requests/second, full capacity).
SERVICE_RATES = {
    "datacenter1": np.array([150.0, 130.0, 140.0]),
    "datacenter2": np.array([140.0, 120.0, 150.0]),
    "datacenter3": np.array([130.0, 130.0, 160.0]),
}

#: Table III — per-request energy attribution (kWh).
ENERGY_PER_REQUEST = {
    "datacenter1": np.array([2.0, 4.0, 6.0]),
    "datacenter2": np.array([1.0, 3.0, 5.0]),
    "datacenter3": np.array([1.0, 3.0, 6.0]),
}

#: Table III — local electricity prices ($/kWh) during the study slot.
#: Chosen so the *price* order (DC1 cheapest) differs from the *cost*
#: order per request type (energy attributions differ per DC), which is
#: precisely the trap the price-greedy Balanced baseline falls into.
PRICES = np.array([0.13, 0.055, 0.05])

#: Constant TUF values ($ per request) and deadlines (seconds).  Values
#: are sized so energy dollars are a meaningful fraction of utility
#: (Table III's 1-6 kWh per request at $0.04-0.12/kWh).
TUF_VALUES = np.array([1.0, 2.0, 3.0])
TUF_DEADLINES = np.array([0.10, 0.12, 0.15])

#: Table II(a) — low arrival rates (requests/second) [frontend, type].
LOW_ARRIVALS = np.array([
    [50.0, 40.0, 30.0],
    [40.0, 50.0, 40.0],
    [60.0, 30.0, 50.0],
    [30.0, 40.0, 40.0],
])

#: Table II(b) — high arrival rates (requests/second) [frontend, type].
#: Deliberately skewed toward type 1: the static 1/K CPU split cannot
#: follow the mix, which is what caps Balanced's throughput.
HIGH_ARRIVALS = np.array([
    [310.0, 145.0, 120.0],
    [275.0, 175.0, 145.0],
    [300.0, 120.0, 165.0],
    [290.0, 155.0, 155.0],
])

SERVERS_PER_DC = 6
SLOT_DURATION = 3600.0  # one-hour slot, rates are per second


def section5_topology() -> CloudTopology:
    """Build the §V topology (transfer cost zero, per the paper)."""
    classes = tuple(
        RequestClass(
            name=f"request{k + 1}",
            tuf=ConstantTUF(value=float(TUF_VALUES[k]),
                            deadline=float(TUF_DEADLINES[k])),
            transfer_unit_cost=0.0,  # "Transferring cost is not considered"
        )
        for k in range(3)
    )
    datacenters = tuple(
        DataCenter(
            name=name,
            num_servers=SERVERS_PER_DC,
            service_rates=SERVICE_RATES[name],
            energy_per_request=ENERGY_PER_REQUEST[name],
        )
        for name in ("datacenter1", "datacenter2", "datacenter3")
    )
    frontends = tuple(FrontEnd(f"frontend{s + 1}") for s in range(4))
    distances = np.zeros((4, 3))  # irrelevant: transfer cost is zero
    return CloudTopology(classes, frontends, datacenters, distances)


def section5_arrivals(regime: str) -> np.ndarray:
    """``(K, S)`` arrival matrix for ``regime`` in {"low", "high"}."""
    if regime == "low":
        table = LOW_ARRIVALS
    elif regime == "high":
        table = HIGH_ARRIVALS
    else:
        raise ValueError(f"regime must be 'low' or 'high', got {regime!r}")
    return table.T.copy()  # (K, S)


def section5_prices() -> np.ndarray:
    """``(L,)`` study-slot electricity prices."""
    return PRICES.copy()


def section5_experiment(regime: str = "low") -> ExperimentConfig:
    """One-slot §V experiment (constant prices, fixed arrivals)."""
    topo = section5_topology()
    arrivals = section5_arrivals(regime)  # (K, S)
    trace = WorkloadTrace(arrivals[:, :, None], slot_duration=SLOT_DURATION)
    market = MultiElectricityMarket([
        PriceTrace(dc.name, np.array([PRICES[l]]))
        for l, dc in enumerate(topo.datacenters)
    ])
    return ExperimentConfig(
        name=f"section5-{regime}",
        topology=topo,
        trace=trace,
        market=market,
        description=(
            "Basic characteristics study (paper §V): synthetic fixed "
            f"arrival rates, {regime} workload, constant TUFs, no transfer cost."
        ),
    )
