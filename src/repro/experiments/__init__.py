"""Paper experiment configurations and figure-series builders.

One module per evaluation section:

* :mod:`repro.experiments.section5` — §V basic characteristics
  (Tables II-III, Fig. 4): synthetic fixed arrival rates, constant TUFs;
* :mod:`repro.experiments.section6` — §VI World-Cup day (Tables IV-VII,
  Figs. 5-7): one-level TUFs, four front-ends, three data centers;
* :mod:`repro.experiments.section7` — §VII Google trace (Tables VIII-XI,
  Figs. 8-11): two-level TUFs, one front-end, two data centers;
* :mod:`repro.experiments.figures` — per-figure data-series builders
  shared by the benchmark harness and EXPERIMENTS.md.

Numeric table entries that are unreadable in the available paper scan
are synthesized at the magnitudes the text implies; every such choice is
kept here (never hard-coded in benches) and called out in DESIGN.md.
"""

from repro.experiments.section5 import section5_experiment, section5_arrivals
from repro.experiments.section6 import section6_experiment
from repro.experiments.section7 import section7_experiment

__all__ = [
    "section5_experiment",
    "section5_arrivals",
    "section6_experiment",
    "section7_experiment",
]
