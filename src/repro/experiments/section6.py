"""§VI World-Cup study with one-level TUFs (Tables IV-VII, Figs. 5-7).

Setup per the paper: a 1998-World-Cup-like day of requests at four
front-end servers (three request types fabricated by time-shifting each
front-end's series), three data centers of six servers each at Houston /
Mountain View / Atlanta electricity prices, one-level (constant) TUFs
with values 10/20/30 $ (Table VII), per-request energies around Google's
0.0003 kWh figure (Table VI), and per-type transfer costs of
0.003/0.005/0.007 $/mile (paper text).

Structural facts the paper states about Tables IV-V (and which Fig. 7
depends on) are honoured: Datacenter1 and Datacenter2 have the same
Request1 capacity while Datacenter3's is highest, and Datacenter2 is the
farthest from all four front-ends — which is why Optimized starves it.
"""

from __future__ import annotations

import numpy as np

from repro.cloud.datacenter import DataCenter
from repro.cloud.frontend import FrontEnd
from repro.cloud.topology import CloudTopology
from repro.core.request import RequestClass
from repro.core.tuf import ConstantTUF
from repro.market.market import MultiElectricityMarket
from repro.market.prices import (
    atlanta_profile,
    houston_profile,
    mountain_view_profile,
)
from repro.sim.experiment import ExperimentConfig
from repro.workload.worldcup import worldcup_like_trace

__all__ = ["section6_topology", "section6_experiment"]

#: Table IV — processing capacities (requests/hour at full capacity).
#: Request1: DC1 == DC2, DC3 highest (paper §VI-B2).
SERVICE_RATES = {
    "datacenter1": np.array([40_000.0, 34_000.0, 30_000.0]),
    "datacenter2": np.array([40_000.0, 30_000.0, 36_000.0]),
    "datacenter3": np.array([52_000.0, 38_000.0, 44_000.0]),
}

#: Table V — front-end-to-data-center distances (miles).
#: Datacenter2 is farthest from every front-end (paper §VI-B2).
DISTANCES = np.array([
    [400.0, 2400.0, 800.0],
    [600.0, 2600.0, 1000.0],
    [300.0, 2800.0, 700.0],
    [500.0, 2200.0, 900.0],
])

#: Table VI — per-request processing energy (kWh), around Google's 3e-4.
ENERGY_PER_REQUEST = {
    "datacenter1": np.array([2.0e-4, 3.0e-4, 4.5e-4]),
    "datacenter2": np.array([2.5e-4, 3.5e-4, 4.0e-4]),
    "datacenter3": np.array([2.2e-4, 3.5e-4, 4.2e-4]),
}

#: Table VII — one-level TUF values ($) and deadlines (hours).
TUF_VALUES = np.array([10.0, 20.0, 30.0])
TUF_DEADLINES_HOURS = np.array([2.0e-4, 2.5e-4, 3.0e-4])

#: Paper text — transfer costs ($ per mile per request).
TRANSFER_COSTS = np.array([0.003, 0.005, 0.007])

SERVERS_PER_DC = 6
SLOT_DURATION = 1.0  # rates are per hour; a slot is one hour


def section6_topology() -> CloudTopology:
    """Build the §VI topology."""
    classes = tuple(
        RequestClass(
            name=f"request{k + 1}",
            tuf=ConstantTUF(value=float(TUF_VALUES[k]),
                            deadline=float(TUF_DEADLINES_HOURS[k])),
            transfer_unit_cost=float(TRANSFER_COSTS[k]),
        )
        for k in range(3)
    )
    datacenters = tuple(
        DataCenter(
            name=name,
            num_servers=SERVERS_PER_DC,
            service_rates=SERVICE_RATES[name],
            energy_per_request=ENERGY_PER_REQUEST[name],
        )
        for name in ("datacenter1", "datacenter2", "datacenter3")
    )
    frontends = tuple(FrontEnd(f"frontend{s + 1}") for s in range(4))
    return CloudTopology(classes, frontends, datacenters, DISTANCES)


def section6_experiment(
    seed: int = 1998, load_scale: float = 1.0
) -> ExperimentConfig:
    """Full-day §VI experiment: World-Cup-like trace, real-price shapes."""
    topo = section6_topology()
    trace = worldcup_like_trace(num_classes=3, seed=seed,
                                slot_duration=SLOT_DURATION)
    # Comparison against the exactly-representable default sentinel 1.0
    # (skip the identity rescale), not a numeric boundary.
    if load_scale != 1.0:  # reprolint: disable=RP001
        trace = trace.scaled(load_scale)
    market = MultiElectricityMarket([
        houston_profile(), mountain_view_profile(), atlanta_profile()
    ])
    return ExperimentConfig(
        name="section6-worldcup",
        topology=topo,
        trace=trace,
        market=market,
        description=(
            "World-Cup day with one-level TUFs (paper §VI): 4 front-ends, "
            "3 request types, 3 data centers at Houston/Mountain View/"
            "Atlanta electricity prices."
        ),
    )
