"""Slotted multi-location electricity market view.

The optimizer runs once per time slot (paper §III) and consumes the
vector of current electricity prices across all data-center locations.
:class:`MultiElectricityMarket` bundles the per-location traces and
answers per-slot price queries.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from repro.market.prices import PriceTrace, price_matrix

__all__ = ["MultiElectricityMarket"]


class MultiElectricityMarket:
    """Per-slot electricity prices for ``L`` data-center locations.

    Parameters
    ----------
    traces:
        One :class:`PriceTrace` per data center, in data-center order
        (index ``l`` in the paper's notation).
    """

    def __init__(self, traces: Sequence[PriceTrace]) -> None:
        if not traces:
            raise ValueError("need at least one price trace")
        self._traces: List[PriceTrace] = list(traces)
        self._matrix = price_matrix(self._traces)

    @property
    def num_locations(self) -> int:
        """Number of locations ``L``."""
        return self._matrix.shape[0]

    @property
    def num_slots(self) -> int:
        """Number of slots in the underlying traces."""
        return self._matrix.shape[1]

    @property
    def traces(self) -> List[PriceTrace]:
        """The per-location price traces."""
        return list(self._traces)

    def prices_at(self, slot: int) -> np.ndarray:
        """Length-``L`` array of prices ($/kWh) during ``slot``."""
        return self._matrix[:, slot % self.num_slots].copy()

    def cheapest_location(self, slot: int) -> int:
        """Index of the location with the lowest price in ``slot``."""
        return int(np.argmin(self._matrix[:, slot % self.num_slots]))

    def price_order(self, slot: int) -> np.ndarray:
        """Location indices sorted by ascending price in ``slot``.

        This is the fill order of the paper's "Balanced" baseline: each
        front-end fills the cheapest data center first.
        """
        return np.argsort(self._matrix[:, slot % self.num_slots], kind="stable")

    def spread_at(self, slot: int) -> float:
        """Max-minus-min price across locations in ``slot``.

        The paper observes that the optimizer's advantage is "boosted" in
        slots with a large spread (§VII, Fig. 8).
        """
        col = self._matrix[:, slot % self.num_slots]
        return float(col.max() - col.min())

    def window(self, start: int, stop: int) -> "MultiElectricityMarket":
        """Market restricted to slots ``start..stop-1`` (wrapping)."""
        return MultiElectricityMarket([t.window(start, stop) for t in self._traces])

    def iter_slots(self) -> Iterator[int]:
        """Iterate over slot indices of the underlying traces."""
        return iter(range(self.num_slots))

    def as_matrix(self) -> np.ndarray:
        """Copy of the full ``(L, T)`` price matrix."""
        return self._matrix.copy()
