"""Multi-electricity-market substrate.

The paper (Fig. 1) drives its evaluation with real hourly electricity
prices collected at three data-center locations (Houston TX, Mountain
View CA, Atlanta GA).  This package provides:

* :class:`~repro.market.prices.PriceTrace` — an hourly price series for
  one location, constant within each time slot (paper §III);
* location profile builders reproducing the qualitative shape of the
  paper's Fig. 1, including the large 14:00-19:00 price vibration the
  paper exploits in §VII;
* :class:`~repro.market.market.MultiElectricityMarket` — the slotted
  multi-location view consumed by the optimizer.
"""

from repro.market.prices import (
    PriceTrace,
    atlanta_profile,
    houston_profile,
    mountain_view_profile,
    synthetic_profile,
    paper_locations,
)
from repro.market.market import MultiElectricityMarket
from repro.market.green import (
    GreenEnergyProfile,
    apply_green_energy,
    brown_energy_fraction,
    solar_profile,
    wind_profile,
)
from repro.market.spot import spike_overlay, spot_market

__all__ = [
    "PriceTrace",
    "MultiElectricityMarket",
    "houston_profile",
    "mountain_view_profile",
    "atlanta_profile",
    "synthetic_profile",
    "paper_locations",
    "GreenEnergyProfile",
    "solar_profile",
    "wind_profile",
    "apply_green_energy",
    "brown_energy_fraction",
    "spike_overlay",
    "spot_market",
]
