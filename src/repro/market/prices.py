"""Hourly electricity price traces for data-center locations.

The paper's Fig. 1 plots one day of real locational marginal prices at
Houston, Mountain View, and Atlanta.  The exact historical series is not
available offline, so we synthesize profiles that preserve the features
the algorithm exploits:

* prices are constant within a one-hour slot and vary hour to hour
  ("multi-electricity-market" deregulation, paper §III);
* each location peaks in the afternoon with a different amplitude and
  offset, so the *cheapest location changes during the day*;
* the 14:00-19:00 window exhibits the largest inter-location spread —
  the paper selects exactly this window for the §VII study because "the
  prices in that period are representative in terms of large price
  vibration".

Prices are expressed in dollars per kWh to match the paper's per-request
energy accounting (Eq. 2: ``P_k [kWh] * lambda * T * p [$/kWh]``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from repro.utils.validation import check_nonnegative, check_positive

__all__ = [
    "PriceTrace",
    "houston_profile",
    "mountain_view_profile",
    "atlanta_profile",
    "synthetic_profile",
    "paper_locations",
]

HOURS_PER_DAY = 24


@dataclass(frozen=True)
class PriceTrace:
    """One location's hourly electricity price series.

    Attributes
    ----------
    location:
        Human-readable location name.
    prices:
        Array of per-slot prices in $/kWh.  ``prices[t]`` holds for the
        whole slot ``t`` (paper: prices constant within a slot).
    """

    location: str
    prices: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        arr = check_nonnegative(self.prices, "prices")
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("prices must be a non-empty 1-D array")
        object.__setattr__(self, "prices", arr)

    def __len__(self) -> int:
        return int(self.prices.size)

    def at(self, slot: int) -> float:
        """Price in $/kWh during slot ``slot`` (wraps around the day)."""
        return float(self.prices[slot % len(self)])

    def window(self, start: int, stop: int) -> "PriceTrace":
        """Return the sub-trace for slots ``start..stop-1`` (wrapping)."""
        idx = np.arange(start, stop) % len(self)
        return PriceTrace(self.location, self.prices[idx])

    def mean(self) -> float:
        """Average price over the trace."""
        return float(self.prices.mean())

    def scaled(self, factor: float) -> "PriceTrace":
        """Return a copy with every price multiplied by ``factor``."""
        check_positive(factor, "factor")
        return PriceTrace(self.location, self.prices * float(factor))


def _diurnal(
    base: float,
    amplitude: float,
    peak_hour: float,
    sharpness: float,
    vibration: float,
    seed: int,
) -> np.ndarray:
    """Build a 24-hour diurnal price curve.

    The curve is a raised cosine peaking at ``peak_hour`` (afternoon for
    all three paper locations), sharpened by ``sharpness`` and overlaid
    with deterministic hour-to-hour vibration so that slot boundaries
    show visible jumps as in Fig. 1.
    """
    hours = np.arange(HOURS_PER_DAY, dtype=float)
    phase = np.cos((hours - peak_hour) / HOURS_PER_DAY * 2.0 * np.pi)
    # Shift/normalize the cosine into [0, 1] and sharpen the peak.
    shape = ((phase + 1.0) / 2.0) ** sharpness
    rng = np.random.default_rng(seed)
    jitter = vibration * rng.standard_normal(HOURS_PER_DAY)
    curve = base + amplitude * shape + jitter
    return np.clip(curve, 0.2 * base, None)


def houston_profile() -> PriceTrace:
    """Houston, TX: volatile ERCOT-style prices with a steep 16:00 peak."""
    return PriceTrace(
        "Houston, TX",
        _diurnal(base=0.050, amplitude=0.085, peak_hour=16.0, sharpness=3.0,
                 vibration=0.006, seed=1001),
    )


def mountain_view_profile() -> PriceTrace:
    """Mountain View, CA: higher base price, flatter 15:00 peak."""
    return PriceTrace(
        "Mountain View, CA",
        _diurnal(base=0.080, amplitude=0.045, peak_hour=15.0, sharpness=1.6,
                 vibration=0.004, seed=1002),
    )


def atlanta_profile() -> PriceTrace:
    """Atlanta, GA: cheap overnight, moderate 17:00 peak."""
    return PriceTrace(
        "Atlanta, GA",
        _diurnal(base=0.042, amplitude=0.060, peak_hour=17.0, sharpness=2.2,
                 vibration=0.005, seed=1003),
    )


def synthetic_profile(
    name: str,
    base: float,
    amplitude: float,
    peak_hour: float = 16.0,
    sharpness: float = 2.0,
    vibration: float = 0.005,
    seed: int = 0,
) -> PriceTrace:
    """Build a custom diurnal :class:`PriceTrace` (for experiments)."""
    check_positive(base, "base")
    check_nonnegative(amplitude, "amplitude")
    check_nonnegative(vibration, "vibration")
    return PriceTrace(
        name,
        _diurnal(base=base, amplitude=amplitude, peak_hour=peak_hour,
                 sharpness=sharpness, vibration=vibration, seed=seed),
    )


def paper_locations() -> Dict[str, PriceTrace]:
    """The three Fig.-1 locations keyed by short name."""
    return {
        "houston": houston_profile(),
        "mountain_view": mountain_view_profile(),
        "atlanta": atlanta_profile(),
    }


def price_matrix(traces: Sequence[PriceTrace]) -> np.ndarray:
    """Stack traces into an ``(L, T)`` matrix of $/kWh prices."""
    lengths = {len(t) for t in traces}
    if len(lengths) != 1:
        raise ValueError(f"traces have inconsistent lengths: {sorted(lengths)}")
    return np.stack([t.prices for t in traces], axis=0)
