"""Spot-market price volatility: spikes on top of diurnal base prices.

Deregulated electricity markets (the paper's setting — its §III cites
stochastic price variation "due to the deregulation of electricity
market") occasionally spike an order of magnitude above the diurnal
profile when reserves run short.  This module overlays a Markov
spike process on any :class:`~repro.market.prices.PriceTrace`, producing
markets where price-aware dispatching matters far more than under the
smooth Fig.-1 profiles — the stress ablation for the optimizer.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.market.market import MultiElectricityMarket
from repro.market.prices import PriceTrace
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive, check_probability

__all__ = ["spike_overlay", "spot_market"]


def spike_overlay(
    trace: PriceTrace,
    spike_prob: float = 0.08,
    persist_prob: float = 0.4,
    magnitude: float = 6.0,
    seed: Optional[int] = 0,
) -> PriceTrace:
    """Overlay a two-state Markov spike process on one price trace.

    In the "spiked" state the slot price is multiplied by ``magnitude``;
    the chain enters a spike with probability ``spike_prob`` per slot and
    remains in it with probability ``persist_prob``.

    Parameters
    ----------
    trace:
        The base (diurnal) price trace.
    spike_prob:
        Per-slot probability of entering a spike from the calm state.
    persist_prob:
        Per-slot probability a spike continues.
    magnitude:
        Price multiplier during spikes (> 1).
    """
    check_probability(spike_prob, "spike_prob")
    check_probability(persist_prob, "persist_prob")
    magnitude = float(check_positive(magnitude, "magnitude"))
    if magnitude <= 1.0:
        raise ValueError(f"magnitude must exceed 1, got {magnitude}")
    rng = as_generator(seed)
    spiked = False
    factors = np.ones(len(trace))
    for t in range(len(trace)):
        if spiked:
            spiked = rng.random() < persist_prob
        else:
            spiked = rng.random() < spike_prob
        if spiked:
            factors[t] = magnitude
    return PriceTrace(f"{trace.location} (spot)", trace.prices * factors)


def spot_market(
    market: MultiElectricityMarket,
    spike_prob: float = 0.08,
    persist_prob: float = 0.4,
    magnitude: float = 6.0,
    seed: Optional[int] = 0,
) -> MultiElectricityMarket:
    """Apply independent spike processes to every location of a market.

    Seeds are derived per location so spikes are independent across
    sites — the regime where geographic load shifting pays most.
    """
    rng = as_generator(seed)
    traces: Sequence[PriceTrace] = [
        spike_overlay(
            trace,
            spike_prob=spike_prob,
            persist_prob=persist_prob,
            magnitude=magnitude,
            seed=int(rng.integers(0, 2**31 - 1)),
        )
        for trace in market.traces
    ]
    return MultiElectricityMarket(list(traces))
