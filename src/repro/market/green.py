"""Green-energy extension (paper §II-B related work, refs. [10][11]).

The paper positions itself against Le et al.'s green-energy work and
notes its model extends naturally: on-site renewables displace a
fraction of each slot's brown (grid) energy, which is equivalent to an
*effective* electricity price per location and slot.  This module builds
that effective-price market so the optimizer runs unchanged:

    p_eff = green_frac * green_price + (1 - green_frac) * brown_price

with ``green_frac`` the fraction of the slot's processing energy covered
by renewables (solar/wind availability profiles) and ``green_price`` the
marginal cost of the renewable supply (0 for owned panels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.market.market import MultiElectricityMarket
from repro.market.prices import PriceTrace
from repro.utils.rng import as_generator
from repro.utils.validation import check_nonnegative, check_probability

__all__ = [
    "GreenEnergyProfile",
    "solar_profile",
    "wind_profile",
    "apply_green_energy",
    "brown_energy_fraction",
]


@dataclass(frozen=True)
class GreenEnergyProfile:
    """Per-slot fraction of processing energy covered by renewables."""

    name: str
    availability: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        arr = check_probability(self.availability, "availability")
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("availability must be a non-empty 1-D array")
        object.__setattr__(self, "availability", arr)

    def __len__(self) -> int:
        return int(self.availability.size)

    def at(self, slot: int) -> float:
        """Green coverage fraction during ``slot`` (wrapping)."""
        return float(self.availability[slot % len(self)])


def solar_profile(
    peak_coverage: float = 0.6,
    peak_hour: float = 13.0,
    num_slots: int = 24,
    name: str = "solar",
) -> GreenEnergyProfile:
    """Bell-shaped daylight coverage peaking at ``peak_hour``.

    Coverage is zero at night and rises to ``peak_coverage`` of the
    processing energy at solar noon.
    """
    check_probability(peak_coverage, "peak_coverage")
    hours = np.arange(num_slots, dtype=float)
    shape = np.clip(np.cos((hours - peak_hour) / 12.0 * np.pi), 0.0, None) ** 2
    return GreenEnergyProfile(name, peak_coverage * shape)


def wind_profile(
    mean_coverage: float = 0.3,
    variability: float = 0.5,
    num_slots: int = 24,
    seed: Optional[int] = 7,
    name: str = "wind",
) -> GreenEnergyProfile:
    """Autocorrelated wind coverage around ``mean_coverage``."""
    check_probability(mean_coverage, "mean_coverage")
    check_nonnegative(variability, "variability")
    rng = as_generator(seed)
    rho = 0.7
    noise = np.empty(num_slots)
    noise[0] = rng.standard_normal()
    for t in range(1, num_slots):
        noise[t] = rho * noise[t - 1] + np.sqrt(1 - rho**2) * rng.standard_normal()
    coverage = mean_coverage * (1.0 + variability * noise)
    return GreenEnergyProfile(name, np.clip(coverage, 0.0, 1.0))


def apply_green_energy(
    market: MultiElectricityMarket,
    profiles: Sequence[Optional[GreenEnergyProfile]],
    green_price: float = 0.0,
) -> MultiElectricityMarket:
    """Build the effective-price market with renewables folded in.

    Parameters
    ----------
    market:
        The brown-energy (grid) market.
    profiles:
        One profile per location (``None`` = no renewables there).
        Profile lengths must match the market's slot count.
    green_price:
        Marginal $/kWh of the renewable supply.
    """
    check_nonnegative(green_price, "green_price")
    if len(profiles) != market.num_locations:
        raise ValueError(
            f"need {market.num_locations} profiles, got {len(profiles)}"
        )
    traces = []
    for trace, profile in zip(market.traces, profiles):
        if profile is None:
            traces.append(trace)
            continue
        if len(profile) != len(trace):
            raise ValueError(
                f"profile {profile.name!r} has {len(profile)} slots, "
                f"market has {len(trace)}"
            )
        coverage = profile.availability
        effective = coverage * green_price + (1.0 - coverage) * trace.prices
        traces.append(PriceTrace(f"{trace.location} (+{profile.name})",
                                 effective))
    return MultiElectricityMarket(traces)


def brown_energy_fraction(
    profiles: Sequence[Optional[GreenEnergyProfile]],
    dc_energy_kwh: np.ndarray,
) -> float:
    """Fraction of total energy drawn from the grid.

    Parameters
    ----------
    profiles:
        Per-location green profiles (``None`` = all brown).
    dc_energy_kwh:
        ``(L, T)`` energy consumed per location per slot.
    """
    dc_energy_kwh = check_nonnegative(dc_energy_kwh, "dc_energy_kwh")
    if dc_energy_kwh.ndim != 2:
        raise ValueError("dc_energy_kwh must have shape (L, T)")
    if len(profiles) != dc_energy_kwh.shape[0]:
        raise ValueError("one profile per location required")
    total = float(dc_energy_kwh.sum())
    # Structural zero check, not ``total == 0.0``: the entries are
    # validated non-negative, so "no energy drawn" is exactly total <= 0
    # — and the inequality also covers -0.0 and stray negative rounding
    # noise a future caller might smuggle past validation, where an
    # exact equality would fall through to a nonsense 0/eps division.
    if total <= 0.0:
        return 0.0
    brown = 0.0
    for l, profile in enumerate(profiles):
        energy = dc_energy_kwh[l]
        if profile is None:
            brown += float(energy.sum())
        else:
            slots = np.arange(energy.size) % len(profile)
            brown += float(((1.0 - profile.availability[slots]) * energy).sum())
    return brown / total
