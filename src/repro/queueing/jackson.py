"""Open Jackson networks (multi-tier service extension).

The single-queue delay model (Eq. 1) covers one-shot requests.  The
multi-tier web-cluster literature the paper builds on ([5][6][4]) models
a request as a *chain* of service stations (web -> app -> database).  An
open Jackson network captures that: ``n`` M/M/1 stations, external
Poisson arrivals ``alpha_i``, and a substochastic routing matrix ``P``
(``P[i, j]`` = probability a job leaving ``i`` proceeds to ``j``; the
remainder departs).  The product-form result gives exact per-station and
end-to-end delays, which plug into TUFs exactly like Eq. 1 does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.queueing.mm1 import MM1Queue
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["JacksonNetwork"]


@dataclass(frozen=True)
class JacksonNetwork:
    """An open Jackson network of M/M/1 stations.

    Attributes
    ----------
    service_rates:
        ``(n,)`` per-station service rates ``mu_i``.
    external_arrivals:
        ``(n,)`` external Poisson rates ``alpha_i`` (>= 0, some > 0).
    routing:
        ``(n, n)`` substochastic matrix; row sums <= 1 and the spectral
        radius must be < 1 so every job eventually leaves.
    """

    service_rates: np.ndarray = field(repr=False)
    external_arrivals: np.ndarray = field(repr=False)
    routing: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        mu = check_positive(self.service_rates, "service_rates")
        alpha = check_nonnegative(self.external_arrivals, "external_arrivals")
        p = check_nonnegative(self.routing, "routing")
        n = mu.size
        if mu.ndim != 1:
            raise ValueError("service_rates must be 1-D")
        if alpha.shape != (n,):
            raise ValueError(f"external_arrivals must have shape ({n},)")
        if p.shape != (n, n):
            raise ValueError(f"routing must have shape ({n}, {n})")
        if np.any(p.sum(axis=1) > 1.0 + 1e-9):
            raise ValueError("routing rows must sum to at most 1")
        if alpha.sum() <= 0:
            raise ValueError("at least one station needs external arrivals")
        spectral = np.max(np.abs(np.linalg.eigvals(p)))
        if spectral >= 1.0 - 1e-9:
            raise ValueError(
                f"routing spectral radius {spectral:.4f} >= 1: jobs never leave"
            )
        object.__setattr__(self, "service_rates", mu)
        object.__setattr__(self, "external_arrivals", alpha)
        object.__setattr__(self, "routing", p)

    # ------------------------------------------------------------- traffic

    @property
    def num_stations(self) -> int:
        """Number of stations ``n``."""
        return int(self.service_rates.size)

    def effective_arrivals(self) -> np.ndarray:
        """Solve the traffic equations ``lambda = alpha + P^T lambda``."""
        n = self.num_stations
        return np.linalg.solve(np.eye(n) - self.routing.T,
                               self.external_arrivals)

    def utilizations(self) -> np.ndarray:
        """Per-station ``rho_i = lambda_i / mu_i``."""
        return self.effective_arrivals() / self.service_rates

    @property
    def is_stable(self) -> bool:
        """True iff every station is subcritical."""
        return bool(np.all(self.utilizations() < 1.0))

    # ------------------------------------------------------------- metrics

    def station(self, i: int) -> MM1Queue:
        """The ``i``-th station as an :class:`MM1Queue` (product form)."""
        lam = self.effective_arrivals()
        return MM1Queue(service_rate=float(self.service_rates[i]),
                        arrival_rate=float(lam[i]))

    def mean_queue_lengths(self) -> np.ndarray:
        """``(n,)`` mean number in system per station."""
        rho = self.utilizations()
        with np.errstate(divide="ignore"):
            out = np.where(rho < 1.0, rho / np.maximum(1.0 - rho, 1e-300),
                           np.inf)
        return out

    def mean_network_time(self) -> float:
        """Mean end-to-end time of a random job (Little's law)."""
        if not self.is_stable:
            return float("inf")
        total_jobs = float(self.mean_queue_lengths().sum())
        throughput = float(self.external_arrivals.sum())
        return total_jobs / throughput

    def visit_counts(self, entry: Optional[int] = None) -> np.ndarray:
        """Expected visits per station for a job entering at ``entry``.

        With ``entry=None`` the entry point is drawn from the external
        arrival mix.
        """
        n = self.num_stations
        if entry is None:
            start = self.external_arrivals / self.external_arrivals.sum()
        else:
            if not 0 <= entry < n:
                raise IndexError(f"entry {entry} out of range")
            start = np.zeros(n)
            start[entry] = 1.0
        # v = start + P^T v  (expected visits before leaving)
        return np.linalg.solve(np.eye(n) - self.routing.T, start)

    def mean_path_time(self, entry: Optional[int] = None) -> float:
        """Expected sojourn of a job entering at ``entry``.

        Sums per-station mean sojourns weighted by expected visits —
        exact for product-form networks.
        """
        if not self.is_stable:
            return float("inf")
        lam = self.effective_arrivals()
        per_visit = 1.0 / (self.service_rates - lam)
        return float(self.visit_counts(entry) @ per_visit)
