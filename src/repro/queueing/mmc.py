"""M/M/c queueing formulas (heterogeneous-server extension).

The paper treats each server independently (M/M/1 per VM).  An
alternative — pooling a data center's ``m`` homogeneous servers into one
M/M/c station — is the classic extension; we provide it for the
aggregation ablation and for sanity bounds (M/M/c delay lower-bounds the
split M/M/1 configuration at equal total capacity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import gammaln

from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["erlang_c", "MMcQueue", "ZERO_LOAD_TOL"]

#: Offered loads at or below this are treated as an empty system.  The
#: guard must be a *tolerance*, not ``a == 0.0``: arrival rates reaching
#: this function come out of LP solutions and trace arithmetic, so "no
#: traffic" arrives as values like 1e-17 rather than an exact zero, and
#: ``log(a)`` of such a value would still be evaluated despite the
#: system being idle for every practical purpose.  Well below any real
#: per-slot arrival rate, far above float noise.
ZERO_LOAD_TOL = 1e-12


def erlang_c(c: int, offered_load: float) -> float:
    """Erlang-C probability of waiting, P(W > 0).

    Parameters
    ----------
    c:
        Number of servers.
    offered_load:
        ``a = lambda / mu`` in Erlangs; must satisfy ``a < c`` for a
        stable queue (returns 1.0 otherwise).  Loads at or below
        :data:`ZERO_LOAD_TOL` short-circuit to 0.0 (an idle system
        never waits).
    """
    if c < 1:
        raise ValueError("c must be >= 1")
    a = float(check_nonnegative(offered_load, "offered_load"))
    if a <= ZERO_LOAD_TOL:
        return 0.0
    if a >= c:
        return 1.0
    # Work in log space for numerical stability at large c.
    log_terms = np.array([n * np.log(a) - gammaln(n + 1) for n in range(c)])
    log_tail = c * np.log(a) - gammaln(c + 1) + np.log(c / (c - a))
    log_denominator = np.logaddexp(np.logaddexp.reduce(log_terms), log_tail)
    return float(np.exp(log_tail - log_denominator))


@dataclass(frozen=True)
class MMcQueue:
    """An M/M/c queue: ``c`` servers each of rate ``service_rate``."""

    num_servers: int
    service_rate: float
    arrival_rate: float

    def __post_init__(self) -> None:
        if self.num_servers < 1:
            raise ValueError("num_servers must be >= 1")
        check_positive(self.service_rate, "service_rate")
        check_nonnegative(self.arrival_rate, "arrival_rate")

    @property
    def offered_load(self) -> float:
        """``a = lambda / mu`` in Erlangs."""
        return self.arrival_rate / self.service_rate

    @property
    def utilization(self) -> float:
        """Per-server utilization ``rho = a / c``."""
        return self.offered_load / self.num_servers

    @property
    def is_stable(self) -> bool:
        """True iff ``a < c``."""
        return self.offered_load < self.num_servers

    @property
    def waiting_probability(self) -> float:
        """Erlang-C P(W > 0)."""
        return erlang_c(self.num_servers, self.offered_load)

    @property
    def mean_waiting_time(self) -> float:
        """Mean time in queue before service starts."""
        if not self.is_stable:
            return float("inf")
        pw = self.waiting_probability
        return pw / (self.num_servers * self.service_rate - self.arrival_rate)

    @property
    def mean_sojourn_time(self) -> float:
        """Mean time in system (wait + service)."""
        if not self.is_stable:
            return float("inf")
        return self.mean_waiting_time + 1.0 / self.service_rate
