"""Analytic-vs-simulation validation helpers.

These helpers run the :mod:`repro.des` simulator against the paper's
analytic M/M/1 delay model (Eq. 1) and report the discrepancy.  They are
used by the test suite and by the model-validation example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Literal

from repro.queueing.mm1 import mm1_mean_delay
from repro.utils.validation import check_positive

# The simulator lives two layers up (queueing is a leaf domain model,
# des is an engine — see AR010); it is pulled in lazily only when a
# validation run actually simulates.
if TYPE_CHECKING:
    from repro.des.measurements import SojournStats

__all__ = ["DelayComparison", "simulate_mm1", "compare_with_des"]

Discipline = Literal["fcfs", "ps"]


@dataclass(frozen=True)
class DelayComparison:
    """Analytic vs simulated mean delay for one queue configuration."""

    service_rate: float
    arrival_rate: float
    analytic_mean: float
    simulated_mean: float
    simulated_stderr: float
    samples: int

    @property
    def relative_error(self) -> float:
        """|simulated - analytic| / analytic."""
        if self.analytic_mean == 0:
            return float("inf")
        return abs(self.simulated_mean - self.analytic_mean) / self.analytic_mean


def simulate_mm1(
    service_rate: float,
    arrival_rate: float,
    horizon: float,
    seed: int = 0,
    discipline: Discipline = "ps",
    warmup_fraction: float = 0.1,
) -> "SojournStats":
    """Simulate one M/M/1 queue and return its sojourn statistics.

    Parameters
    ----------
    service_rate:
        Effective rate ``phi * C * mu`` of the VM (or FCFS server).
    arrival_rate:
        Poisson arrival rate; must keep the queue stable.
    horizon:
        Simulated duration.
    discipline:
        "ps" for the processor-sharing VM (the paper's virtualization
        model) or "fcfs" for the classic single queue.
    warmup_fraction:
        Fraction of the horizon discarded as warmup.
    """
    from repro.des.engine import Engine
    from repro.des.measurements import SojournStats
    from repro.des.processes import PoissonArrivals
    from repro.des.server import FCFSQueueServer, VirtualMachine

    check_positive(service_rate, "service_rate")
    check_positive(arrival_rate, "arrival_rate")
    check_positive(horizon, "horizon")
    if arrival_rate >= service_rate:
        raise ValueError(
            f"unstable queue: arrival_rate {arrival_rate} >= service_rate {service_rate}"
        )
    engine = Engine()
    stats = SojournStats(warmup_time=warmup_fraction * horizon)
    if discipline == "fcfs":
        server = FCFSQueueServer(engine, rate=service_rate, stats=stats)
        sink = server.arrive
    elif discipline == "ps":
        vm = VirtualMachine(engine, rate=service_rate, stats=stats)
        sink = vm.arrive
    else:
        raise ValueError(f"unknown discipline {discipline!r}")
    PoissonArrivals(engine, rate=arrival_rate, sink=sink, seed=seed, stop_time=horizon)
    engine.run()
    return stats


def compare_with_des(
    service_rate: float,
    arrival_rate: float,
    horizon: float = 2000.0,
    seed: int = 0,
    discipline: Discipline = "ps",
) -> DelayComparison:
    """Compare Eq. 1's prediction against a DES measurement."""
    stats = simulate_mm1(service_rate, arrival_rate, horizon, seed, discipline)
    return DelayComparison(
        service_rate=service_rate,
        arrival_rate=arrival_rate,
        analytic_mean=mm1_mean_delay(service_rate, arrival_rate),
        simulated_mean=stats.mean,
        simulated_stderr=stats.stderr,
        samples=stats.count,
    )
