"""Analytic queueing models.

The paper's delay model (Eq. 1) treats the type-``k`` VM on a server as
an M/M/1 queue with service rate ``phi * C * mu_k``:

    R_k = 1 / (phi_k * C * mu_k - lambda_k)

This package provides that model plus an M/M/c extension (for the
heterogeneous-server generalization the paper mentions) and helpers to
validate the analytics against the discrete-event simulator in
:mod:`repro.des`.
"""

from repro.queueing.mm1 import MM1Queue, mm1_mean_delay, mm1_required_capacity, mm1_max_rate
from repro.queueing.mmc import MMcQueue, erlang_c
from repro.queueing.jackson import JacksonNetwork
from repro.queueing.validation import compare_with_des

__all__ = [
    "MM1Queue",
    "mm1_mean_delay",
    "mm1_required_capacity",
    "mm1_max_rate",
    "MMcQueue",
    "erlang_c",
    "JacksonNetwork",
    "compare_with_des",
]
