"""M/M/1 queueing formulas (paper Eq. 1).

All of the paper's delay constraints reduce to algebra on the M/M/1 mean
sojourn time; these helpers are the single implementation used by the
formulation, the baselines, and the tests.  Mean sojourn time of M/M/1
processor sharing equals that of M/M/1 FCFS, which is why the paper can
use Eq. 1 for CPU-sharing VMs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["mm1_mean_delay", "mm1_required_capacity", "mm1_max_rate", "MM1Queue"]

ArrayLike = Union[float, np.ndarray]


def mm1_mean_delay(service_rate: ArrayLike, arrival_rate: ArrayLike) -> ArrayLike:
    """Mean sojourn time ``R = 1 / (mu_eff - lambda)``.

    ``service_rate`` is the *effective* rate ``phi * C * mu``.  Returns
    ``inf`` where the queue is unstable (``lambda >= mu_eff``).
    """
    mu = np.asarray(service_rate, dtype=float)
    lam = np.asarray(arrival_rate, dtype=float)
    headroom = mu - lam
    with np.errstate(divide="ignore"):
        delay = np.where(headroom > 0.0, 1.0 / np.where(headroom > 0, headroom, 1.0), np.inf)
    if np.isscalar(service_rate) and np.isscalar(arrival_rate):
        return float(delay)
    return delay


def mm1_required_capacity(arrival_rate: ArrayLike, deadline: ArrayLike) -> ArrayLike:
    """Effective service rate needed to meet a mean-delay deadline.

    Inverts Eq. 1: ``R <= D`` iff ``mu_eff >= lambda + 1/D``.
    """
    lam = check_nonnegative(arrival_rate, "arrival_rate")
    d = check_positive(deadline, "deadline")
    out = lam + 1.0 / d
    if np.isscalar(arrival_rate) and np.isscalar(deadline):
        return float(out)
    return out


def mm1_max_rate(service_rate: ArrayLike, deadline: ArrayLike) -> ArrayLike:
    """Largest arrival rate a server can take while meeting the deadline.

    ``lambda_max = mu_eff - 1/D``, clipped at zero (a server whose
    effective rate cannot even serve an empty queue within ``D`` admits
    nothing).
    """
    mu = check_nonnegative(service_rate, "service_rate")
    d = check_positive(deadline, "deadline")
    out = np.clip(mu - 1.0 / d, 0.0, None)
    if np.isscalar(service_rate) and np.isscalar(deadline):
        return float(out)
    return out


@dataclass(frozen=True)
class MM1Queue:
    """An M/M/1 queue with fixed service and arrival rates.

    Examples
    --------
    >>> q = MM1Queue(service_rate=10.0, arrival_rate=8.0)
    >>> q.utilization
    0.8
    >>> q.mean_sojourn_time
    0.5
    """

    service_rate: float
    arrival_rate: float

    def __post_init__(self) -> None:
        check_positive(self.service_rate, "service_rate")
        check_nonnegative(self.arrival_rate, "arrival_rate")

    @property
    def utilization(self) -> float:
        """Traffic intensity ``rho = lambda / mu``."""
        return self.arrival_rate / self.service_rate

    @property
    def is_stable(self) -> bool:
        """True iff ``lambda < mu``."""
        return self.arrival_rate < self.service_rate

    @property
    def mean_sojourn_time(self) -> float:
        """Mean time in system (Eq. 1); ``inf`` if unstable."""
        return mm1_mean_delay(self.service_rate, self.arrival_rate)

    @property
    def mean_queue_length(self) -> float:
        """Mean number in system ``L = rho / (1 - rho)`` (Little's law)."""
        if not self.is_stable:
            return float("inf")
        rho = self.utilization
        return rho / (1.0 - rho)

    @property
    def mean_waiting_time(self) -> float:
        """Mean time in queue (excluding service)."""
        if not self.is_stable:
            return float("inf")
        return self.mean_sojourn_time - 1.0 / self.service_rate

    def sojourn_time_quantile(self, q: float) -> float:
        """Quantile of the (exponential) M/M/1-FCFS sojourn distribution."""
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        if not self.is_stable:
            return float("inf")
        # Sojourn time is exponential with rate (mu - lambda).
        return -np.log(1.0 - q) / (self.service_rate - self.arrival_rate)

    def delay_violation_probability(self, deadline: float) -> float:
        """P(sojourn > deadline) for the M/M/1-FCFS sojourn distribution."""
        check_positive(deadline, "deadline")
        if not self.is_stable:
            return 1.0
        return float(np.exp(-(self.service_rate - self.arrival_rate) * deadline))
