"""M/G/1 queueing (Pollaczek-Khinchine) — Eq. 1 robustness analysis.

The paper's delay model assumes exponential service times (M/M/1).  Real
request work is often less variable (fixed-size queries) or more
variable (heavy-tailed).  The Pollaczek-Khinchine formula gives the
exact M/G/1 mean sojourn for any service-time distribution with squared
coefficient of variation ``scv``:

    W_q = rho / (1 - rho) * (1 + scv) / 2 * (1 / mu)
    R   = W_q + 1 / mu

At ``scv = 1`` this reduces to Eq. 1, so the ratio ``R_G / R_M``
quantifies how far the paper's delay predictions drift when the
exponential assumption is wrong — the basis of the library's
model-robustness checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.queueing.mm1 import mm1_mean_delay
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["mg1_mean_delay", "MG1Queue", "deadline_inflation_factor"]

ArrayLike = Union[float, np.ndarray]


def mg1_mean_delay(
    service_rate: ArrayLike, arrival_rate: ArrayLike, scv: ArrayLike = 1.0
) -> ArrayLike:
    """Pollaczek-Khinchine mean sojourn time.

    Parameters
    ----------
    service_rate:
        Service rate ``mu`` (mean service time ``1/mu``).
    arrival_rate:
        Poisson arrival rate ``lambda < mu``.
    scv:
        Squared coefficient of variation of the service time
        (0 = deterministic, 1 = exponential, > 1 = more variable).
    """
    mu = np.asarray(service_rate, dtype=float)
    lam = np.asarray(arrival_rate, dtype=float)
    scv_arr = check_nonnegative(scv, "scv")
    # A zero-rate server serves nothing: unstable (infinite delay) for
    # any load, so substitute 1 in the lanes the np.where selects away.
    safe_mu = np.where(mu > 0.0, mu, 1.0)
    rho = np.where(mu > 0.0, lam / safe_mu, np.inf)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        wait = np.where(
            rho < 1.0,
            rho / np.maximum(1.0 - rho, 1e-300)
            * (1.0 + scv_arr) / 2.0 / safe_mu,
            np.inf,
        )
    out = wait + 1.0 / safe_mu
    out = np.where(rho < 1.0, out, np.inf)
    if np.isscalar(service_rate) and np.isscalar(arrival_rate):
        return float(out)
    return out


@dataclass(frozen=True)
class MG1Queue:
    """An M/G/1 queue parameterized by its service-time SCV."""

    service_rate: float
    arrival_rate: float
    scv: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.service_rate, "service_rate")
        check_nonnegative(self.arrival_rate, "arrival_rate")
        check_nonnegative(self.scv, "scv")

    @property
    def utilization(self) -> float:
        """Traffic intensity ``rho``."""
        return self.arrival_rate / self.service_rate

    @property
    def is_stable(self) -> bool:
        """True iff ``rho < 1``."""
        return self.utilization < 1.0

    @property
    def mean_sojourn_time(self) -> float:
        """Pollaczek-Khinchine mean time in system."""
        return mg1_mean_delay(self.service_rate, self.arrival_rate, self.scv)

    @property
    def exponential_model_error(self) -> float:
        """Relative error of Eq. 1's prediction for this queue.

        ``(R_M/M/1 - R_M/G/1) / R_M/G/1``: positive when Eq. 1
        *overestimates* the true delay (scv < 1, conservative), negative
        when it underestimates (scv > 1, optimistic).
        """
        if not self.is_stable:
            return 0.0
        truth = self.mean_sojourn_time
        assumed = mm1_mean_delay(self.service_rate, self.arrival_rate)
        return (assumed - truth) / truth


def deadline_inflation_factor(utilization: float, scv: float) -> float:
    """Deadline scale that restores Eq.-1 guarantees under M/G/1 service.

    If true service has SCV ``scv``, a VM sized by Eq. 1 to meet deadline
    ``D`` actually achieves mean delay ``factor * D`` at utilization
    ``rho``; planning with ``deadline_margin = 1 / factor`` compensates.
    The factor is the M/G/1-to-M/M/1 sojourn ratio:

        (rho * (1+scv)/2 + (1-rho)) / (rho + (1-rho)) = 1 + rho*(scv-1)/2
    """
    rho = float(check_nonnegative(utilization, "utilization"))
    if rho >= 1.0:
        raise ValueError("utilization must be < 1")
    scv_val = float(check_nonnegative(scv, "scv"))
    return 1.0 + rho * (scv_val - 1.0) / 2.0
