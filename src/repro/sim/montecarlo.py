"""Monte-Carlo robustness evaluation of slot plans.

The paper plans each slot on *known average* arrival rates.  In
practice the slot's realized rates deviate; this module quantifies the
consequence: it re-scores a fixed plan across many sampled realizations
(multiplicative rate noise), capping dispatch at what actually arrived,
and reports the profit distribution.  Used by the deadline-margin
robustness ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.controller import _cap_to_arrivals
from repro.core.objective import evaluate_plan
from repro.core.plan import DispatchPlan
from repro.utils.rng import as_generator
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["ProfitDistribution", "monte_carlo_profit"]


@dataclass(frozen=True)
class ProfitDistribution:
    """Empirical distribution of a plan's net profit under rate noise."""

    samples: np.ndarray = field(repr=False)

    @property
    def mean(self) -> float:
        """Average net profit across realizations."""
        return float(self.samples.mean())

    @property
    def std(self) -> float:
        """Standard deviation across realizations."""
        return float(self.samples.std(ddof=1)) if self.samples.size > 1 else 0.0

    def quantile(self, q: float) -> float:
        """Empirical quantile of the profit distribution."""
        return float(np.quantile(self.samples, q))

    @property
    def value_at_risk_5(self) -> float:
        """5th-percentile profit (a pessimistic planning number)."""
        return self.quantile(0.05)


def monte_carlo_profit(
    plan: DispatchPlan,
    arrivals: np.ndarray,
    prices: np.ndarray,
    slot_duration: float = 1.0,
    noise: float = 0.1,
    draws: int = 200,
    seed: Optional[int] = 0,
) -> ProfitDistribution:
    """Re-score ``plan`` under multiplicative arrival-rate noise.

    Each draw perturbs every (class, front-end) rate by an independent
    log-normal factor with scale ``noise``, caps the plan's dispatch at
    the realized rates (requests that did not arrive cannot be served),
    and evaluates the realized net profit.  Note this keeps the paper's
    analytic delay model; it isolates *rate* uncertainty from queueing
    noise (the DES in :mod:`repro.des.cluster` covers the latter).
    """
    arrivals = check_nonnegative(arrivals, "arrivals")
    check_positive(slot_duration, "slot_duration")
    check_nonnegative(noise, "noise")
    if draws < 1:
        raise ValueError("draws must be >= 1")
    rng = as_generator(seed)
    samples = np.empty(draws)
    for d in range(draws):
        factors = np.exp(noise * rng.standard_normal(arrivals.shape)
                         - 0.5 * noise**2)
        realized = arrivals * factors
        capped = _cap_to_arrivals(plan, realized)
        samples[d] = evaluate_plan(
            capped, realized, prices, slot_duration=slot_duration
        ).net_profit
    return ProfitDistribution(samples=samples)
