"""Whole-trace simulation runs and dispatcher comparisons."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.controller import Dispatcher, SlotRecord, SlottedController
from repro.market.market import MultiElectricityMarket
from repro.obs.collectors import Collector
from repro.sim.accounting import ProfitLedger
from repro.workload.traces import WorkloadTrace

__all__ = ["SimulationResult", "run_simulation", "compare_dispatchers"]


@dataclass
class SimulationResult:
    """All records + ledger for one dispatcher over one trace.

    This is the canonical home of the record-level summary metrics; the
    free functions in :mod:`repro.sim.metrics` are thin wrappers over
    the ``compute_*`` staticmethods here, so both surfaces agree by
    construction.
    """

    dispatcher_name: str
    records: List[SlotRecord] = field(repr=False)
    ledger: ProfitLedger = field(repr=False)
    #: Per-slot failure causes recovered from (slot index -> message);
    #: empty for a clean run.  Populated by
    #: :func:`~repro.sim.parallel.parallel_run_simulation` when worker
    #: chunks die and their slots are re-solved serially.
    failures: Dict[int, str] = field(default_factory=dict, repr=False)

    # Canonical metric implementations.  Staticmethods taking a bare
    # record sequence so the wrappers in ``repro.sim.metrics`` (and any
    # caller holding records without a full result) can reuse them.

    @staticmethod
    def compute_net_profit_series(records: Sequence[SlotRecord]) -> np.ndarray:
        """``(T,)`` net profit per slot."""
        return np.array([r.outcome.net_profit for r in records])

    @staticmethod
    def compute_completion_fractions(records: Sequence[SlotRecord]) -> np.ndarray:
        """``(K,)`` overall fraction of offered requests dispatched.

        With no records the class count is unknowable, so the degenerate
        result is an empty ``(0,)`` vector — still one-dimensional, so
        downstream ``.min()``-style reductions fail loudly instead of
        silently treating a scalar 1.0 as a full completion profile.
        """
        if not len(records):
            return np.empty(0)
        served = np.sum([r.outcome.served_rates for r in records], axis=0)
        offered = np.sum([r.outcome.offered_rates for r in records], axis=0)
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(offered > 0, served / offered, 1.0)
        return np.clip(frac, 0.0, 1.0)

    @staticmethod
    def compute_total_requests_processed(records: Sequence[SlotRecord]) -> float:
        """Total requests served across the whole run."""
        return float(sum(r.outcome.served_requests for r in records))

    @property
    def num_slots(self) -> int:
        """Number of simulated slots."""
        return len(self.records)

    @property
    def total_net_profit(self) -> float:
        """Total net profit over the run."""
        return self.ledger.total_net_profit

    @property
    def net_profit_series(self) -> np.ndarray:
        """``(T,)`` per-slot net profit."""
        return self.compute_net_profit_series(self.records)

    @property
    def total_cost(self) -> float:
        """Total dollars spent (energy + transfer)."""
        return self.ledger.total_cost

    @property
    def requests_processed(self) -> float:
        """Total requests served."""
        return self.compute_total_requests_processed(self.records)

    @property
    def completion_fractions(self) -> np.ndarray:
        """``(K,)`` completion fraction per request class."""
        return self.compute_completion_fractions(self.records)


def run_simulation(
    dispatcher: Dispatcher,
    trace: WorkloadTrace,
    market: MultiElectricityMarket,
    num_slots: Optional[int] = None,
    predictor_factory=None,
    apply_pue: bool = False,
    collector: Optional[Collector] = None,
) -> SimulationResult:
    """Run ``dispatcher`` over the trace/market and collect results.

    Slots are solved in trace order, so a warm-starting dispatcher (see
    ``ProfitAwareOptimizer(warm_start=True)``) reuses each slot's solver
    state for the next.  Any state left over from a *previous* run is
    dropped first so repeated calls are reproducible.

    ``collector`` (see :mod:`repro.obs`) instruments the run: it is
    handed to the controller and — when the dispatcher has a
    ``collector`` attribute, as :class:`ProfitAwareOptimizer` does —
    installed on the dispatcher too, so per-slot traces and solver
    counters land in the same sink as the loop timings.  The
    dispatcher's previous collector is restored when the run finishes,
    so instrumentation wired for one run never leaks into later runs of
    the same dispatcher.
    """
    reset = getattr(dispatcher, "reset_warm_state", None)
    if callable(reset):
        reset()
    swap_collector = collector is not None and hasattr(dispatcher, "collector")
    if swap_collector:
        saved_collector = dispatcher.collector
        dispatcher.collector = collector
    try:
        controller = SlottedController(
            dispatcher, trace, market,
            predictor_factory=predictor_factory, apply_pue=apply_pue,
            collector=collector,
        )
        ledger = ProfitLedger()
        records: List[SlotRecord] = []
        for record in controller.iter_slots(num_slots):
            ledger.record(record.outcome)
            records.append(record)
    finally:
        if swap_collector:
            dispatcher.collector = saved_collector
    name = getattr(dispatcher, "name", dispatcher.__class__.__name__)
    return SimulationResult(dispatcher_name=name, records=records, ledger=ledger)


def compare_dispatchers(
    dispatchers: Sequence[Dispatcher],
    trace: WorkloadTrace,
    market: MultiElectricityMarket,
    num_slots: Optional[int] = None,
    apply_pue: bool = False,
) -> Dict[str, SimulationResult]:
    """Run several dispatchers on identical inputs (the paper's setup)."""
    results: Dict[str, SimulationResult] = {}
    for dispatcher in dispatchers:
        result = run_simulation(
            dispatcher, trace, market, num_slots=num_slots, apply_pue=apply_pue
        )
        results[result.dispatcher_name] = result
    return results
