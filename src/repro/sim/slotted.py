"""Whole-trace simulation runs and dispatcher comparisons."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.controller import Dispatcher, SlotRecord, SlottedController
from repro.market.market import MultiElectricityMarket
from repro.sim.accounting import ProfitLedger
from repro.sim.metrics import (
    completion_fractions,
    net_profit_series,
    total_requests_processed,
)
from repro.workload.traces import WorkloadTrace

__all__ = ["SimulationResult", "run_simulation", "compare_dispatchers"]


@dataclass
class SimulationResult:
    """All records + ledger for one dispatcher over one trace."""

    dispatcher_name: str
    records: List[SlotRecord] = field(repr=False)
    ledger: ProfitLedger = field(repr=False)

    @property
    def num_slots(self) -> int:
        """Number of simulated slots."""
        return len(self.records)

    @property
    def total_net_profit(self) -> float:
        """Total net profit over the run."""
        return self.ledger.total_net_profit

    @property
    def net_profit_series(self) -> np.ndarray:
        """``(T,)`` per-slot net profit."""
        return net_profit_series(self.records)

    @property
    def total_cost(self) -> float:
        """Total dollars spent (energy + transfer)."""
        return self.ledger.total_cost

    @property
    def requests_processed(self) -> float:
        """Total requests served."""
        return total_requests_processed(self.records)

    @property
    def completion_fractions(self) -> np.ndarray:
        """``(K,)`` completion fraction per request class."""
        return completion_fractions(self.records)


def run_simulation(
    dispatcher: Dispatcher,
    trace: WorkloadTrace,
    market: MultiElectricityMarket,
    num_slots: Optional[int] = None,
    predictor_factory=None,
    apply_pue: bool = False,
) -> SimulationResult:
    """Run ``dispatcher`` over the trace/market and collect results.

    Slots are solved in trace order, so a warm-starting dispatcher (see
    ``ProfitAwareOptimizer(warm_start=True)``) reuses each slot's solver
    state for the next.  Any state left over from a *previous* run is
    dropped first so repeated calls are reproducible.
    """
    reset = getattr(dispatcher, "reset_warm_state", None)
    if callable(reset):
        reset()
    controller = SlottedController(
        dispatcher, trace, market,
        predictor_factory=predictor_factory, apply_pue=apply_pue,
    )
    ledger = ProfitLedger()
    records: List[SlotRecord] = []
    for record in controller.iter_slots(num_slots):
        ledger.record(record.outcome)
        records.append(record)
    name = getattr(dispatcher, "name", dispatcher.__class__.__name__)
    return SimulationResult(dispatcher_name=name, records=records, ledger=ledger)


def compare_dispatchers(
    dispatchers: Sequence[Dispatcher],
    trace: WorkloadTrace,
    market: MultiElectricityMarket,
    num_slots: Optional[int] = None,
    apply_pue: bool = False,
) -> Dict[str, SimulationResult]:
    """Run several dispatchers on identical inputs (the paper's setup)."""
    results: Dict[str, SimulationResult] = {}
    for dispatcher in dispatchers:
        result = run_simulation(
            dispatcher, trace, market, num_slots=num_slots, apply_pue=apply_pue
        )
        results[result.dispatcher_name] = result
    return results
