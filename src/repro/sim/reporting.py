"""Markdown report generation for simulation runs.

Turns one or more :class:`~repro.sim.slotted.SimulationResult` objects
into a self-contained markdown report: headline comparison, per-slot
profit series (with sparklines), completion fractions, per-data-center
dispatch totals, and powered-on server statistics.
"""

from __future__ import annotations

from typing import Dict, List, Optional


from repro.cloud.topology import CloudTopology
from repro.sim.metrics import dispatch_matrix, powered_on_series
from repro.sim.slotted import SimulationResult
from repro.utils.ascii_plot import sparkline

__all__ = ["comparison_report"]


def _fmt_money(value: float) -> str:
    return f"${value:,.0f}"


def comparison_report(
    results: Dict[str, SimulationResult],
    topology: CloudTopology,
    title: str = "Simulation comparison",
    baseline: Optional[str] = "balanced",
) -> str:
    """Render a markdown comparison of dispatcher runs.

    Parameters
    ----------
    results:
        Mapping of dispatcher name to its run result (same inputs).
    topology:
        The system the runs used (for labels).
    baseline:
        Name of the result relative improvements are reported against
        (skipped when absent).
    """
    if not results:
        raise ValueError("need at least one result")
    lines: List[str] = [f"# {title}", ""]
    base = results.get(baseline) if baseline else None

    # Headline table.
    lines += [
        "| approach | net profit | revenue | cost | requests served | "
        "min completion |" ,
        "|---|---|---|---|---|---|",
    ]
    for name, result in results.items():
        rel = ""
        if base is not None and name != baseline and base.total_net_profit:
            pct = (result.total_net_profit / base.total_net_profit - 1) * 100
            rel = f" ({pct:+.1f}% vs {baseline})"
        lines.append(
            f"| {name} | {_fmt_money(result.total_net_profit)}{rel} "
            f"| {_fmt_money(result.ledger.total_revenue)} "
            f"| {_fmt_money(result.total_cost)} "
            f"| {result.requests_processed:,.0f} "
            f"| {result.completion_fractions.min() * 100:.2f}% |"
        )
    lines.append("")

    # Per-slot profit shapes.
    lines.append("## Per-slot net profit")
    lines.append("")
    for name, result in results.items():
        series = result.net_profit_series
        lines.append(
            f"- **{name}**: `{sparkline(series)}` "
            f"(min {_fmt_money(series.min())}, max {_fmt_money(series.max())})"
        )
    lines.append("")

    # Dispatch totals per class and data center.
    lines.append("## Dispatch totals (requests, whole run)")
    lines.append("")
    dc_names = [dc.name for dc in topology.datacenters]
    header = "| approach | class | " + " | ".join(dc_names) + " |"
    lines += [header, "|---" * (2 + len(dc_names)) + "|"]
    for name, result in results.items():
        totals = dispatch_matrix(result.records).sum(axis=0)  # (K, L)
        slot = result.records[0].outcome.slot_duration if result.records else 1.0
        for k, rc in enumerate(topology.request_classes):
            cells = " | ".join(f"{totals[k, l] * slot:,.0f}"
                               for l in range(len(dc_names)))
            lines.append(f"| {name} | {rc.name} | {cells} |")
    lines.append("")

    # Powered-on servers.
    lines.append("## Powered-on servers")
    lines.append("")
    for name, result in results.items():
        series = powered_on_series(result.records).sum(axis=1)
        lines.append(
            f"- **{name}**: mean {series.mean():.1f} of "
            f"{topology.num_servers} (`{sparkline(series)}`)"
        )
    lines.append("")
    return "\n".join(lines)
