"""Experiment configuration bundles.

An :class:`ExperimentConfig` packages everything one of the paper's
studies needs — topology, workload trace, electricity market — so the
benchmark harness and the examples can share setups with the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cloud.topology import CloudTopology
from repro.core.baselines import BalancedDispatcher
from repro.core.optimizer import OptimizerConfig, ProfitAwareOptimizer
from repro.market.market import MultiElectricityMarket
from repro.sim.slotted import SimulationResult, compare_dispatchers
from repro.workload.traces import WorkloadTrace

__all__ = ["ExperimentConfig"]


@dataclass
class ExperimentConfig:
    """One reproducible experiment: topology + workload + market."""

    name: str
    topology: CloudTopology
    trace: WorkloadTrace = field(repr=False)
    market: MultiElectricityMarket = field(repr=False)
    description: str = ""

    def __post_init__(self):
        if self.trace.num_classes != self.topology.num_classes:
            raise ValueError(
                f"trace has {self.trace.num_classes} classes, topology has "
                f"{self.topology.num_classes}"
            )
        if self.trace.num_frontends != self.topology.num_frontends:
            raise ValueError(
                f"trace has {self.trace.num_frontends} front-ends, topology "
                f"has {self.topology.num_frontends}"
            )
        if self.market.num_locations != self.topology.num_datacenters:
            raise ValueError(
                f"market has {self.market.num_locations} locations, topology "
                f"has {self.topology.num_datacenters}"
            )

    def optimizer(
        self, config: Optional[OptimizerConfig] = None, **kwargs
    ) -> ProfitAwareOptimizer:
        """Build the paper's "Optimized" dispatcher for this topology.

        Pass a ready :class:`OptimizerConfig`, or flat config-field
        keywords which are folded into one (the optimizer itself only
        accepts ``config=``).
        """
        if config is not None and kwargs:
            raise TypeError(
                "pass either config=OptimizerConfig(...) or flat config "
                "fields, not both"
            )
        if config is None:
            config = OptimizerConfig(**kwargs)
        return ProfitAwareOptimizer(self.topology, config=config)

    def balanced(self, **kwargs) -> BalancedDispatcher:
        """Build the paper's "Balanced" baseline for this topology."""
        return BalancedDispatcher(self.topology, **kwargs)

    def run_comparison(
        self,
        num_slots: Optional[int] = None,
        optimizer_kwargs: Optional[dict] = None,
        balanced_kwargs: Optional[dict] = None,
    ) -> Dict[str, SimulationResult]:
        """Run Optimized vs Balanced on this experiment's inputs."""
        dispatchers = [
            self.optimizer(**(optimizer_kwargs or {})),
            self.balanced(**(balanced_kwargs or {})),
        ]
        return compare_dispatchers(
            dispatchers, self.trace, self.market, num_slots=num_slots
        )
