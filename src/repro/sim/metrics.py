"""Series and summary metrics over simulation records.

These helpers compute exactly the quantities the paper plots: per-slot
net profit (Figs. 4/6/8/10), per-data-center request allocation
(Figs. 7/9), completion percentages (§VII-B2), and powered-on server
counts.

The record-level summaries (``net_profit_series``,
``completion_fractions``, ``total_requests_processed``) are thin
wrappers over the canonical ``compute_*`` staticmethods on
:class:`~repro.sim.slotted.SimulationResult` — one implementation, two
surfaces.  Each wrapper accepts either a bare record sequence or a
``SimulationResult`` (its ``.records`` are used).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.controller import SlotRecord
from repro.sim.slotted import SimulationResult

__all__ = [
    "net_profit_series",
    "dc_dispatch_series",
    "dispatch_matrix",
    "completion_fractions",
    "powered_on_series",
    "total_requests_processed",
    "relative_improvement",
]


def _records(records_or_result) -> Sequence[SlotRecord]:
    """Accept a record sequence or anything with a ``.records`` list."""
    return getattr(records_or_result, "records", records_or_result)


def net_profit_series(records: Sequence[SlotRecord]) -> np.ndarray:
    """``(T,)`` net profit per slot."""
    return SimulationResult.compute_net_profit_series(_records(records))


def dc_dispatch_series(records: Sequence[SlotRecord], k: int, l: int) -> np.ndarray:
    """``(T,)`` rate of class ``k`` dispatched to data center ``l``."""
    return np.array([float(r.outcome.dc_loads[k, l]) for r in _records(records)])


def dispatch_matrix(records: Sequence[SlotRecord]) -> np.ndarray:
    """``(T, K, L)`` per-slot class-to-data-center load matrix."""
    return np.stack([r.outcome.dc_loads for r in _records(records)], axis=0)


def completion_fractions(records: Sequence[SlotRecord]) -> np.ndarray:
    """``(K,)`` overall fraction of offered requests dispatched."""
    return SimulationResult.compute_completion_fractions(_records(records))


def powered_on_series(records: Sequence[SlotRecord]) -> np.ndarray:
    """``(T, L)`` powered-on server counts per slot per data center."""
    return np.stack([r.plan.powered_on_per_dc() for r in _records(records)], axis=0)


def total_requests_processed(records: Sequence[SlotRecord]) -> float:
    """Total requests served across the whole run."""
    return SimulationResult.compute_total_requests_processed(_records(records))


def relative_improvement(optimized: float, baseline: float) -> float:
    """``(optimized - baseline) / |baseline|`` (inf when baseline is 0)."""
    if baseline == 0:
        return float("inf") if optimized > 0 else 0.0
    return (optimized - baseline) / abs(baseline)
