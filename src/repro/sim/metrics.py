"""Series and summary metrics over simulation records.

These helpers compute exactly the quantities the paper plots: per-slot
net profit (Figs. 4/6/8/10), per-data-center request allocation
(Figs. 7/9), completion percentages (§VII-B2), and powered-on server
counts.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.controller import SlotRecord

__all__ = [
    "net_profit_series",
    "dc_dispatch_series",
    "dispatch_matrix",
    "completion_fractions",
    "powered_on_series",
    "total_requests_processed",
    "relative_improvement",
]


def net_profit_series(records: Sequence[SlotRecord]) -> np.ndarray:
    """``(T,)`` net profit per slot."""
    return np.array([r.outcome.net_profit for r in records])


def dc_dispatch_series(records: Sequence[SlotRecord], k: int, l: int) -> np.ndarray:
    """``(T,)`` rate of class ``k`` dispatched to data center ``l``."""
    return np.array([float(r.outcome.dc_loads[k, l]) for r in records])


def dispatch_matrix(records: Sequence[SlotRecord]) -> np.ndarray:
    """``(T, K, L)`` per-slot class-to-data-center load matrix."""
    return np.stack([r.outcome.dc_loads for r in records], axis=0)


def completion_fractions(records: Sequence[SlotRecord]) -> np.ndarray:
    """``(K,)`` overall fraction of offered requests dispatched."""
    served = np.sum([r.outcome.served_rates for r in records], axis=0)
    offered = np.sum([r.outcome.offered_rates for r in records], axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        frac = np.where(offered > 0, served / offered, 1.0)
    return np.clip(frac, 0.0, 1.0)


def powered_on_series(records: Sequence[SlotRecord]) -> np.ndarray:
    """``(T, L)`` powered-on server counts per slot per data center."""
    return np.stack([r.plan.powered_on_per_dc() for r in records], axis=0)


def total_requests_processed(records: Sequence[SlotRecord]) -> float:
    """Total requests served across the whole run."""
    return float(sum(r.outcome.served_requests for r in records))


def relative_improvement(optimized: float, baseline: float) -> float:
    """``(optimized - baseline) / |baseline|`` (inf when baseline is 0)."""
    if baseline == 0:
        return float("inf") if optimized > 0 else 0.0
    return (optimized - baseline) / abs(baseline)
