"""Parallel slot solving with a process pool.

Slot problems are mutually independent given the trace (the paper's
controller carries no state between slots), so a day-long run
parallelizes trivially across slots.  This module distributes the slot
solves over a ``multiprocessing`` pool and reassembles an ordered
:class:`~repro.sim.slotted.SimulationResult`.

Slots are scheduled in contiguous **chunks**, one per worker, rather
than one task per slot: each worker builds its dispatcher once and
solves its chunk in trace order, so a warm-starting dispatcher (see
``ProfitAwareOptimizer(warm_start=True)``) keeps its formulation cache
and solver state across the slots of its chunk.  Only the chunk
boundaries pay a cold start.

Dispatchers are described by picklable *specs* rather than live objects
(solver handles and closures do not cross process boundaries):

>>> spec = DispatcherSpec("optimized", {"level_method": "milp"})

Speedups are modest at the paper's problem sizes (each LP solve is
milliseconds) and grow with per-server formulations and MILP slots;
``workers=1`` short-circuits to the serial path.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.topology import CloudTopology
from repro.core.baselines import BalancedDispatcher, EvenSplitDispatcher
from repro.core.controller import SlotRecord
from repro.core.objective import evaluate_plan
from repro.core.optimizer import ProfitAwareOptimizer
from repro.market.market import MultiElectricityMarket
from repro.sim.accounting import ProfitLedger
from repro.sim.slotted import SimulationResult
from repro.workload.traces import WorkloadTrace

__all__ = ["DispatcherSpec", "parallel_run_simulation"]

_KINDS = {
    "optimized": ProfitAwareOptimizer,
    "balanced": BalancedDispatcher,
    "even_split": EvenSplitDispatcher,
}


@dataclass(frozen=True)
class DispatcherSpec:
    """Picklable recipe for building a dispatcher in a worker process."""

    kind: str
    kwargs: Dict = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown dispatcher kind {self.kind!r}; "
                f"choose from {sorted(_KINDS)}"
            )

    def build(self, topology: CloudTopology):
        """Instantiate the dispatcher against ``topology``."""
        return _KINDS[self.kind](topology, **self.kwargs)


def _solve_chunk(
    args: Tuple,
) -> List[Tuple[int, np.ndarray, np.ndarray]]:
    """Worker: solve a contiguous chunk of slots with one dispatcher.

    Building the dispatcher once per chunk (not per slot) lets its
    formulation cache and warm-start state carry across the chunk.
    """
    topology, spec, chunk = args
    dispatcher = spec.build(topology)
    out: List[Tuple[int, np.ndarray, np.ndarray]] = []
    for slot, arrivals, prices, slot_duration in chunk:
        plan = dispatcher.plan_slot(
            arrivals, prices, slot_duration=slot_duration
        )
        out.append((slot, plan.rates, plan.shares))
    return out


def _chunked(tasks: Sequence, num_chunks: int) -> List[List]:
    """Split ``tasks`` into ``num_chunks`` contiguous, near-equal chunks."""
    n = len(tasks)
    num_chunks = max(1, min(num_chunks, n))
    bounds = np.linspace(0, n, num_chunks + 1).astype(int)
    return [list(tasks[bounds[i]:bounds[i + 1]]) for i in range(num_chunks)
            if bounds[i] < bounds[i + 1]]


def parallel_run_simulation(
    topology: CloudTopology,
    spec: DispatcherSpec,
    trace: WorkloadTrace,
    market: MultiElectricityMarket,
    num_slots: Optional[int] = None,
    workers: Optional[int] = None,
    apply_pue: bool = False,
) -> SimulationResult:
    """Run a slotted simulation with slot solves fanned out to a pool.

    Parameters
    ----------
    topology:
        The static system (pickled once per chunk).
    spec:
        Dispatcher recipe (see :class:`DispatcherSpec`).
    workers:
        Pool size; defaults to ``os.cpu_count()`` (serial when that is
        unavailable).  The pool never exceeds the slot count — extra
        workers would only idle — and ``workers=1`` runs serially
        in-process (no pool overhead, identical results).
    """
    total = num_slots if num_slots is not None else trace.num_slots
    tasks = [
        (t, trace.arrivals_at(t), market.prices_at(t), trace.slot_duration)
        for t in range(total)
    ]
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError("workers must be >= 1")
    workers = min(workers, max(total, 1))

    if workers == 1:
        solved = _solve_chunk((topology, spec, tasks))
    else:
        chunks = _chunked(tasks, workers)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = pool.map(
                _solve_chunk,
                [(topology, spec, chunk) for chunk in chunks],
            )
            solved = [item for chunk_result in results
                      for item in chunk_result]

    solved.sort(key=lambda item: item[0])
    from repro.core.plan import DispatchPlan

    ledger = ProfitLedger()
    records: List[SlotRecord] = []
    for t, rates, shares in solved:
        plan = DispatchPlan(topology=topology, rates=rates, shares=shares)
        arrivals = trace.arrivals_at(t)
        prices = market.prices_at(t)
        outcome = evaluate_plan(
            plan, arrivals, prices,
            slot_duration=trace.slot_duration, apply_pue=apply_pue,
        )
        ledger.record(outcome)
        records.append(SlotRecord(
            slot=t, plan=plan, outcome=outcome,
            prices=prices, arrivals=arrivals,
        ))
    return SimulationResult(
        dispatcher_name=spec.kind, records=records, ledger=ledger
    )
