"""Parallel slot solving with a process pool.

Slot problems are mutually independent given the trace (the paper's
controller carries no state between slots), so a day-long run
parallelizes trivially across slots.  This module distributes the slot
solves over a ``multiprocessing`` pool and reassembles an ordered
:class:`~repro.sim.slotted.SimulationResult`.

Dispatchers are described by picklable *specs* rather than live objects
(solver handles and closures do not cross process boundaries):

>>> spec = DispatcherSpec("optimized", {"level_method": "milp"})

Speedups are modest at the paper's problem sizes (each LP solve is
milliseconds) and grow with per-server formulations and MILP slots;
``workers=1`` short-circuits to the serial path.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cloud.topology import CloudTopology
from repro.core.baselines import BalancedDispatcher, EvenSplitDispatcher
from repro.core.controller import SlotRecord
from repro.core.objective import evaluate_plan
from repro.core.optimizer import ProfitAwareOptimizer
from repro.market.market import MultiElectricityMarket
from repro.sim.accounting import ProfitLedger
from repro.sim.slotted import SimulationResult
from repro.workload.traces import WorkloadTrace

__all__ = ["DispatcherSpec", "parallel_run_simulation"]

_KINDS = {
    "optimized": ProfitAwareOptimizer,
    "balanced": BalancedDispatcher,
    "even_split": EvenSplitDispatcher,
}


@dataclass(frozen=True)
class DispatcherSpec:
    """Picklable recipe for building a dispatcher in a worker process."""

    kind: str
    kwargs: Dict = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown dispatcher kind {self.kind!r}; "
                f"choose from {sorted(_KINDS)}"
            )

    def build(self, topology: CloudTopology):
        """Instantiate the dispatcher against ``topology``."""
        return _KINDS[self.kind](topology, **self.kwargs)


def _solve_slot(args: Tuple) -> Tuple[int, np.ndarray, np.ndarray]:
    """Worker: solve one slot, return (slot, rates, shares)."""
    topology, spec, slot, arrivals, prices, slot_duration = args
    dispatcher = spec.build(topology)
    plan = dispatcher.plan_slot(arrivals, prices, slot_duration=slot_duration)
    return slot, plan.rates, plan.shares


def parallel_run_simulation(
    topology: CloudTopology,
    spec: DispatcherSpec,
    trace: WorkloadTrace,
    market: MultiElectricityMarket,
    num_slots: Optional[int] = None,
    workers: Optional[int] = None,
    apply_pue: bool = False,
) -> SimulationResult:
    """Run a slotted simulation with slot solves fanned out to a pool.

    Parameters
    ----------
    topology:
        The static system (pickled once per task).
    spec:
        Dispatcher recipe (see :class:`DispatcherSpec`).
    workers:
        Pool size; defaults to ``os.cpu_count()``; ``workers=1`` runs
        serially in-process (no pool overhead, identical results).
    """
    total = num_slots if num_slots is not None else trace.num_slots
    tasks = [
        (topology, spec, t, trace.arrivals_at(t), market.prices_at(t),
         trace.slot_duration)
        for t in range(total)
    ]
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError("workers must be >= 1")

    if workers == 1:
        solved = [_solve_slot(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            solved = list(pool.map(_solve_slot, tasks, chunksize=1))

    solved.sort(key=lambda item: item[0])
    from repro.core.plan import DispatchPlan

    ledger = ProfitLedger()
    records: List[SlotRecord] = []
    for t, rates, shares in solved:
        plan = DispatchPlan(topology=topology, rates=rates, shares=shares)
        arrivals = trace.arrivals_at(t)
        prices = market.prices_at(t)
        outcome = evaluate_plan(
            plan, arrivals, prices,
            slot_duration=trace.slot_duration, apply_pue=apply_pue,
        )
        ledger.record(outcome)
        records.append(SlotRecord(
            slot=t, plan=plan, outcome=outcome,
            prices=prices, arrivals=arrivals,
        ))
    return SimulationResult(
        dispatcher_name=spec.kind, records=records, ledger=ledger
    )
