"""Parallel slot solving with a process pool.

Slot problems are mutually independent given the trace (the paper's
controller carries no state between slots), so a day-long run
parallelizes trivially across slots.  This module distributes the slot
solves over a ``multiprocessing`` pool and reassembles an ordered
:class:`~repro.sim.slotted.SimulationResult`.

Slots are scheduled in contiguous **chunks**, one per worker, rather
than one task per slot: each worker builds its dispatcher once and
solves its chunk in trace order, so a warm-starting dispatcher (see
``ProfitAwareOptimizer(warm_start=True)``) keeps its formulation cache
and solver state across the slots of its chunk.  Only the chunk
boundaries pay a cold start.

Dispatchers are described by picklable *specs* rather than live objects
(solver handles and closures do not cross process boundaries):

>>> spec = DispatcherSpec("optimized", {"level_method": "milp"})

Speedups are modest at the paper's problem sizes (each LP solve is
milliseconds) and grow with per-server formulations and MILP slots;
``workers=1`` short-circuits to the serial path.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.cloud.topology import CloudTopology
from repro.core.baselines import BalancedDispatcher, EvenSplitDispatcher
from repro.core.controller import SlotRecord
from repro.core.objective import evaluate_plan
from repro.core.optimizer import OptimizerConfig, ProfitAwareOptimizer
from repro.market.market import MultiElectricityMarket
from repro.obs.collectors import Collector, InMemoryCollector
from repro.sim.accounting import ProfitLedger
from repro.sim.slotted import SimulationResult
from repro.workload.traces import WorkloadTrace

__all__ = [
    "DispatcherSpec",
    "WorkerError",
    "parallel_map",
    "parallel_run_simulation",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


class WorkerError(RuntimeError):
    """One labeled ``parallel_map`` item failed.

    The message leads with the caller-supplied item label (e.g. the
    sparse path's ``block[class=2]``) followed by the original exception
    type and text, so a crash deep inside a pooled work item identifies
    *which* item died instead of surfacing as an anonymous pool error.
    The original exception is chained as ``__cause__`` in serial mode
    (chaining does not survive the process-pool pickling boundary).
    """


def _labeled_call(packed: Tuple[Callable[[_T], _R], str, _T]) -> _R:
    """Top-level (picklable) wrapper labeling one item's failure."""
    fn, label, item = packed
    try:
        return fn(item)
    except Exception as exc:
        raise WorkerError(f"{label}: {type(exc).__name__}: {exc}") from exc


def parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    workers: Optional[int] = None,
    labels: Optional[Sequence[str]] = None,
) -> List[_R]:
    """Order-preserving map over ``items``, optionally across processes.

    The generic fan-out primitive behind the decomposed sparse solve
    (:func:`repro.solvers.sparse.solve_decomposed`): independent block
    subproblems are mapped over the same process pool this module uses
    for slot-level parallelism.  ``fn`` and every item must be picklable
    when ``workers > 1``.

    ``workers=None`` or ``workers <= 1`` — or a single item, where pool
    overhead can only lose — runs serially in-process.  A broken pool
    (e.g. a worker killed by the OS) falls back to the serial path
    rather than losing the computation.

    ``labels`` (one per item) opts into failure attribution: an
    exception raised by ``fn`` for item ``i`` is re-raised as
    :class:`WorkerError` with ``labels[i]`` leading the message, in both
    the serial and pooled modes.  Without labels, exceptions raised by
    ``fn`` itself propagate unchanged in both modes.
    """
    items = list(items)
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1 (got {workers})")
    if labels is not None and len(labels) != len(items):
        raise ValueError(
            f"labels must match items: {len(labels)} labels for "
            f"{len(items)} items"
        )

    def run_serial() -> List[_R]:
        if labels is None:
            return [fn(item) for item in items]
        return [
            _labeled_call((fn, label, item))
            for label, item in zip(labels, items)
        ]

    if workers is None or workers <= 1 or len(items) <= 1:
        return run_serial()
    workers = min(int(workers), len(items))
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            if labels is None:
                return list(pool.map(fn, items))
            packed = [
                (fn, label, item) for label, item in zip(labels, items)
            ]
            return list(pool.map(_labeled_call, packed))
    except BrokenProcessPool:
        warnings.warn(
            "process pool died during parallel_map; re-running serially",
            RuntimeWarning,
        )
        return run_serial()

_KINDS = {
    "optimized": ProfitAwareOptimizer,
    "balanced": BalancedDispatcher,
    "even_split": EvenSplitDispatcher,
}


@dataclass(frozen=True)
class DispatcherSpec:
    """Picklable recipe for building a dispatcher in a worker process.

    For ``kind="optimized"`` the ``kwargs`` either contain a single
    ``"config"`` key holding an :class:`OptimizerConfig`, or flat
    config-field values (``{"level_method": "milp"}``); both build the
    optimizer through its config-only signature.
    """

    kind: str
    kwargs: Dict = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown dispatcher kind {self.kind!r}; "
                f"choose from {sorted(_KINDS)}"
            )

    def build(
        self,
        topology: CloudTopology,
        collector: Optional[Collector] = None,
    ):
        """Instantiate the dispatcher against ``topology``.

        ``collector`` (when given, and when the dispatcher supports
        telemetry) overrides the config's collector — this is how each
        worker process wires its own :class:`InMemoryCollector` in.
        Baseline kinds (``"balanced"``, ``"even_split"``) carry no
        telemetry hooks, so a collector passed for them is dropped with
        a warning: the run works, but its slot traces stay empty.
        """
        cls = _KINDS[self.kind]
        if collector is not None and cls is not ProfitAwareOptimizer \
                and not hasattr(cls, "collector"):
            warnings.warn(
                f"dispatcher kind {self.kind!r} has no telemetry hooks; "
                "the collector is ignored and its slot traces will be "
                "empty",
                RuntimeWarning,
                stacklevel=2,
            )
        if cls is ProfitAwareOptimizer:
            kwargs = dict(self.kwargs)
            config = kwargs.pop("config", None)
            if config is not None and kwargs:
                raise ValueError(
                    "DispatcherSpec kwargs must hold either a 'config' "
                    "entry or flat OptimizerConfig fields, not both "
                    f"(got extra {sorted(kwargs)})"
                )
            if config is None:
                config = OptimizerConfig(**kwargs)
            if collector is not None:
                config = config.replace(collector=collector)
            return ProfitAwareOptimizer(topology, config=config)
        return cls(topology, **self.kwargs)


def _solve_chunk(
    args: Tuple,
) -> Tuple[List[Tuple[int, np.ndarray, np.ndarray]], Optional[InMemoryCollector]]:
    """Worker: solve a contiguous chunk of slots with one dispatcher.

    Building the dispatcher once per chunk (not per slot) lets its
    formulation cache and warm-start state carry across the chunk.
    When telemetry is requested the worker accumulates into its own
    :class:`InMemoryCollector` (returned alongside the plans) and
    stamps the dispatcher's slot counter before each solve, so merged
    traces carry true trace-order slot indices.
    """
    topology, spec, chunk, collect = args
    collector = InMemoryCollector() if collect else None
    dispatcher = spec.build(topology, collector=collector)
    track_slots = collect and hasattr(dispatcher, "slot_index")
    out: List[Tuple[int, np.ndarray, np.ndarray]] = []
    for slot, arrivals, prices, slot_duration in chunk:
        if track_slots:
            dispatcher.slot_index = slot
        plan = dispatcher.plan_slot(
            arrivals, prices, slot_duration=slot_duration
        )
        out.append((slot, plan.rates, plan.shares))
    return out, collector


def _chunked(tasks: Sequence, num_chunks: int) -> List[List]:
    """Split ``tasks`` into ``num_chunks`` contiguous, near-equal chunks."""
    n = len(tasks)
    num_chunks = max(1, min(num_chunks, n))
    bounds = np.linspace(0, n, num_chunks + 1).astype(int)
    return [list(tasks[bounds[i]:bounds[i + 1]]) for i in range(num_chunks)
            if bounds[i] < bounds[i + 1]]


def parallel_run_simulation(
    topology: CloudTopology,
    spec: DispatcherSpec,
    trace: WorkloadTrace,
    market: MultiElectricityMarket,
    num_slots: Optional[int] = None,
    workers: Optional[int] = None,
    apply_pue: bool = False,
    collector: Optional[InMemoryCollector] = None,
) -> SimulationResult:
    """Run a slotted simulation with slot solves fanned out to a pool.

    Parameters
    ----------
    topology:
        The static system (pickled once per chunk).
    spec:
        Dispatcher recipe (see :class:`DispatcherSpec`).
    workers:
        Pool size; defaults to ``os.cpu_count()`` (serial when that is
        unavailable).  The pool never exceeds the slot count — extra
        workers would only idle — and ``workers=1`` runs serially
        in-process (no pool overhead, identical results).
    collector:
        Optional :class:`~repro.obs.collectors.InMemoryCollector`.
        Live collectors cannot be shared across processes, so each
        worker accumulates into its own collector, which crosses back
        over the pool boundary with the chunk's plans and is
        :meth:`~repro.obs.collectors.InMemoryCollector.merge`\\ d into
        this one at the barrier (slot traces re-sorted to trace order).
        Baseline specs (``"balanced"``, ``"even_split"``) have no
        telemetry hooks, so with them the merged collector holds loop
        counters only and ``slot_traces`` stays empty (see
        :meth:`DispatcherSpec.build`).

    Fault tolerance
    ---------------
    A worker exception — including a worker process dying outright
    (``BrokenProcessPool``) — no longer loses the run.  Each failed
    chunk is re-solved **serially in this process**, split one slot at
    a time so a single poisoned slot cannot mask its neighbours; the
    chunk-level causes land per slot in
    :attr:`~repro.sim.slotted.SimulationResult.failures` and a
    ``RuntimeWarning`` is emitted per failed chunk.  Only when a slot
    still fails during the serial re-solve does the run abort, with the
    slot index named in the raised error.  Serial re-solves build a
    fresh dispatcher per slot (cold start), which by the warm==cold
    equivalence guarantee changes no objective.
    """
    total = num_slots if num_slots is not None else trace.num_slots
    tasks = [
        (t, trace.arrivals_at(t), market.prices_at(t), trace.slot_duration)
        for t in range(total)
    ]
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError(
            f"workers must be >= 1 (got {workers}); pass workers=None "
            "to size the pool from os.cpu_count()"
        )
    workers = min(workers, max(total, 1))
    collect = collector is not None

    failures: Dict[int, str] = {}
    if workers == 1:
        solved, worker_collector = _solve_chunk((topology, spec, tasks, collect))
        if collect and worker_collector is not None:
            collector.merge(worker_collector)
    else:
        chunks = _chunked(tasks, workers)
        solved = []
        failed_chunks: List[Tuple[List, BaseException]] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_solve_chunk, (topology, spec, chunk, collect))
                for chunk in chunks
            ]
            for chunk, future in zip(chunks, futures):
                try:
                    chunk_result, worker_collector = future.result()
                except (Exception, BrokenProcessPool) as exc:
                    # A dead worker (BrokenProcessPool) also fails every
                    # other outstanding future; each chunk is recovered
                    # individually below.
                    failed_chunks.append((chunk, exc))
                    continue
                solved.extend(chunk_result)
                if collect and worker_collector is not None:
                    collector.merge(worker_collector)
        for chunk, exc in failed_chunks:
            cause = f"{type(exc).__name__}: {exc}"
            warnings.warn(
                f"worker chunk covering slots "
                f"{chunk[0][0]}..{chunk[-1][0]} failed ({cause}); "
                "re-solving its slots serially",
                RuntimeWarning,
            )
            for task in chunk:
                slot = task[0]
                failures[slot] = cause
                try:
                    part, worker_collector = _solve_chunk(
                        (topology, spec, [task], collect)
                    )
                except Exception as slot_exc:
                    raise RuntimeError(
                        f"slot {slot} failed during serial recovery "
                        f"(original worker failure: {cause})"
                    ) from slot_exc
                solved.extend(part)
                if collect and worker_collector is not None:
                    collector.merge(worker_collector)

    solved.sort(key=lambda item: item[0])
    from repro.core.plan import DispatchPlan

    ledger = ProfitLedger()
    records: List[SlotRecord] = []
    for t, rates, shares in solved:
        plan = DispatchPlan(topology=topology, rates=rates, shares=shares)
        arrivals = trace.arrivals_at(t)
        prices = market.prices_at(t)
        outcome = evaluate_plan(
            plan, arrivals, prices,
            slot_duration=trace.slot_duration, apply_pue=apply_pue,
        )
        ledger.record(outcome)
        records.append(SlotRecord(
            slot=t, plan=plan, outcome=outcome,
            prices=prices, arrivals=arrivals,
        ))
    return SimulationResult(
        dispatcher_name=spec.kind, records=records, ledger=ledger,
        failures=failures,
    )
