"""Time-slotted simulation harness.

Runs dispatchers (the optimizer and baselines) over whole traces,
accumulates itemized profit ledgers, and computes the series the paper
plots (per-slot net profit, per-data-center dispatch, completion
fractions, powered-on servers).
"""

from repro.sim.accounting import ProfitLedger
from repro.sim.slotted import SimulationResult, run_simulation, compare_dispatchers
from repro.sim.metrics import (
    completion_fractions,
    dispatch_matrix,
    dc_dispatch_series,
    net_profit_series,
    powered_on_series,
    total_requests_processed,
)
from repro.sim.experiment import ExperimentConfig
from repro.sim.failures import (
    MarkovServerAvailability,
    degraded_topology,
    expand_degraded_plan,
    run_with_failures,
)
from repro.sim.reporting import comparison_report
from repro.sim.montecarlo import ProfitDistribution, monte_carlo_profit
from repro.sim.parallel import DispatcherSpec, parallel_run_simulation

__all__ = [
    "DispatcherSpec",
    "parallel_run_simulation",
    "ProfitDistribution",
    "monte_carlo_profit",
    "MarkovServerAvailability",
    "degraded_topology",
    "expand_degraded_plan",
    "run_with_failures",
    "comparison_report",
    "ProfitLedger",
    "SimulationResult",
    "run_simulation",
    "compare_dispatchers",
    "net_profit_series",
    "dc_dispatch_series",
    "dispatch_matrix",
    "completion_fractions",
    "powered_on_series",
    "total_requests_processed",
    "ExperimentConfig",
]
