"""Failure injection: server outages and fault-tolerant re-planning.

The paper assumes a fixed fleet; real fleets lose servers.  Because the
controller re-solves every slot from the *current* system state, outages
slot naturally into the model: each slot, an availability process
reports how many servers are up per data center, the dispatcher plans
against the degraded topology, and the plan is expanded back onto the
full server index space (failed servers carry zero load).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.topology import CloudTopology
from repro.core.controller import Dispatcher, SlotRecord
from repro.core.objective import evaluate_plan
from repro.core.plan import DispatchPlan
from repro.market.market import MultiElectricityMarket
from repro.obs.collectors import Collector
from repro.sim.accounting import ProfitLedger
from repro.sim.slotted import SimulationResult
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability
from repro.workload.traces import WorkloadTrace

__all__ = [
    "MarkovServerAvailability",
    "degraded_topology",
    "expand_degraded_plan",
    "run_with_failures",
]


class MarkovServerAvailability:
    """Independent two-state (up/down) Markov chains per server.

    Parameters
    ----------
    topology:
        Supplies the per-data-center server counts.
    fail_prob:
        Per-slot probability an up server fails.
    repair_prob:
        Per-slot probability a down server is repaired.
    seed:
        RNG seed.
    min_up:
        Floor on the number of up servers per data center (>= 1 keeps
        every location usable; the LP needs at least one server to host
        the mandatory minimum shares).
    """

    def __init__(
        self,
        topology: CloudTopology,
        fail_prob: float = 0.05,
        repair_prob: float = 0.5,
        seed: Optional[int] = 0,
        min_up: int = 1,
    ):
        check_probability(fail_prob, "fail_prob")
        check_probability(repair_prob, "repair_prob")
        if min_up < 1:
            raise ValueError("min_up must be >= 1 (the slot LP needs a server)")
        self._fail = float(fail_prob)
        self._repair = float(repair_prob)
        self._min_up = int(min_up)
        self._rng = as_generator(seed)
        self._up = [np.ones(dc.num_servers, dtype=bool)
                    for dc in topology.datacenters]

    def step(self) -> np.ndarray:
        """Advance one slot; returns ``(L,)`` up-server counts."""
        counts = np.empty(len(self._up), dtype=int)
        for l, state in enumerate(self._up):
            fail = self._rng.random(state.size) < self._fail
            repair = self._rng.random(state.size) < self._repair
            was_up = state.copy()
            state[:] = np.where(was_up, ~fail, repair)
            # Enforce the floor by repairing the first down servers.
            deficit = self._min_up - int(state.sum())
            if deficit > 0:
                down_idx = np.nonzero(~state)[0][:deficit]
                state[down_idx] = True
            counts[l] = int(state.sum())
        return counts


def degraded_topology(
    topology: CloudTopology, available: Sequence[int]
) -> CloudTopology:
    """Topology with each data center shrunk to its available servers."""
    available = [int(a) for a in available]
    if len(available) != topology.num_datacenters:
        raise ValueError("one availability count per data center required")
    datacenters = []
    for dc, count in zip(topology.datacenters, available):
        if not 0 <= count <= dc.num_servers:
            raise ValueError(
                f"available count {count} out of range [0, {dc.num_servers}] "
                f"for {dc.name!r}"
            )
        datacenters.append(dc.with_servers(count))
    return topology.with_datacenters(datacenters)


def expand_degraded_plan(
    plan: DispatchPlan,
    full_topology: CloudTopology,
    available: Sequence[int],
) -> DispatchPlan:
    """Map a degraded-topology plan back onto the full server index space.

    The first ``available[l]`` servers of each data center carry the
    degraded plan's columns; the remaining (failed) servers get zero
    rates and shares.
    """
    K, S = full_topology.num_classes, full_topology.num_frontends
    N = full_topology.num_servers
    rates = np.zeros((K, S, N))
    shares = np.zeros((K, N))
    full_offsets = full_topology.server_offsets()
    degraded_offsets = plan.topology.server_offsets()
    for l in range(full_topology.num_datacenters):
        count = int(available[l])
        src = slice(degraded_offsets[l], degraded_offsets[l] + count)
        dst = slice(full_offsets[l], full_offsets[l] + count)
        rates[:, :, dst] = plan.rates[:, :, src]
        shares[:, dst] = plan.shares[:, src]
    return DispatchPlan(topology=full_topology, rates=rates, shares=shares)


def run_with_failures(
    topology: CloudTopology,
    dispatcher_factory: Callable[[CloudTopology], Dispatcher],
    trace: WorkloadTrace,
    market: MultiElectricityMarket,
    availability: MarkovServerAvailability,
    num_slots: Optional[int] = None,
    apply_pue: bool = False,
    collector: Optional[Collector] = None,
) -> SimulationResult:
    """Slotted run with per-slot server availability.

    Each slot: sample availability, re-plan on the degraded topology via
    ``dispatcher_factory``, expand the plan to the full fleet, and score
    it with the standard evaluator (``apply_pue`` reaches the evaluator
    exactly as in :func:`~repro.sim.slotted.run_simulation`).

    Dispatchers are **cached per availability signature**: the degraded
    topology is a pure function of the up-server counts, so a fleet
    state seen before reuses the dispatcher built for it — keeping its
    formulation caches and warm-start state alive instead of paying a
    cold rebuild every slot.  Warm==cold solve equivalence (see
    ``tests/test_warmstart.py``) guarantees this changes no objective.

    ``collector`` (see :mod:`repro.obs`) is installed on every cached
    dispatcher that supports telemetry; each dispatcher's slot counter
    is stamped with the trace-order slot index before planning, so slot
    traces carry true slot numbers even though dispatchers are shared
    across non-contiguous slots.
    """
    total = num_slots if num_slots is not None else trace.num_slots
    ledger = ProfitLedger()
    records: List[SlotRecord] = []
    dispatchers: Dict[Tuple[int, ...], Dispatcher] = {}
    name = "unknown"
    for t in range(total):
        counts = tuple(int(c) for c in availability.step())
        dispatcher = dispatchers.get(counts)
        if dispatcher is None:
            dispatcher = dispatcher_factory(
                degraded_topology(topology, counts)
            )
            if collector is not None and hasattr(dispatcher, "collector"):
                dispatcher.collector = collector
            dispatchers[counts] = dispatcher
        name = getattr(dispatcher, "name", dispatcher.__class__.__name__)
        if hasattr(dispatcher, "slot_index"):
            dispatcher.slot_index = t
        arrivals = trace.arrivals_at(t)
        prices = market.prices_at(t)
        plan = dispatcher.plan_slot(arrivals, prices,
                                    slot_duration=trace.slot_duration)
        full_plan = expand_degraded_plan(plan, topology, counts)
        outcome = evaluate_plan(full_plan, arrivals, prices,
                                slot_duration=trace.slot_duration,
                                apply_pue=apply_pue)
        ledger.record(outcome)
        records.append(SlotRecord(
            slot=t, plan=full_plan, outcome=outcome,
            prices=prices, arrivals=arrivals,
        ))
    return SimulationResult(
        dispatcher_name=f"{name}+failures", records=records, ledger=ledger
    )
