"""Profit/cost ledger accumulated over a simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core.objective import NetProfitBreakdown

__all__ = ["ProfitLedger"]


@dataclass
class ProfitLedger:
    """Per-slot dollar accounting for one dispatcher run."""

    revenues: List[float] = field(default_factory=list)
    energy_costs: List[float] = field(default_factory=list)
    transfer_costs: List[float] = field(default_factory=list)
    energy_kwh: List[float] = field(default_factory=list)

    def record(self, outcome: NetProfitBreakdown) -> None:
        """Append one slot's outcome."""
        self.revenues.append(outcome.revenue)
        self.energy_costs.append(outcome.energy_cost)
        self.transfer_costs.append(outcome.transfer_cost)
        self.energy_kwh.append(outcome.energy_kwh)

    @property
    def num_slots(self) -> int:
        """Slots recorded so far."""
        return len(self.revenues)

    @property
    def net_profits(self) -> np.ndarray:
        """Per-slot net profit series."""
        return (
            np.asarray(self.revenues)
            - np.asarray(self.energy_costs)
            - np.asarray(self.transfer_costs)
        )

    @property
    def total_revenue(self) -> float:
        """Total revenue over the run."""
        return float(np.sum(self.revenues))

    @property
    def total_cost(self) -> float:
        """Total energy + transfer dollars over the run."""
        return float(np.sum(self.energy_costs) + np.sum(self.transfer_costs))

    @property
    def total_net_profit(self) -> float:
        """Total net profit over the run."""
        return self.total_revenue - self.total_cost

    @property
    def total_energy_kwh(self) -> float:
        """Total energy consumed (kWh)."""
        return float(np.sum(self.energy_kwh))

    def cumulative_net_profit(self) -> np.ndarray:
        """Running total of net profit per slot."""
        return np.cumsum(self.net_profits)
