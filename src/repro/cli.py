"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``prices`` — print the Fig.-1 electricity price curves;
* ``section5 [--regime low|high]`` — the §V basic-characteristics study;
* ``section6`` — the §VI World-Cup day (Optimized vs Balanced);
* ``section7`` — the §VII Google-trace study with two-level TUFs;
* ``validate`` — M/M/1 model (Eq. 1) vs discrete-event simulation;
* ``sweep [--servers 2,4,6,...]`` — capacity sweep on the §VII workload;
* ``trace [--out traces.jsonl]`` — run a scenario with telemetry on and
  dump per-slot :class:`~repro.obs.trace.SlotTrace` records as JSONL;
* ``stream [--policy periodic|drift|margin]`` — the sub-slot streaming
  control plane (:mod:`repro.stream`); re-plans on drift/margin decay
  instead of the wall clock;
* ``lint [PATH ...]`` — run the :mod:`repro.analysis` domain-aware
  static-analysis pass (``reprolint``); exits 1 on findings;
* ``audit [--scenario ...]`` — run the :mod:`repro.analysis.model`
  formulation auditor on one slot problem (big-M tightness, units,
  matrix diagnostics, feasibility); exits 1 on MD errors;
* ``bench [--all|--scenario ...]`` — run the canonical perf-benchmark
  scenarios (:mod:`repro.bench`), emit ``BENCH_<scenario>.json``, and
  optionally gate against committed baselines; exits 1 on regressions.

Every command lives in a :func:`repro.cli_registry.register_subcommand`
registration — the core ones below, the subsystem ones
(``lint``/``audit``/``bench``/``stream``) in their own packages'
``cli`` modules, imported here for the registration side effect.
:func:`build_parser` and :func:`main` are both derived from the
registry, so adding a command never edits this module's dispatch code.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, List, Optional

from repro.cli_registry import (
    get_subcommand,
    register_subcommand,
    registered_subcommands,
)
from repro.utils.ascii_plot import line_chart, sparkline
from repro.utils.tables import render_table

__all__ = ["build_parser", "main", "register_subcommand"]


# --------------------------------------------------------------- commands


@register_subcommand("prices", help_text="Fig. 1 electricity price curves")
def _cmd_prices(args: argparse.Namespace) -> int:
    from repro.market.prices import paper_locations
    rows = []
    for name, trace in paper_locations().items():
        rows.append([name, trace.mean(), trace.prices.min(),
                     trace.prices.max(), sparkline(trace.prices)])
    print(render_table(
        ["location", "mean $/kWh", "min", "max", "day shape"],
        rows, title="Fig. 1: electricity prices over one day",
    ))
    return 0


def _configure_section5(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--regime", choices=["low", "high"], default="low")


@register_subcommand("section5",
                     help_text="§V basic characteristics study",
                     configure=_configure_section5)
def _cmd_section5(args: argparse.Namespace) -> int:
    from repro.experiments.section5 import section5_experiment
    results = section5_experiment(args.regime).run_comparison()
    rows = [
        [name, r.total_net_profit, r.requests_processed,
         float(r.completion_fractions.min()) * 100.0]
        for name, r in results.items()
    ]
    print(render_table(
        ["approach", "net profit ($)", "requests served", "min completion %"],
        rows, title=f"Section V ({args.regime} arrival rates)",
        float_fmt=",.0f",
    ))
    return 0


def _run_comparison_command(exp: Any) -> int:
    results = exp.run_comparison()
    opt, bal = results["optimized"], results["balanced"]
    print(exp.description, "\n")
    print(line_chart(
        {"optimized": opt.net_profit_series, "balanced": bal.net_profit_series},
        title="hourly net profit ($)", height=10,
        width=max(24, exp.trace.num_slots * 3),
    ))
    print()
    rows = [
        [name, r.total_net_profit, r.total_cost,
         float(r.completion_fractions.min()) * 100.0]
        for name, r in results.items()
    ]
    print(render_table(
        ["approach", "net profit ($)", "total cost ($)", "min completion %"],
        rows, float_fmt=",.0f",
    ))
    return 0


def _configure_section6(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=1998)


@register_subcommand("section6", help_text="§VI World-Cup day study",
                     configure=_configure_section6)
def _cmd_section6(args: argparse.Namespace) -> int:
    from repro.experiments.section6 import section6_experiment
    return _run_comparison_command(section6_experiment(seed=args.seed))


def _configure_section7(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=2010)
    parser.add_argument("--load-scale", type=float, default=1.0)
    parser.add_argument("--capacity-scale", type=float, default=1.0)


@register_subcommand("section7", help_text="§VII Google-trace study",
                     configure=_configure_section7)
def _cmd_section7(args: argparse.Namespace) -> int:
    from repro.experiments.section7 import section7_experiment
    return _run_comparison_command(section7_experiment(
        seed=args.seed, load_scale=args.load_scale,
        capacity_scale=args.capacity_scale,
    ))


def _configure_validate(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--utilization", type=float, default=0.7)
    parser.add_argument("--horizon", type=float, default=2000.0)


@register_subcommand("validate",
                     help_text="Eq. 1 vs discrete-event simulation",
                     configure=_configure_validate)
def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.queueing.validation import compare_with_des
    if not 0.0 < args.utilization < 1.0:
        print("error: --utilization must be in (0, 1)", file=sys.stderr)
        return 2
    rows = []
    for mu in (5.0, 20.0, 80.0):
        for discipline in ("ps", "fcfs"):
            cmp = compare_with_des(
                service_rate=mu, arrival_rate=args.utilization * mu,
                horizon=args.horizon, discipline=discipline,
            )
            rows.append([
                f"mu={mu:g} {discipline}", cmp.analytic_mean,
                cmp.simulated_mean, cmp.samples,
                cmp.relative_error * 100.0,
            ])
    print(render_table(
        ["queue", "Eq.1 delay", "simulated", "jobs", "error %"],
        rows, title=f"M/M/1 validation at utilization {args.utilization:g}",
    ))
    return 0


def _configure_sweep(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--servers", type=str, default="2,4,6,8")


@register_subcommand("sweep",
                     help_text="capacity sweep on the §VII workload",
                     configure=_configure_sweep)
def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.optimizer import OptimizerConfig, ProfitAwareOptimizer
    from repro.experiments.section7 import section7_experiment
    from repro.sim.slotted import run_simulation
    try:
        counts = [int(tok) for tok in args.servers.split(",") if tok.strip()]
    except ValueError:
        print(f"error: bad --servers list {args.servers!r}", file=sys.stderr)
        return 2
    if not counts or any(c < 1 for c in counts):
        print("error: --servers needs positive integers", file=sys.stderr)
        return 2
    rows = []
    for m in counts:
        exp = section7_experiment()
        topo = exp.topology.with_servers_per_datacenter(m)
        result = run_simulation(
            ProfitAwareOptimizer(topo, config=OptimizerConfig(consolidate=True)),
            exp.trace, exp.market,
        )
        rows.append([
            m * exp.topology.num_datacenters,
            result.total_net_profit,
            float(result.completion_fractions.min()) * 100.0,
        ])
    print(render_table(
        ["fleet size", "7h net profit ($)", "min completion %"],
        rows, title="Capacity sweep (section VII workload)", float_fmt=",.0f",
    ))
    return 0


def _configure_reproduce(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--out", type=str, default="results")
    parser.add_argument("--skip-slow", action="store_true",
                        help="skip the computation-time sweep (Fig. 11)")


@register_subcommand(
    "reproduce",
    help_text="regenerate every paper figure's data series into a directory",
    configure=_configure_reproduce,
)
def _cmd_reproduce(args: argparse.Namespace) -> int:
    from pathlib import Path

    import numpy as np

    from repro.experiments import figures

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    def write(name: str, lines: Any) -> None:
        path = out / f"{name}.txt"
        path.write_text("\n".join(str(line) for line in lines) + "\n")
        print(f"wrote {path}")

    def fmt_series(mapping: Any) -> list:
        return [
            f"{key}: " + " ".join(f"{float(v):.6g}" for v in np.ravel(val))
            for key, val in mapping.items()
        ]

    write("fig01_prices", fmt_series(figures.fig1_price_series()))
    for regime in ("low", "high"):
        data = figures.fig4_basic_profit(regime)
        write(f"fig04_{regime}", [
            f"{name}: net={vals['net_profit']:.2f} "
            f"served={vals['requests_processed']:.0f} "
            f"cost={vals['total_cost']:.2f}"
            for name, vals in data.items()
        ])
    write("fig05_traces", fmt_series(figures.fig5_trace_series()))
    write("fig06_worldcup_profit", fmt_series(figures.fig6_profit_series()))
    fig7 = figures.fig7_request1_allocation()
    write("fig07_dispatch", [
        f"{approach}/{dc}: " + " ".join(f"{v:.6g}" for v in series)
        for approach, per_dc in fig7.items()
        for dc, series in per_dc.items()
    ])
    write("fig08_google_profit", fmt_series(figures.fig8_profit_series()))
    study = figures.fig9_allocations()
    write("fig09_allocations", [
        f"completion {name}: {np.round(frac, 4).tolist()}"
        for name, frac in study.completion.items()
    ] + [
        f"cost_ratio: {study.cost_ratio:.4f}",
        f"net_profit: {study.net_profit}",
    ])
    for regime in ("low", "high"):
        write(f"fig10_{regime}",
              fmt_series(figures.fig10_workload_effect(regime)))
    if not args.skip_slow:
        times = figures.fig11_computation_time(
            server_counts=(1, 2, 3, 4), repeats=1, milp_method="bb"
        )
        write("fig11_computation_time",
              [f"servers={m}: {seconds:.4f}s" for m, seconds in times.items()])
    print(f"done: series written to {out}/")
    return 0


def _trace_experiment(scenario: str) -> Any:
    if scenario == "section5":
        from repro.experiments.section5 import section5_experiment
        return section5_experiment("low")
    if scenario == "section6":
        from repro.experiments.section6 import section6_experiment
        return section6_experiment()
    from repro.experiments.section7 import section7_experiment
    return section7_experiment()


def _configure_trace(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenario",
                        choices=["section5", "section6", "section7"],
                        default="section6",
                        help="experiment to trace (default: the 24-slot "
                             "§VI day)")
    parser.add_argument("--slots", type=int, default=None,
                        help="number of slots (default: the whole trace)")
    parser.add_argument("--out", type=str, default=None,
                        help="write SlotTrace records to this JSONL file")
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool size; per-worker collectors are "
                             "merged at the barrier (default 1: serial)")
    parser.add_argument("--level-method", type=str, default="auto",
                        choices=["auto", "lp", "milp", "bigm", "greedy"])
    parser.add_argument("--lp-method", type=str, default="simplex",
                        choices=["highs", "simplex", "ipm"],
                        help="LP backend (default 'simplex': warm-startable, "
                             "so cross-slot hits show up in the traces)")
    parser.add_argument("--iteration-budget", type=int, default=None,
                        help="iteration/node cap for the primary solver; a "
                             "tiny value forces failures so the fallback "
                             "chain shows up in the traces")


@register_subcommand(
    "trace",
    help_text="run a scenario with telemetry on and dump per-slot traces",
    configure=_configure_trace,
)
def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.optimizer import OptimizerConfig
    from repro.obs import InMemoryCollector, write_traces

    if args.workers < 1:
        print(
            f"error: --workers must be >= 1 (got {args.workers}); "
            "use --workers 1 for a serial run",
            file=sys.stderr,
        )
        return 2
    if args.iteration_budget is not None and args.iteration_budget < 1:
        print(
            f"error: --iteration-budget must be >= 1 (got "
            f"{args.iteration_budget}); omit it for unbounded solves",
            file=sys.stderr,
        )
        return 2
    exp = _trace_experiment(args.scenario)
    config = OptimizerConfig(level_method=args.level_method,
                             lp_method=args.lp_method,
                             solver_iteration_budget=args.iteration_budget)
    collector = InMemoryCollector()
    if args.workers == 1:
        from repro.sim.slotted import run_simulation
        run_simulation(
            exp.optimizer(config=config), exp.trace, exp.market,
            num_slots=args.slots, collector=collector,
        )
    else:
        from repro.sim.parallel import DispatcherSpec, parallel_run_simulation
        parallel_run_simulation(
            exp.topology, DispatcherSpec("optimized", {"config": config}),
            exp.trace, exp.market,
            num_slots=args.slots, workers=args.workers, collector=collector,
        )

    traces = collector.slot_traces
    rows = [
        [t.slot, t.method, t.warm_start, t.fallback, t.iterations,
         t.objective, t.total_time * 1e3, t.phase_time_total * 1e3]
        for t in traces
    ]
    print(render_table(
        ["slot", "method", "warm", "fb", "iters", "objective ($)",
         "total ms", "phases ms"],
        rows, title=f"{exp.name}: per-slot solver traces", float_fmt=",.2f",
    ))
    warm = collector.warm_start_counts()
    print("\nwarm-start outcomes: "
          + ", ".join(f"{k}={v}" for k, v in sorted(warm.items())))
    fallback = collector.fallback_counts()
    print("fallback levels: "
          + ", ".join(f"level{k}={v}" for k, v in sorted(fallback.items())))
    interesting = {
        name: value for name, value in sorted(collector.counters.items())
        if not name.startswith("controller.")
    }
    if interesting:
        print("counters: "
              + ", ".join(f"{k}={v:g}" for k, v in interesting.items()))
    if args.out is not None:
        count = write_traces(traces, args.out)
        print(f"wrote {count} trace records to {args.out}")
    return 0


# ------------------------------------------------- registry-driven wiring

# Importing the subsystem CLI modules registers their subcommands
# (lint, audit, bench, stream).  Order here is display order in --help.
import repro.analysis.cli  # noqa: E402,F401  (registration side effect)
import repro.analysis.model.cli  # noqa: E402,F401
import repro.analysis.certify.cli  # noqa: E402,F401
import repro.analysis.arch.cli  # noqa: E402,F401
import repro.analysis.check  # noqa: E402,F401
import repro.bench.cli  # noqa: E402,F401
import repro.stream.cli  # noqa: E402,F401


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser from the registry."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Profit-aware load balancing for distributed cloud data "
            "centers (IPDPS-W 2013 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for command in registered_subcommands():
        sub_parser = sub.add_parser(command.name, help=command.help_text)
        if command.configure is not None:
            command.configure(sub_parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return get_subcommand(args.command).run(args)
