"""Reproducible random-number stream management.

Simulations in this library are deterministic given a seed.  The
:class:`RandomStreams` helper derives independent child generators for
named subsystems (arrivals, service times, trace synthesis, ...) from a
single root seed, so that changing how one subsystem consumes randomness
does not perturb another subsystem's stream.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

__all__ = ["RandomStreams", "as_generator"]

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`."""
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


class RandomStreams:
    """Derive named, independent random generators from one root seed.

    Examples
    --------
    >>> streams = RandomStreams(42)
    >>> arrivals = streams.stream("arrivals")
    >>> service = streams.stream("service")
    >>> arrivals is streams.stream("arrivals")
    True
    """

    def __init__(self, seed: Optional[int] = None):
        self._root = np.random.SeedSequence(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            # Derive a child seed deterministically from the stream name so
            # that stream creation order does not matter.  The root's own
            # spawn_key is preserved so forked RandomStreams stay distinct.
            digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=tuple(self._root.spawn_key)
                + tuple(int(b) for b in digest),
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def spawn(self) -> "RandomStreams":
        """Return a fresh :class:`RandomStreams` forked from this one."""
        child = RandomStreams()
        child._root = self._root.spawn(1)[0]
        return child
