"""Plain-text table rendering for benchmark and example output.

The benchmark harness regenerates the paper's tables as aligned ASCII
tables; this module is the single place that formats them.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

__all__ = ["render_table"]


def _format_cell(value, float_fmt: str) -> str:
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
    float_fmt: str = ".4g",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row sequences; each row must have ``len(headers)``
        entries.  Floats are formatted with ``float_fmt``.
    title:
        Optional title line printed above the table.
    float_fmt:
        ``format()`` spec applied to float cells.
    """
    str_rows = []
    for row in rows:
        cells = [_format_cell(v, float_fmt) for v in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(cells)} cells, expected {len(headers)}"
            )
        str_rows.append(cells)

    widths = [len(h) for h in headers]
    for cells in str_rows:
        for j, cell in enumerate(cells):
            widths[j] = max(widths[j], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[j]) for j, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_line(cells) for cells in str_rows)
    return "\n".join(lines)
