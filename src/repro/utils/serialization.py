"""JSON (de)serialization of system configurations.

Lets topologies, traces, and markets round-trip through plain dicts /
JSON files, so experiments can be driven by config files and results
reproduced outside Python sessions.  Only configuration is serialized —
plans and results are derived artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Union

import numpy as np

# The codecs serialize types from layers above utils (cloud, core,
# market, workload); importing them eagerly here would invert the
# layering (utils is the stdlib-only bottom — see AR010), so every
# domain type is imported lazily inside the codec that needs it.
if TYPE_CHECKING:
    from repro.cloud.topology import CloudTopology
    from repro.market.market import MultiElectricityMarket
    from repro.workload.traces import WorkloadTrace

__all__ = [
    "topology_to_dict",
    "topology_from_dict",
    "market_to_dict",
    "market_from_dict",
    "trace_to_dict",
    "trace_from_dict",
    "save_json",
    "load_json",
]

PathLike = Union[str, Path]


# ----------------------------------------------------------------- topology

def topology_to_dict(topology: CloudTopology) -> Dict[str, Any]:
    """Serialize a topology to a JSON-safe dict."""
    return {
        "request_classes": [
            {
                "name": rc.name,
                "tuf": {
                    "values": rc.tuf.values.tolist(),
                    "deadlines": rc.tuf.deadlines.tolist(),
                },
                "transfer_unit_cost": rc.transfer_unit_cost,
                "description": rc.description,
            }
            for rc in topology.request_classes
        ],
        "frontends": [fe.name for fe in topology.frontends],
        "datacenters": [
            {
                "name": dc.name,
                "num_servers": dc.num_servers,
                "service_rates": dc.service_rates.tolist(),
                "energy_per_request": dc.energy_per_request.tolist(),
                "server_capacity": dc.server_capacity,
                "pue": dc.pue,
                "idle_power_kw": dc.idle_power_kw,
            }
            for dc in topology.datacenters
        ],
        "distances": topology.distances.tolist(),
    }


def topology_from_dict(data: Dict[str, Any]) -> "CloudTopology":
    """Rebuild a topology from :func:`topology_to_dict` output."""
    from repro.cloud.datacenter import DataCenter
    from repro.cloud.frontend import FrontEnd
    from repro.cloud.topology import CloudTopology
    from repro.core.request import RequestClass
    from repro.core.tuf import StepDownwardTUF

    classes = tuple(
        RequestClass(
            name=rc["name"],
            tuf=StepDownwardTUF(values=rc["tuf"]["values"],
                                deadlines=rc["tuf"]["deadlines"]),
            transfer_unit_cost=float(rc.get("transfer_unit_cost", 0.0)),
            description=rc.get("description", ""),
        )
        for rc in data["request_classes"]
    )
    frontends = tuple(FrontEnd(name) for name in data["frontends"])
    datacenters = tuple(
        DataCenter(
            name=dc["name"],
            num_servers=int(dc["num_servers"]),
            service_rates=np.asarray(dc["service_rates"], dtype=float),
            energy_per_request=np.asarray(dc["energy_per_request"],
                                          dtype=float),
            server_capacity=float(dc.get("server_capacity", 1.0)),
            pue=float(dc.get("pue", 1.0)),
            idle_power_kw=float(dc.get("idle_power_kw", 0.0)),
        )
        for dc in data["datacenters"]
    )
    return CloudTopology(
        request_classes=classes,
        frontends=frontends,
        datacenters=datacenters,
        distances=np.asarray(data["distances"], dtype=float),
    )


# ------------------------------------------------------------------- market

def market_to_dict(market: MultiElectricityMarket) -> Dict[str, Any]:
    """Serialize a market to a JSON-safe dict."""
    return {
        "traces": [
            {"location": t.location, "prices": t.prices.tolist()}
            for t in market.traces
        ]
    }


def market_from_dict(data: Dict[str, Any]) -> "MultiElectricityMarket":
    """Rebuild a market from :func:`market_to_dict` output."""
    from repro.market.market import MultiElectricityMarket
    from repro.market.prices import PriceTrace

    return MultiElectricityMarket([
        PriceTrace(t["location"], np.asarray(t["prices"], dtype=float))
        for t in data["traces"]
    ])


# -------------------------------------------------------------------- trace

def trace_to_dict(trace: WorkloadTrace) -> Dict[str, Any]:
    """Serialize a workload trace to a JSON-safe dict."""
    return {
        "rates": trace.rates.tolist(),
        "slot_duration": trace.slot_duration,
    }


def trace_from_dict(data: Dict[str, Any]) -> "WorkloadTrace":
    """Rebuild a workload trace from :func:`trace_to_dict` output."""
    from repro.workload.traces import WorkloadTrace

    return WorkloadTrace(
        rates=np.asarray(data["rates"], dtype=float),
        slot_duration=float(data.get("slot_duration", 1.0)),
    )


# --------------------------------------------------------------------- I/O

def _kind_codecs():
    """kind tag -> (encode, decode, type); built lazily so the domain
    types stay out of utils' import-time dependencies."""
    from repro.cloud.topology import CloudTopology
    from repro.market.market import MultiElectricityMarket
    from repro.workload.traces import WorkloadTrace

    return {
        "topology": (topology_to_dict, topology_from_dict, CloudTopology),
        "market": (market_to_dict, market_from_dict, MultiElectricityMarket),
        "trace": (trace_to_dict, trace_from_dict, WorkloadTrace),
    }


def save_json(obj, path: PathLike) -> None:
    """Write a topology/market/trace to a JSON file with a kind tag."""
    for kind, (encode, _, cls) in _kind_codecs().items():
        if isinstance(obj, cls):
            payload = {"kind": kind, "data": encode(obj)}
            Path(path).write_text(json.dumps(payload, indent=2))
            return
    raise TypeError(f"cannot serialize object of type {type(obj).__name__}")


def load_json(path: PathLike):
    """Load a topology/market/trace written by :func:`save_json`."""
    payload = json.loads(Path(path).read_text())
    codecs = _kind_codecs()
    kind = payload.get("kind")
    if kind not in codecs:
        raise ValueError(f"unknown or missing kind tag {kind!r}")
    _, decode, _ = codecs[kind]
    return decode(payload["data"])
