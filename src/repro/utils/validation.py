"""Lightweight argument validation helpers.

Every public constructor in the library validates its numeric inputs with
these helpers so that configuration errors surface at build time rather
than as NaNs deep inside a solver run.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "check_finite",
    "check_nonnegative",
    "check_positive",
    "check_probability",
    "check_shape",
    "check_strictly_increasing",
]


def check_finite(value, name: str) -> np.ndarray:
    """Return ``value`` as an ndarray, raising ``ValueError`` on NaN/inf."""
    arr = np.asarray(value, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return arr


def check_nonnegative(value, name: str) -> np.ndarray:
    """Return ``value`` as an ndarray, raising if any entry is negative."""
    arr = check_finite(value, name)
    if np.any(arr < 0):
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return arr


def check_positive(value, name: str) -> np.ndarray:
    """Return ``value`` as an ndarray, raising unless all entries are > 0."""
    arr = check_finite(value, name)
    if np.any(arr <= 0):
        raise ValueError(f"{name} must be strictly positive, got {value!r}")
    return arr


def check_probability(value, name: str) -> np.ndarray:
    """Return ``value`` as an ndarray constrained to [0, 1]."""
    arr = check_finite(value, name)
    if np.any(arr < 0) or np.any(arr > 1):
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return arr


def check_shape(arr: np.ndarray, shape: Sequence[int], name: str) -> np.ndarray:
    """Raise ``ValueError`` unless ``arr.shape == tuple(shape)``."""
    arr = np.asarray(arr)
    if arr.shape != tuple(shape):
        raise ValueError(f"{name} must have shape {tuple(shape)}, got {arr.shape}")
    return arr


def check_strictly_increasing(values: Iterable[float], name: str) -> np.ndarray:
    """Raise ``ValueError`` unless ``values`` is strictly increasing."""
    arr = check_finite(list(values), name)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional")
    if arr.size >= 2 and np.any(np.diff(arr) <= 0):
        raise ValueError(f"{name} must be strictly increasing, got {arr!r}")
    return arr
