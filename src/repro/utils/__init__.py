"""Shared utilities: validation, RNG management, and table rendering."""

from repro.utils.validation import (
    check_finite,
    check_nonnegative,
    check_positive,
    check_probability,
    check_shape,
    check_strictly_increasing,
)
from repro.utils.rng import RandomStreams, as_generator
from repro.utils.tables import render_table
from repro.utils.ascii_plot import line_chart, sparkline

# NOTE: repro.utils.serialization is intentionally NOT imported here —
# it depends on repro.core/market/workload, which themselves import
# repro.utils; import it directly or via the top-level repro package.

__all__ = [
    "sparkline",
    "line_chart",
    "check_finite",
    "check_nonnegative",
    "check_positive",
    "check_probability",
    "check_shape",
    "check_strictly_increasing",
    "RandomStreams",
    "as_generator",
    "render_table",
]
