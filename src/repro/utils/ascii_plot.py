"""Terminal plotting: sparklines and block line charts.

The benchmark harness and examples regenerate the paper's *figures*;
these helpers render the series directly in the terminal so the shapes
(who wins, where the crossovers fall) are visible without matplotlib.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.utils.validation import check_finite

__all__ = ["sparkline", "line_chart"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line unicode sparkline of ``values``.

    Examples
    --------
    >>> sparkline([0, 1, 2, 3])
    '▁▃▆█'
    """
    arr = check_finite(list(values), "values")
    if arr.size == 0:
        return ""
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-300:
        return _BLOCKS[0] * arr.size
    scaled = (arr - lo) / (hi - lo) * (len(_BLOCKS) - 1)
    return "".join(_BLOCKS[int(round(v))] for v in scaled)


def line_chart(
    series: Dict[str, Sequence[float]],
    height: int = 12,
    width: Optional[int] = None,
    title: Optional[str] = None,
) -> str:
    """Multi-series block line chart.

    Each series gets its own marker character; points are plotted on a
    character grid with a y-axis of min/max labels.  Series must share
    the same length.

    Parameters
    ----------
    series:
        Mapping of label to numeric sequence.
    height:
        Number of chart rows.
    width:
        Number of columns (defaults to the series length).
    """
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError(f"series have inconsistent lengths: {sorted(lengths)}")
    n = lengths.pop()
    if n == 0:
        raise ValueError("series are empty")
    if height < 2:
        raise ValueError("height must be >= 2")
    width = n if width is None else int(width)

    markers = "ox+*#@%&"
    all_values = np.concatenate([
        check_finite(list(v), name) for name, v in series.items()
    ])
    lo, hi = float(all_values.min()), float(all_values.max())
    span = hi - lo if hi > lo else 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for idx, (name, values) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        arr = np.asarray(values, dtype=float)
        # Resample onto the chart width.
        xs = np.linspace(0, n - 1, width)
        ys = np.interp(xs, np.arange(n), arr)
        for col, y in enumerate(ys):
            row = int(round((y - lo) / span * (height - 1)))
            row = height - 1 - min(max(row, 0), height - 1)
            if grid[row][col] == " ":
                grid[row][col] = marker
            elif grid[row][col] != marker:
                grid[row][col] = "∎"  # overlap

    lines: List[str] = []
    if title:
        lines.append(title)
    label_hi, label_lo = f"{hi:,.4g}", f"{lo:,.4g}"
    pad = max(len(label_hi), len(label_lo))
    for r, row in enumerate(grid):
        if r == 0:
            prefix = label_hi.rjust(pad)
        elif r == height - 1:
            prefix = label_lo.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row)}")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * pad + f" +{'-' * width}")
    lines.append(" " * pad + f"  {legend}")
    return "\n".join(lines)
