"""Cloud topology: front-ends, data centers, request classes, distances.

:class:`CloudTopology` is the static system description consumed by the
optimizer, the baselines, and the slotted simulator.  It validates that
all components agree on the number of request classes and provides the
index bookkeeping (``k``, ``s``, ``i``, ``l`` in the paper's notation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.cloud.datacenter import DataCenter
from repro.cloud.frontend import FrontEnd
from repro.cloud.transfer import TransferModel
from repro.core.request import RequestClass
from repro.core.tuf import ConstantTUF
from repro.utils.rng import as_generator
from repro.utils.validation import check_nonnegative

__all__ = ["CloudTopology", "random_topology"]


@dataclass(frozen=True)
class CloudTopology:
    """The full static system: ``K`` classes, ``S`` front-ends, ``L`` DCs.

    Attributes
    ----------
    request_classes:
        The ``K`` request classes, in index order.
    frontends:
        The ``S`` front-end servers, in index order.
    datacenters:
        The ``L`` data centers, in index order.
    distances:
        ``(S, L)`` matrix of front-end-to-data-center distances in miles.
    """

    request_classes: Tuple[RequestClass, ...]
    frontends: Tuple[FrontEnd, ...]
    datacenters: Tuple[DataCenter, ...]
    distances: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "request_classes", tuple(self.request_classes))
        object.__setattr__(self, "frontends", tuple(self.frontends))
        object.__setattr__(self, "datacenters", tuple(self.datacenters))
        if not self.request_classes:
            raise ValueError("need at least one request class")
        if not self.frontends:
            raise ValueError("need at least one front-end")
        if not self.datacenters:
            raise ValueError("need at least one data center")
        dist = check_nonnegative(self.distances, "distances")
        expected = (len(self.frontends), len(self.datacenters))
        if dist.shape != expected:
            raise ValueError(f"distances must have shape {expected}, got {dist.shape}")
        object.__setattr__(self, "distances", dist)
        k = len(self.request_classes)
        for dc in self.datacenters:
            if dc.num_request_classes != k:
                raise ValueError(
                    f"data center {dc.name!r} is configured for "
                    f"{dc.num_request_classes} request classes, expected {k}"
                )

    # ---------------------------------------------------------------- sizes

    @property
    def num_classes(self) -> int:
        """``K``: number of request classes."""
        return len(self.request_classes)

    @property
    def num_frontends(self) -> int:
        """``S``: number of front-end servers."""
        return len(self.frontends)

    @property
    def num_datacenters(self) -> int:
        """``L``: number of data centers."""
        return len(self.datacenters)

    @property
    def servers_per_datacenter(self) -> np.ndarray:
        """``(L,)`` array of ``M_l`` values."""
        return np.array([dc.num_servers for dc in self.datacenters], dtype=int)

    @property
    def num_servers(self) -> int:
        """Total server count across data centers."""
        return int(self.servers_per_datacenter.sum())

    # ------------------------------------------------------------- matrices

    @property
    def service_rates(self) -> np.ndarray:
        """``(K, L)`` matrix of ``mu_{k,l}`` service rates."""
        return np.stack([dc.service_rates for dc in self.datacenters], axis=1)

    @property
    def energy_per_request(self) -> np.ndarray:
        """``(K, L)`` matrix of ``P_{k,l}`` per-request energies (kWh)."""
        return np.stack([dc.energy_per_request for dc in self.datacenters], axis=1)

    @property
    def server_capacities(self) -> np.ndarray:
        """``(L,)`` array of normalized per-server capacities ``C_l``."""
        return np.array([dc.server_capacity for dc in self.datacenters])

    @property
    def transfer_unit_costs(self) -> np.ndarray:
        """``(K,)`` array of ``TranCost_k`` values."""
        return np.array([rc.transfer_unit_cost for rc in self.request_classes])

    def transfer_model(self) -> TransferModel:
        """Build the :class:`TransferModel` for this topology."""
        return TransferModel(self.transfer_unit_costs, self.distances)

    # ----------------------------------------------------------- iteration

    def iter_servers(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(l, i)`` pairs over every server."""
        for l, dc in enumerate(self.datacenters):
            for i in range(dc.num_servers):
                yield l, i

    def server_offsets(self) -> np.ndarray:
        """``(L+1,)`` prefix offsets for flattening (l, i) → flat index."""
        return np.concatenate([[0], np.cumsum(self.servers_per_datacenter)])

    def flat_server_index(self, l: int, i: int) -> int:
        """Flatten data-center-local server index to a global index."""
        offsets = self.server_offsets()
        if not (0 <= l < self.num_datacenters):
            raise IndexError(f"data center index {l} out of range")
        if not (0 <= i < self.datacenters[l].num_servers):
            raise IndexError(f"server index {i} out of range for DC {l}")
        return int(offsets[l] + i)

    # ----------------------------------------------------------- transforms

    def with_datacenters(self, datacenters: Sequence[DataCenter]) -> "CloudTopology":
        """Copy with replaced data centers (used in capacity sweeps)."""
        return CloudTopology(
            request_classes=self.request_classes,
            frontends=self.frontends,
            datacenters=tuple(datacenters),
            distances=self.distances,
        )

    def scaled_capacity(self, factor: float) -> "CloudTopology":
        """Copy with every data center's service rates scaled by ``factor``."""
        return self.with_datacenters([dc.scaled_rates(factor) for dc in self.datacenters])

    def with_servers_per_datacenter(self, num_servers: int) -> "CloudTopology":
        """Copy with every data center resized to ``num_servers`` servers."""
        return self.with_datacenters(
            [dc.with_servers(num_servers) for dc in self.datacenters]
        )


def random_topology(
    num_classes: int = 3,
    num_frontends: int = 4,
    num_datacenters: int = 3,
    servers_per_datacenter: int = 6,
    seed: int = 0,
) -> CloudTopology:
    """Generate a random but well-formed topology (testing/examples).

    Service rates, energies, utilities, deadlines, and distances are
    drawn from ranges matching the magnitudes of the paper's Tables
    III-VII.
    """
    rng = as_generator(seed)
    classes = []
    for k in range(num_classes):
        value = float(rng.uniform(5.0, 40.0))
        deadline = float(rng.uniform(0.005, 0.05))
        classes.append(
            RequestClass(
                name=f"request{k + 1}",
                tuf=ConstantTUF(value=value, deadline=deadline),
                transfer_unit_cost=float(rng.uniform(0.001, 0.01)),
            )
        )
    datacenters = []
    for l in range(num_datacenters):
        datacenters.append(
            DataCenter(
                name=f"datacenter{l + 1}",
                num_servers=servers_per_datacenter,
                service_rates=rng.uniform(100.0, 200.0, size=num_classes),
                energy_per_request=rng.uniform(1e-4, 1e-3, size=num_classes),
            )
        )
    frontends = [FrontEnd(f"frontend{s + 1}") for s in range(num_frontends)]
    distances = rng.uniform(100.0, 2500.0, size=(num_frontends, num_datacenters))
    return CloudTopology(
        request_classes=tuple(classes),
        frontends=tuple(frontends),
        datacenters=tuple(datacenters),
        distances=distances,
    )
