"""Cloud infrastructure substrate.

Models the paper's system architecture (§III-A, Fig. 2): ``S`` front-end
servers collect requests and dispatch them over the network to servers
in ``L`` heterogeneous data centers (homogeneous servers within a data
center), with virtualization sharing each server's CPU among per-type
VMs.
"""

from repro.cloud.datacenter import DataCenter, Server
from repro.cloud.frontend import FrontEnd
from repro.cloud.topology import CloudTopology, random_topology
from repro.cloud.energy import EnergyModel
from repro.cloud.transfer import TransferModel
from repro.cloud.sla import ServiceLevelAgreement
from repro.cloud.heterogeneous import (
    LocationSpec,
    ServerGroup,
    build_heterogeneous_topology,
)

__all__ = [
    "Server",
    "DataCenter",
    "FrontEnd",
    "CloudTopology",
    "random_topology",
    "EnergyModel",
    "TransferModel",
    "ServiceLevelAgreement",
    "ServerGroup",
    "LocationSpec",
    "build_heterogeneous_topology",
]
