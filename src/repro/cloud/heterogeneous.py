"""Heterogeneous servers within one location (paper §III-A extension).

The paper assumes homogeneous servers per data center but notes the
model "can be easily extended to heterogeneous data centers with
heterogeneous servers".  The extension is structural: a location with
several homogeneous *server groups* is modelled as several co-located
data centers — same electricity price, same distances — one per group.
This module builds that expansion so the optimizer, baselines, and
simulator run unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.cloud.datacenter import DataCenter
from repro.cloud.frontend import FrontEnd
from repro.cloud.topology import CloudTopology
from repro.core.request import RequestClass
from repro.market.market import MultiElectricityMarket
from repro.market.prices import PriceTrace
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["ServerGroup", "LocationSpec", "build_heterogeneous_topology"]


@dataclass(frozen=True)
class ServerGroup:
    """One homogeneous group of servers inside a location.

    ``capacity`` scales the group's hardware relative to the baseline
    (paper's ``C_{i,l}``); ``service_rates``/``energy_per_request`` are
    per request class at capacity 1.
    """

    name: str
    count: int
    service_rates: np.ndarray = field(repr=False)
    energy_per_request: np.ndarray = field(repr=False)
    capacity: float = 1.0
    pue: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("group name must be non-empty")
        if self.count < 1:
            raise ValueError("count must be >= 1")
        object.__setattr__(
            self, "service_rates",
            check_positive(self.service_rates, "service_rates"),
        )
        object.__setattr__(
            self, "energy_per_request",
            check_nonnegative(self.energy_per_request, "energy_per_request"),
        )
        check_positive(self.capacity, "capacity")


@dataclass(frozen=True)
class LocationSpec:
    """A physical location: price trace, distances, and server groups."""

    name: str
    price_trace: PriceTrace
    distances: np.ndarray = field(repr=False)  # (S,) miles per front-end
    groups: Tuple[ServerGroup, ...] = ()

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError(f"location {self.name!r} needs at least one group")
        object.__setattr__(
            self, "distances", check_nonnegative(self.distances, "distances")
        )
        object.__setattr__(self, "groups", tuple(self.groups))


def build_heterogeneous_topology(
    request_classes: Sequence[RequestClass],
    frontends: Sequence[FrontEnd],
    locations: Sequence[LocationSpec],
) -> Tuple[CloudTopology, MultiElectricityMarket]:
    """Expand locations-with-groups into a topology + matching market.

    Each server group becomes one (homogeneous) data center named
    ``"<location>/<group>"``; its distance column and price trace are the
    location's.  The returned market has exactly one trace per expanded
    data center, in matching order.
    """
    if not locations:
        raise ValueError("need at least one location")
    datacenters: List[DataCenter] = []
    traces: List[PriceTrace] = []
    distance_cols: List[np.ndarray] = []
    num_frontends = len(frontends)
    for loc in locations:
        if loc.distances.shape != (num_frontends,):
            raise ValueError(
                f"location {loc.name!r} needs {num_frontends} distances, "
                f"got {loc.distances.shape}"
            )
        for group in loc.groups:
            datacenters.append(DataCenter(
                name=f"{loc.name}/{group.name}",
                num_servers=group.count,
                service_rates=group.service_rates,
                energy_per_request=group.energy_per_request,
                server_capacity=group.capacity,
                pue=group.pue,
            ))
            traces.append(PriceTrace(
                f"{loc.price_trace.location} ({group.name})",
                loc.price_trace.prices,
            ))
            distance_cols.append(loc.distances)
    topology = CloudTopology(
        request_classes=tuple(request_classes),
        frontends=tuple(frontends),
        datacenters=tuple(datacenters),
        distances=np.stack(distance_cols, axis=1),
    )
    return topology, MultiElectricityMarket(traces)
