"""Service level agreements.

An SLA bundles the per-class TUFs into the provider-level revenue view:
it answers "what do we earn for serving class ``k`` at expected delay
``R``" and classifies delays into SLA levels (the paper's multi-level
SLAs, §I/§III-B1).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.core.request import RequestClass

__all__ = ["ServiceLevelAgreement"]


class ServiceLevelAgreement:
    """Multi-class, multi-level SLA built from request classes.

    Parameters
    ----------
    request_classes:
        The ``K`` request classes in index order; each carries its
        step-downward TUF (one TUF level == one SLA level).
    """

    def __init__(self, request_classes: Sequence[RequestClass]) -> None:
        if not request_classes:
            raise ValueError("need at least one request class")
        self._classes = list(request_classes)

    @property
    def num_classes(self) -> int:
        """Number of request classes ``K``."""
        return len(self._classes)

    @property
    def request_classes(self) -> Sequence[RequestClass]:
        """The request classes, in index order."""
        return list(self._classes)

    def revenue_per_request(self, k: int, delay: float) -> float:
        """$ earned for one class-``k`` request at expected delay."""
        return float(self._classes[k].tuf.utility(delay))

    def revenue_rate(self, delays: np.ndarray, rates: np.ndarray) -> float:
        """Aggregate revenue per time unit.

        Parameters
        ----------
        delays:
            Shape ``(K,)`` expected delays per class.
        rates:
            Shape ``(K,)`` served rates per class.
        """
        delays = np.asarray(delays, dtype=float)
        rates = np.asarray(rates, dtype=float)
        if delays.shape != (self.num_classes,) or rates.shape != (self.num_classes,):
            raise ValueError(
                f"delays and rates must have shape ({self.num_classes},)"
            )
        total = 0.0
        for k, rc in enumerate(self._classes):
            total += float(rc.tuf.utility(delays[k])) * rates[k]
        return total

    def level_achieved(self, k: int, delay: float) -> int:
        """0-based SLA level met by class ``k`` at ``delay``; -1 if missed."""
        return self._classes[k].tuf.level_for_delay(delay)

    def meets_deadline(self, k: int, delay: float) -> bool:
        """True iff the class-``k`` final deadline is met."""
        return delay <= self._classes[k].deadline

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Human-readable per-class SLA summary (for reports/examples)."""
        out: Dict[str, Dict[str, float]] = {}
        for rc in self._classes:
            out[rc.name] = {
                "max_value": rc.tuf.max_value,
                "final_deadline": rc.deadline,
                "levels": rc.num_levels,
            }
        return out
