"""Front-end servers.

Front-end servers (index ``s``) are the ingress points that collect
nearby client requests and dispatch them to data-center servers
(paper §III-A, Fig. 2).  They perform no processing themselves; their
role in the model is to anchor per-source arrival rates and
source-to-data-center distances.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FrontEnd"]


@dataclass(frozen=True)
class FrontEnd:
    """One front-end server (request ingress point)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("name must be non-empty")
