"""Processing-energy cost model.

The paper follows Google's per-request energy accounting (Eq. 2) rather
than a server-level power model: processing ``lambda * T`` type-``k``
requests at data center ``l`` during a slot costs

    PCost_k = P_{k,l} * lambda * T * p_l

with ``P_{k,l}`` the per-request energy attribution in kWh (Google's
figure: about 0.0003 kWh per web search) and ``p_l`` the local
electricity price in $/kWh for the slot.

The model optionally multiplies by the data center's PUE — the paper's
own suggested extension for cooling/peripheral energy (§II-A).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cloud.datacenter import DataCenter

__all__ = ["EnergyModel", "GOOGLE_WEB_SEARCH_KWH"]

#: Google's published per-web-search energy (paper ref. [25]).
GOOGLE_WEB_SEARCH_KWH = 0.0003


class EnergyModel:
    """Per-request ("Google model") energy dollar-cost computations.

    Parameters
    ----------
    datacenters:
        Data centers in index order ``l``; supplies ``P_{k,l}`` and PUE.
    apply_pue:
        When True, processing energy is multiplied by each data center's
        PUE to account for cooling and peripheral equipment.
    """

    def __init__(self, datacenters: Sequence[DataCenter], apply_pue: bool = False) -> None:
        if not datacenters:
            raise ValueError("need at least one data center")
        classes = {dc.num_request_classes for dc in datacenters}
        if len(classes) != 1:
            raise ValueError(
                f"data centers disagree on the number of request classes: {classes}"
            )
        self._datacenters = list(datacenters)
        self._apply_pue = bool(apply_pue)
        # (K, L) energy per request, PUE-adjusted if requested.
        energy = np.stack([dc.energy_per_request for dc in datacenters], axis=1)
        if apply_pue:
            energy = energy * np.array([dc.pue for dc in datacenters])[None, :]
        self._energy_kwh = energy

    @property
    def num_classes(self) -> int:
        """Number of request classes ``K``."""
        return int(self._energy_kwh.shape[0])

    @property
    def num_datacenters(self) -> int:
        """Number of data centers ``L``."""
        return int(self._energy_kwh.shape[1])

    @property
    def energy_kwh(self) -> np.ndarray:
        """``(K, L)`` per-request energy in kWh (PUE-adjusted if enabled)."""
        return self._energy_kwh.copy()

    def per_request_cost(self, prices: np.ndarray) -> np.ndarray:
        """``(K, L)`` $ per request given per-location prices ($/kWh)."""
        prices = np.asarray(prices, dtype=float)
        if prices.shape != (self.num_datacenters,):
            raise ValueError(
                f"prices must have shape ({self.num_datacenters},), got {prices.shape}"
            )
        return self._energy_kwh * prices[None, :]

    def slot_cost(
        self, rates: np.ndarray, prices: np.ndarray, slot_duration: float
    ) -> float:
        """Total processing dollars for one slot.

        Parameters
        ----------
        rates:
            Shape ``(K, L)`` aggregate processed rates per class and data
            center (requests per time unit).
        prices:
            Shape ``(L,)`` electricity prices in $/kWh for the slot.
        slot_duration:
            Slot length ``T`` in the same time unit as the rates.
        """
        rates = np.asarray(rates, dtype=float)
        if rates.shape != self._energy_kwh.shape:
            raise ValueError(
                f"rates must have shape {self._energy_kwh.shape}, got {rates.shape}"
            )
        return float(np.sum(self.per_request_cost(prices) * rates) * slot_duration)

    def slot_energy_kwh(self, rates: np.ndarray, slot_duration: float) -> float:
        """Total energy (kWh) consumed in one slot for ``rates``."""
        rates = np.asarray(rates, dtype=float)
        if rates.shape != self._energy_kwh.shape:
            raise ValueError(
                f"rates must have shape {self._energy_kwh.shape}, got {rates.shape}"
            )
        return float(np.sum(self._energy_kwh * rates) * slot_duration)
