"""Request transfer (network) cost model.

Paper Eq. 3: the dollar cost of moving type-``k`` requests from
front-end ``s`` to data center ``l`` during a slot is

    TCost_k = TranCost_k * d_{s,l} * lambda_{k,s,l} * T

where ``TranCost_k`` ($/(mile·request)) captures per-type request size
differences and ``d_{s,l}`` is the source-destination distance in miles.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.utils.validation import check_nonnegative

__all__ = ["TransferModel"]

#: Anything :func:`check_nonnegative` coerces to a float ndarray.
ArrayLike = Union[np.ndarray, Sequence[float], Sequence[Sequence[float]]]


class TransferModel:
    """Distance-proportional per-request transfer costs.

    Parameters
    ----------
    unit_costs:
        Shape ``(K,)``; ``unit_costs[k]`` is ``TranCost_k`` in
        $/(mile·request).
    distances:
        Shape ``(S, L)``; ``distances[s, l]`` is ``d_{s,l}`` in miles.
    """

    def __init__(self, unit_costs: ArrayLike, distances: ArrayLike) -> None:
        self._unit_costs = check_nonnegative(unit_costs, "unit_costs")
        self._distances = check_nonnegative(distances, "distances")
        if self._unit_costs.ndim != 1:
            raise ValueError("unit_costs must be 1-D of shape (K,)")
        if self._distances.ndim != 2:
            raise ValueError("distances must be 2-D of shape (S, L)")

    @property
    def num_classes(self) -> int:
        """Number of request classes ``K``."""
        return int(self._unit_costs.size)

    @property
    def num_frontends(self) -> int:
        """Number of front-end servers ``S``."""
        return int(self._distances.shape[0])

    @property
    def num_datacenters(self) -> int:
        """Number of data centers ``L``."""
        return int(self._distances.shape[1])

    @property
    def unit_costs(self) -> np.ndarray:
        """Copy of the per-class unit costs."""
        return self._unit_costs.copy()

    @property
    def distances(self) -> np.ndarray:
        """Copy of the ``(S, L)`` distance matrix."""
        return self._distances.copy()

    def per_request_cost(self) -> np.ndarray:
        """``(K, S, L)`` matrix: $ to transfer one type-``k`` request s→l."""
        return self._unit_costs[:, None, None] * self._distances[None, :, :]

    def slot_cost(self, rates: np.ndarray, slot_duration: float) -> float:
        """Total transfer dollars for one slot.

        Parameters
        ----------
        rates:
            Shape ``(K, S, L)`` dispatched rates ``lambda_{k,s,l}``
            (requests per time unit, servers within a data center summed).
        slot_duration:
            Slot length ``T`` in the same time unit as the rates.
        """
        rates = np.asarray(rates, dtype=float)
        expected = (self.num_classes, self.num_frontends, self.num_datacenters)
        if rates.shape != expected:
            raise ValueError(f"rates must have shape {expected}, got {rates.shape}")
        return float(np.sum(self.per_request_cost() * rates) * slot_duration)
