"""Data centers and servers.

Per the paper (§III-A): data centers are heterogeneous while the servers
inside one data center are homogeneous; a powered-on server always runs
at its maximum speed; virtualization lets multiple request-type VMs share
one server's CPU.

Service rates (``mu_{k,l}``: type-``k`` requests per time unit at full
capacity) and per-request energy attributions (``P_{k,l}`` in kWh, the
"Google model" of Eq. 2) are location-dependent (Tables III, IV, VI),
so they live here rather than on :class:`repro.core.request.RequestClass`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["Server", "DataCenter"]


@dataclass(frozen=True)
class Server:
    """One physical server: index ``i`` within data center ``l``.

    ``capacity`` is the normalized processing capacity ``C_{i,l}``
    (the paper normalizes to 1); the effective service rate of the
    type-``k`` VM holding CPU share ``phi`` is ``phi * capacity * mu_k``.
    """

    datacenter: str
    index: int
    capacity: float = 1.0

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("server index must be non-negative")
        check_positive(self.capacity, "capacity")


@dataclass(frozen=True)
class DataCenter:
    """A data center (index ``l``) of ``num_servers`` homogeneous servers.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"datacenter1"``.
    num_servers:
        ``M_l``, the number of (homogeneous) servers.  Zero is allowed
        (a fully failed data center, cf. :mod:`repro.sim.failures`):
        the formulations then force its load to zero.
    service_rates:
        Shape ``(K,)``; ``service_rates[k]`` is ``mu_{k,l}``, the rate at
        which one full server processes type-``k`` requests (requests per
        time unit at capacity 1).
    energy_per_request:
        Shape ``(K,)``; ``energy_per_request[k]`` is ``P_{k,l}`` in kWh
        per request (paper Eq. 2, calibrated from Google's ~0.0003 kWh
        per web search).
    server_capacity:
        ``C_l``, normalized capacity of each server (default 1.0).
    pue:
        Power-usage-effectiveness multiplier; the paper proposes PUE as
        the extension hook for cooling/peripheral energy (§II-A).  1.0
        reproduces the paper's experiments.
    idle_power_kw:
        Idle draw of one powered-on server in kW.  The paper's Google
        model charges energy per *request* only (idle servers are free,
        which is why it can treat right-sizing as profit-neutral); a
        non-zero idle power makes powering servers off save real money.
        0.0 reproduces the paper.  Idle energy per slot is
        ``idle_power_kw * slot_duration`` kWh — i.e. the slot duration
        is read in *hours* for idle accounting, matching the §VI/§VII
        configurations (hourly slots, ``slot_duration=1``); convert when
        using second-based rates.
    """

    name: str
    num_servers: int
    service_rates: np.ndarray = field(repr=False)
    energy_per_request: np.ndarray = field(repr=False)
    server_capacity: float = 1.0
    pue: float = 1.0
    idle_power_kw: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("name must be non-empty")
        if self.num_servers < 0:
            raise ValueError("num_servers must be >= 0")
        rates = check_positive(self.service_rates, "service_rates")
        energy = check_nonnegative(self.energy_per_request, "energy_per_request")
        if rates.ndim != 1 or energy.ndim != 1:
            raise ValueError("service_rates and energy_per_request must be 1-D")
        if rates.size != energy.size:
            raise ValueError(
                "service_rates and energy_per_request must agree on the "
                f"number of request classes ({rates.size} != {energy.size})"
            )
        check_positive(self.server_capacity, "server_capacity")
        if self.pue < 1.0:
            raise ValueError(f"pue must be >= 1.0, got {self.pue}")
        check_nonnegative(self.idle_power_kw, "idle_power_kw")
        object.__setattr__(self, "service_rates", rates)
        object.__setattr__(self, "energy_per_request", energy)

    @property
    def num_request_classes(self) -> int:
        """Number of request classes ``K`` this data center serves."""
        return int(self.service_rates.size)

    def servers(self) -> Iterator[Server]:
        """Iterate over the homogeneous :class:`Server` objects."""
        for i in range(self.num_servers):
            yield Server(self.name, i, self.server_capacity)

    def max_rate(self, k: int) -> float:
        """Peak type-``k`` throughput of one fully dedicated server."""
        return float(self.server_capacity * self.service_rates[k])

    def total_max_rate(self, k: int) -> float:
        """Peak type-``k`` throughput of the whole data center."""
        return self.num_servers * self.max_rate(k)

    def with_servers(self, num_servers: int) -> "DataCenter":
        """Copy with a different server count (used in capacity sweeps)."""
        return DataCenter(
            name=self.name,
            num_servers=num_servers,
            service_rates=self.service_rates,
            energy_per_request=self.energy_per_request,
            server_capacity=self.server_capacity,
            pue=self.pue,
            idle_power_kw=self.idle_power_kw,
        )

    def scaled_rates(self, factor: float) -> "DataCenter":
        """Copy with all service rates multiplied by ``factor``.

        Used for the paper's §VII "workload effect" study, which rescales
        data-center capacity to create relatively low / relatively high
        workload regimes (Fig. 10).
        """
        check_positive(factor, "factor")
        return DataCenter(
            name=self.name,
            num_servers=self.num_servers,
            service_rates=self.service_rates * float(factor),
            energy_per_request=self.energy_per_request,
            server_capacity=self.server_capacity,
            pue=self.pue,
            idle_power_kw=self.idle_power_kw,
        )
