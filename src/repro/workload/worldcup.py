"""World-Cup-like trace synthesizer (paper §VI, Fig. 5).

The paper replays four different days of the 1998 World Cup web access
log as the per-day request streams of four front-end servers, then
fabricates three request types by shifting each front-end's series in
time.  The raw log is not available offline; this synthesizer generates
per-front-end daily curves with the features that drive the experiment:

* strong diurnal swing (quiet overnight, busy afternoon/evening);
* one or two sharp match-time bursts, at different hours per front-end
  (the four replayed days had different match schedules);
* front-end-specific overall volume.

Rates are expressed in requests/hour to match the §VI capacity tables
(Table IV gives processing capacities in requests/hour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.utils.rng import as_generator
from repro.workload.arrivals import burst_overlay, diurnal_rates
from repro.workload.traces import WorkloadTrace

__all__ = ["FrontEndDayProfile", "worldcup_like_trace", "DEFAULT_PROFILES"]


@dataclass(frozen=True)
class FrontEndDayProfile:
    """Shape parameters of one front-end's synthesized day."""

    base: float
    amplitude: float
    peak_slot: float
    burst_slots: Sequence[int]
    burst_magnitude: float
    burst_width: float = 1.2


#: Four distinct day shapes standing in for the four replayed WC98 days.
DEFAULT_PROFILES = (
    FrontEndDayProfile(base=4_000.0, amplitude=26_000.0, peak_slot=15.0,
                       burst_slots=(14, 20), burst_magnitude=18_000.0),
    FrontEndDayProfile(base=6_000.0, amplitude=20_000.0, peak_slot=16.0,
                       burst_slots=(18,), burst_magnitude=30_000.0),
    FrontEndDayProfile(base=3_000.0, amplitude=30_000.0, peak_slot=14.0,
                       burst_slots=(13,), burst_magnitude=12_000.0),
    FrontEndDayProfile(base=5_000.0, amplitude=16_000.0, peak_slot=17.0,
                       burst_slots=(15, 21), burst_magnitude=22_000.0),
)


def worldcup_like_trace(
    num_classes: int = 3,
    num_slots: int = 24,
    profiles: Sequence[FrontEndDayProfile] = DEFAULT_PROFILES,
    shift_slots: int = 2,
    noise: float = 0.04,
    seed: Optional[int] = 1998,
    slot_duration: float = 1.0,
) -> WorkloadTrace:
    """Synthesize the §VI workload: one day at ``len(profiles)`` front-ends.

    Parameters
    ----------
    num_classes:
        Request types fabricated by circularly shifting each front-end's
        series (paper: three types, shift "by some time units").
    num_slots:
        Slots per day (24 one-hour slots in the paper).
    profiles:
        Day-shape parameters, one per front-end.
    shift_slots:
        Slot shift between consecutive fabricated classes.
    noise:
        Multiplicative log-normal-ish jitter amplitude (0 disables).
    slot_duration:
        Slot length in the rate time unit (1.0: rates are per hour and
        a slot is an hour, matching the §VI tables).
    """
    rng = as_generator(seed)
    series = []
    for profile in profiles:
        curve = diurnal_rates(
            num_slots,
            base=profile.base,
            amplitude=profile.amplitude,
            peak_slot=profile.peak_slot,
            sharpness=2.0,
        )
        for burst_slot in profile.burst_slots:
            curve = burst_overlay(
                curve, burst_slot, profile.burst_magnitude, profile.burst_width
            )
        if noise > 0:
            curve = curve * np.exp(noise * rng.standard_normal(num_slots))
        series.append(curve)
    matrix = np.stack(series, axis=0)  # (S, T)
    return WorkloadTrace.from_single_type(
        matrix, num_classes=num_classes, shift_slots=shift_slots,
        slot_duration=slot_duration,
    )
