"""Arrival-rate predictors.

The paper does not study forecasting but notes (§III) that "existing
prediction methods (e.g. the Kalman Filter) ... can be employed if
necessary" to supply the next slot's average arrival rates.  We provide
the two standard baselines so the controller can be run predictively:

* :class:`EWMAPredictor` — exponentially weighted moving average;
* :class:`KalmanFilterPredictor` — scalar local-level Kalman filter
  (paper ref. [18], Welch & Bishop).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["EWMAPredictor", "KalmanFilterPredictor"]


class EWMAPredictor:
    """Exponentially weighted moving average, one scalar rate stream.

    ``predict()`` before any observation returns ``initial``.
    """

    def __init__(self, alpha: float = 0.5, initial: float = 0.0):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        check_nonnegative(initial, "initial")
        self._alpha = float(alpha)
        self._level: float = float(initial)
        self._observed = False

    def observe(self, value: float) -> None:
        """Fold one observed slot rate into the average."""
        value = float(check_nonnegative(value, "value"))
        if not self._observed:
            self._level = value
            self._observed = True
        else:
            self._level = self._alpha * value + (1.0 - self._alpha) * self._level

    def predict(self) -> float:
        """Forecast for the next slot."""
        return self._level


class KalmanFilterPredictor:
    """Scalar local-level Kalman filter for slot arrival rates.

    State model: ``x_{t+1} = x_t + w`` with ``w ~ N(0, process_var)``;
    observation ``z_t = x_t + v`` with ``v ~ N(0, observation_var)``.
    ``predict()`` returns the current state estimate (the local-level
    model's one-step-ahead forecast), floored at zero since rates are
    non-negative.
    """

    def __init__(
        self,
        process_var: float = 1.0,
        observation_var: float = 4.0,
        initial_estimate: float = 0.0,
        initial_var: float = 1e6,
    ):
        check_positive(process_var, "process_var")
        check_positive(observation_var, "observation_var")
        check_nonnegative(initial_var, "initial_var")
        self._q = float(process_var)
        self._r = float(observation_var)
        self._x = float(initial_estimate)
        self._p = float(initial_var)
        self._innovations: List[float] = []

    @property
    def estimate(self) -> float:
        """Current filtered state estimate."""
        return self._x

    @property
    def variance(self) -> float:
        """Current state estimate variance."""
        return self._p

    @property
    def innovations(self) -> List[float]:
        """History of measurement innovations (for diagnostics)."""
        return list(self._innovations)

    def observe(self, value: float) -> None:
        """Run one predict+update cycle with measurement ``value``."""
        value = float(check_nonnegative(value, "value"))
        # Time update (state is a random walk).
        p_prior = self._p + self._q
        # Measurement update.
        gain = p_prior / (p_prior + self._r)
        innovation = value - self._x
        self._x = self._x + gain * innovation
        self._p = (1.0 - gain) * p_prior
        self._innovations.append(innovation)

    def predict(self) -> float:
        """One-step-ahead forecast (non-negative)."""
        return max(0.0, self._x)

    def predict_series(self, observations: np.ndarray) -> np.ndarray:
        """Filter a whole series, returning one-step-ahead forecasts.

        ``out[t]`` is the forecast for slot ``t`` made *before* observing
        slot ``t``'s value.
        """
        observations = check_nonnegative(observations, "observations")
        out = np.empty_like(observations, dtype=float)
        for t, z in enumerate(observations):
            out[t] = self.predict()
            self.observe(float(z))
        return out
