"""Workload trace container and the paper's trace manipulations.

A :class:`WorkloadTrace` holds per-slot average arrival rates
``lambda_{k,s}(t)`` for every request class ``k`` and front-end ``s``.
The paper builds multi-type traces from single-type logs by *shifting* a
trace along the time axis ("We simply shifted the request traces at a
front-end server by some time units to simulate the requests of three
different service types", §VI-A) and by *duplicating* a trace (§VII-A);
both operations are provided here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["WorkloadTrace"]


@dataclass(frozen=True)
class WorkloadTrace:
    """Per-slot arrival rates for ``K`` classes at ``S`` front-ends.

    Attributes
    ----------
    rates:
        Array of shape ``(K, S, T)``; ``rates[k, s, t]`` is the average
        arrival rate of class-``k`` requests at front-end ``s`` during
        slot ``t`` (requests per time unit).
    slot_duration:
        Slot length ``T`` in the same time unit as the rates (seconds if
        rates are per second, hours if per hour).
    """

    rates: np.ndarray = field(repr=False)
    slot_duration: float = 1.0

    def __post_init__(self):
        arr = check_nonnegative(self.rates, "rates")
        if arr.ndim != 3:
            raise ValueError(f"rates must have shape (K, S, T), got {arr.shape}")
        check_positive(self.slot_duration, "slot_duration")
        object.__setattr__(self, "rates", arr)

    # ----------------------------------------------------------- accessors

    @property
    def num_classes(self) -> int:
        """``K``: number of request classes."""
        return int(self.rates.shape[0])

    @property
    def num_frontends(self) -> int:
        """``S``: number of front-ends."""
        return int(self.rates.shape[1])

    @property
    def num_slots(self) -> int:
        """``T``: number of time slots."""
        return int(self.rates.shape[2])

    def arrivals_at(self, slot: int) -> np.ndarray:
        """``(K, S)`` arrival-rate matrix for slot ``slot`` (wrapping)."""
        return self.rates[:, :, slot % self.num_slots].copy()

    def total_requests(self) -> float:
        """Total request count over the whole trace."""
        return float(self.rates.sum() * self.slot_duration)

    def class_series(self, k: int, s: int) -> np.ndarray:
        """Per-slot rate series for class ``k`` at front-end ``s``."""
        return self.rates[k, s, :].copy()

    # -------------------------------------------------------- manipulations

    @staticmethod
    def from_single_type(
        series: np.ndarray,
        num_classes: int,
        shift_slots: int = 1,
        slot_duration: float = 1.0,
    ) -> "WorkloadTrace":
        """Fabricate a multi-class trace from one single-class log.

        Implements the paper's §VI trick: class ``k`` is the original
        per-front-end series circularly shifted by ``k * shift_slots``
        slots.

        Parameters
        ----------
        series:
            ``(S, T)`` per-front-end single-class rate series.
        num_classes:
            Number of classes to fabricate.
        shift_slots:
            Shift between consecutive fabricated classes.
        """
        arr = check_nonnegative(series, "series")
        if arr.ndim != 2:
            raise ValueError(f"series must have shape (S, T), got {arr.shape}")
        layers = [np.roll(arr, k * shift_slots, axis=1) for k in range(num_classes)]
        return WorkloadTrace(np.stack(layers, axis=0), slot_duration)

    def shifted(self, slots: int) -> "WorkloadTrace":
        """Circularly shift every series by ``slots`` along time."""
        return WorkloadTrace(np.roll(self.rates, slots, axis=2), self.slot_duration)

    def duplicated_as_class(self, shift_slots: int = 0) -> "WorkloadTrace":
        """Append a duplicate of every class, optionally time-shifted.

        Implements §VII-A: "We duplicated the trace and moved along time
        scale to simulate two different types of requests."
        """
        dup = np.roll(self.rates, shift_slots, axis=2)
        return WorkloadTrace(
            np.concatenate([self.rates, dup], axis=0), self.slot_duration
        )

    def scaled(self, factor: float) -> "WorkloadTrace":
        """Multiply every rate by ``factor`` (workload-effect sweeps)."""
        check_positive(factor, "factor")
        return WorkloadTrace(self.rates * float(factor), self.slot_duration)

    def window(self, start: int, stop: int) -> "WorkloadTrace":
        """Restrict to slots ``start..stop-1`` (wrapping)."""
        idx = np.arange(start, stop) % self.num_slots
        return WorkloadTrace(self.rates[:, :, idx], self.slot_duration)

    def select_classes(self, classes: Sequence[int]) -> "WorkloadTrace":
        """Keep only the listed class indices."""
        return WorkloadTrace(self.rates[list(classes), :, :], self.slot_duration)
