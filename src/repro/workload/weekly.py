"""Week-long workload synthesis: diurnal cycles with weekly seasonality.

The paper's studies span one day (§VI) and seven hours (§VII).  A
production deployment plans over weeks, where weekday/weekend volume
differences and slow drift matter.  This generator composes the daily
shapes from :mod:`repro.workload.arrivals` into multi-day traces so the
controller, predictors, and capacity tools can be exercised over longer
horizons.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_nonnegative, check_positive
from repro.workload.arrivals import diurnal_rates
from repro.workload.traces import WorkloadTrace

__all__ = ["weekly_trace", "DEFAULT_DAY_FACTORS"]

#: Relative volume per weekday, Monday..Sunday (weekends quieter — the
#: classic enterprise pattern from the capacity-planning literature the
#: paper cites for demand prediction).
DEFAULT_DAY_FACTORS = (1.0, 1.05, 1.08, 1.06, 1.0, 0.62, 0.55)


def weekly_trace(
    num_classes: int = 2,
    num_frontends: int = 2,
    days: int = 7,
    base: float = 5_000.0,
    amplitude: float = 20_000.0,
    peak_slot: float = 15.0,
    day_factors: Sequence[float] = DEFAULT_DAY_FACTORS,
    drift_per_day: float = 0.0,
    noise: float = 0.05,
    shift_slots: int = 2,
    seed: Optional[int] = 7,
    slot_duration: float = 1.0,
) -> WorkloadTrace:
    """Synthesize a multi-day hourly trace with weekly seasonality.

    Parameters
    ----------
    days:
        Number of days (24 slots each).
    base, amplitude, peak_slot:
        Daily curve parameters (see
        :func:`repro.workload.arrivals.diurnal_rates`).
    day_factors:
        Relative volume per day of week (cycled when ``days > 7``).
    drift_per_day:
        Multiplicative growth per day (0.01 = +1%/day), modelling slow
        demand growth across the horizon.
    noise:
        Log-scale per-slot jitter (0 disables).
    shift_slots:
        Classes beyond the first are circular time-shifts of the first
        (the paper's multi-type fabrication).
    """
    if days < 1:
        raise ValueError("days must be >= 1")
    check_positive(base, "base")
    check_nonnegative(amplitude, "amplitude")
    check_nonnegative(noise, "noise")
    factors = check_nonnegative(list(day_factors), "day_factors")
    if factors.size == 0:
        raise ValueError("day_factors must be non-empty")
    if drift_per_day <= -1.0:
        raise ValueError("drift_per_day must exceed -1")

    rng = as_generator(seed)
    daily = diurnal_rates(24, base=base, amplitude=amplitude,
                          peak_slot=peak_slot, sharpness=2.0)
    series = []
    for s in range(num_frontends):
        # Front-ends differ by a fixed volume factor and peak offset.
        fe_factor = float(rng.uniform(0.7, 1.3))
        fe_shift = int(rng.integers(-2, 3))
        fe_daily = np.roll(daily, fe_shift) * fe_factor
        slots = []
        for d in range(days):
            level = factors[d % factors.size] * (1.0 + drift_per_day) ** d
            day_curve = fe_daily * level
            if noise > 0:
                day_curve = day_curve * np.exp(
                    noise * rng.standard_normal(24)
                )
            slots.append(day_curve)
        series.append(np.concatenate(slots))
    matrix = np.stack(series, axis=0)  # (S, days*24)
    return WorkloadTrace.from_single_type(
        matrix, num_classes=num_classes, shift_slots=shift_slots,
        slot_duration=slot_duration,
    )
