"""Workload substrate.

The paper evaluates on (a) synthetic fixed arrival-rate sets (§V,
Table II), (b) a 1998 World Cup access-log day replayed at four
front-ends (§VI, Fig. 5), and (c) a 7-hour Google cluster trace (§VII).
Neither raw trace ships offline, so this package provides parametric
synthesizers that reproduce their qualitative shapes, plus the paper's
own trace manipulations (time-shift to fabricate extra request types,
duplication) and the arrival prediction hooks mentioned in §III.
"""

from repro.workload.traces import WorkloadTrace
from repro.workload.arrivals import (
    diurnal_rates,
    burst_overlay,
    poisson_counts,
    mmpp_rates,
)
from repro.workload.worldcup import worldcup_like_trace
from repro.workload.googletrace import google_like_trace
from repro.workload.weekly import weekly_trace
from repro.workload.prediction import EWMAPredictor, KalmanFilterPredictor

__all__ = [
    "weekly_trace",
    "WorkloadTrace",
    "diurnal_rates",
    "burst_overlay",
    "poisson_counts",
    "mmpp_rates",
    "worldcup_like_trace",
    "google_like_trace",
    "EWMAPredictor",
    "KalmanFilterPredictor",
]
