"""Arrival-rate pattern primitives.

Building blocks for synthetic traces: diurnal curves, burst overlays,
Markov-modulated rate switching, and Poisson count sampling used when a
slot's integer request count (rather than its average rate) is needed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["diurnal_rates", "burst_overlay", "mmpp_rates", "poisson_counts"]


def diurnal_rates(
    num_slots: int,
    base: float,
    amplitude: float,
    peak_slot: float,
    sharpness: float = 1.0,
) -> np.ndarray:
    """A raised-cosine diurnal rate curve over ``num_slots`` slots.

    ``base`` is the overnight floor; ``base + amplitude`` is the peak at
    ``peak_slot``; ``sharpness > 1`` narrows the peak.
    """
    if num_slots < 1:
        raise ValueError("num_slots must be >= 1")
    check_positive(base, "base")
    check_nonnegative(amplitude, "amplitude")
    slots = np.arange(num_slots, dtype=float)
    phase = np.cos((slots - peak_slot) / num_slots * 2.0 * np.pi)
    shape = ((phase + 1.0) / 2.0) ** sharpness
    return base + amplitude * shape


def burst_overlay(
    rates: np.ndarray,
    burst_slot: int,
    magnitude: float,
    width: float = 1.0,
) -> np.ndarray:
    """Overlay a Gaussian-shaped burst on an existing rate curve.

    World-Cup-style traffic shows sharp bursts around match times; this
    models one burst centered at ``burst_slot`` adding up to
    ``magnitude`` requests per time unit.
    """
    rates = check_nonnegative(rates, "rates")
    check_nonnegative(magnitude, "magnitude")
    check_positive(width, "width")
    slots = np.arange(rates.size, dtype=float)
    bump = magnitude * np.exp(-0.5 * ((slots - burst_slot) / width) ** 2)
    return rates + bump


def mmpp_rates(
    num_slots: int,
    level_rates: Sequence[float],
    transition: np.ndarray,
    seed=None,
    initial_state: int = 0,
) -> np.ndarray:
    """Markov-modulated per-slot rates.

    A discrete-time Markov chain over burst levels; slot ``t`` carries
    the rate of the state occupied during that slot.  Used for
    failure-injection and burstiness tests beyond the paper's Poisson
    assumption.

    Parameters
    ----------
    level_rates:
        Rate of each chain state.
    transition:
        Row-stochastic state transition matrix.
    """
    rates = check_nonnegative(list(level_rates), "level_rates")
    trans = np.asarray(transition, dtype=float)
    n = rates.size
    if trans.shape != (n, n):
        raise ValueError(f"transition must have shape ({n}, {n}), got {trans.shape}")
    if np.any(trans < 0) or not np.allclose(trans.sum(axis=1), 1.0):
        raise ValueError("transition must be row-stochastic")
    if not (0 <= initial_state < n):
        raise ValueError("initial_state out of range")
    rng = as_generator(seed)
    out = np.empty(num_slots, dtype=float)
    state = initial_state
    for t in range(num_slots):
        out[t] = rates[state]
        state = int(rng.choice(n, p=trans[state]))
    return out


def poisson_counts(rates: np.ndarray, slot_duration: float, seed=None) -> np.ndarray:
    """Sample integer request counts per slot from average rates.

    Request arrivals within a slot follow a Poisson process with the
    slot's average rate (paper §III: the approach runs on average rates
    because "job interarrival times are much shorter compared to a
    slot").
    """
    rates = check_nonnegative(rates, "rates")
    check_positive(slot_duration, "slot_duration")
    rng = as_generator(seed)
    return rng.poisson(rates * slot_duration)
