"""Google-cluster-like trace synthesizer (paper §VII).

The paper uses the 2010 Google cluster dataset: a 7-hour task-arrival
trace, collected at a single front-end, duplicated and shifted along the
time scale to fabricate a second request type.  The raw dataset is not
available offline; this synthesizer produces a 7-slot (hourly) task-rate
series with the dataset's qualitative character — a fluctuating,
moderately bursty arrival rate without a strong diurnal trend (the
window is too short for one).

Rates are expressed in requests/hour to match the §VII capacity tables
(Table VIII gives capacities in requests/hour).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_positive
from repro.workload.traces import WorkloadTrace

__all__ = ["google_like_trace"]


def google_like_trace(
    num_slots: int = 7,
    mean_rate: float = 90_000.0,
    variability: float = 0.35,
    shift_slots: int = 2,
    seed: Optional[int] = 2010,
    slot_duration: float = 1.0,
) -> WorkloadTrace:
    """Synthesize the §VII workload: 2 request types at 1 front-end.

    A lag-1 autocorrelated log-normal rate series models the Google
    trace's hour-to-hour fluctuation; the second type is the duplicate
    shifted by ``shift_slots`` (the paper's own fabrication step).

    Parameters
    ----------
    num_slots:
        Trace length in hourly slots (7 in the paper).
    mean_rate:
        Average arrival rate in requests/hour.
    variability:
        Log-scale standard deviation of the hour-to-hour fluctuation.
    shift_slots:
        Circular shift applied to the duplicated series for type 2.
    """
    check_positive(mean_rate, "mean_rate")
    if variability < 0:
        raise ValueError("variability must be non-negative")
    rng = as_generator(seed)
    # AR(1) in log space: fluctuations persist across neighbouring hours.
    log_dev = np.empty(num_slots)
    rho = 0.55
    log_dev[0] = rng.standard_normal()
    for t in range(1, num_slots):
        log_dev[t] = rho * log_dev[t - 1] + np.sqrt(1 - rho**2) * rng.standard_normal()
    series = mean_rate * np.exp(variability * log_dev - 0.5 * variability**2)
    base = WorkloadTrace(series[None, None, :], slot_duration)  # (1 class, 1 FE, T)
    return base.duplicated_as_class(shift_slots=shift_slots)
