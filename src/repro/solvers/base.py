"""Problem and solution datatypes shared by all solvers.

Conventions: problems are stated as *minimization*; callers that
maximize (net profit) negate their objective.  Variables carry
elementwise lower/upper bounds; inequality rows are ``A_ub @ x <= b_ub``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np
from scipy import sparse as _sp

from repro.solvers.tolerances import FEASIBILITY_TOL

__all__ = [
    "SolveStatus",
    "SolverError",
    "LinearProgram",
    "MixedIntegerProgram",
    "Solution",
    "SolverState",
    "problem_signature",
]


class SolveStatus(enum.Enum):
    """Terminal status of a solve call."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    NUMERICAL_ERROR = "numerical_error"


class SolverError(RuntimeError):
    """Raised when a solver cannot produce a usable answer."""


def _as_2d(arr: object, name: str, ncols: int) -> Optional[np.ndarray]:
    if arr is None:
        return None
    if _sp.issparse(arr):
        # Sparse constraint matrices pass through untouched (CSR
        # canonical form) — densifying here would defeat the sparse
        # solve path.  ``@`` works identically on them below.
        out = arr.tocsr()
        if out.shape[1] != ncols:
            raise ValueError(
                f"{name} must have {ncols} columns, got {out.shape[1]}"
            )
        return out
    out = np.atleast_2d(np.asarray(arr, dtype=float))
    if out.shape[1] != ncols:
        raise ValueError(f"{name} must have {ncols} columns, got {out.shape[1]}")
    return out


@dataclass
class LinearProgram:
    """``min c @ x`` s.t. ``A_ub x <= b_ub``, ``A_eq x = b_eq``, ``l <= x <= u``.

    ``lower`` defaults to 0 and ``upper`` to +inf (the natural ranges for
    rates and CPU shares in the paper's formulation).

    ``a_ub``/``a_eq`` may be dense ndarrays or ``scipy.sparse`` matrices;
    sparse inputs are normalized to CSR and never densified, so
    fleet-scale per-server formulations stay at their true nonzero
    footprint end to end (see :mod:`repro.solvers.sparse`).
    """

    c: np.ndarray
    a_ub: Optional[np.ndarray] = None
    b_ub: Optional[np.ndarray] = None
    a_eq: Optional[np.ndarray] = None
    b_eq: Optional[np.ndarray] = None
    lower: Optional[np.ndarray] = None
    upper: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.c = np.asarray(self.c, dtype=float).ravel()
        n = self.c.size
        if n == 0:
            raise ValueError("objective must have at least one variable")
        self.a_ub = _as_2d(self.a_ub, "a_ub", n)
        self.a_eq = _as_2d(self.a_eq, "a_eq", n)
        if (self.a_ub is None) != (self.b_ub is None):
            raise ValueError("a_ub and b_ub must be given together")
        if (self.a_eq is None) != (self.b_eq is None):
            raise ValueError("a_eq and b_eq must be given together")
        if self.b_ub is not None:
            self.b_ub = np.asarray(self.b_ub, dtype=float).ravel()
            if self.b_ub.size != self.a_ub.shape[0]:
                raise ValueError("b_ub length must match a_ub rows")
        if self.b_eq is not None:
            self.b_eq = np.asarray(self.b_eq, dtype=float).ravel()
            if self.b_eq.size != self.a_eq.shape[0]:
                raise ValueError("b_eq length must match a_eq rows")
        self.lower = (
            np.zeros(n) if self.lower is None
            else np.broadcast_to(np.asarray(self.lower, dtype=float), (n,)).copy()
        )
        self.upper = (
            np.full(n, np.inf) if self.upper is None
            else np.broadcast_to(np.asarray(self.upper, dtype=float), (n,)).copy()
        )
        if np.any(self.lower > self.upper):
            raise ValueError("lower bound exceeds upper bound for some variable")

    @property
    def num_variables(self) -> int:
        """Number of decision variables."""
        return int(self.c.size)

    @property
    def num_constraints(self) -> int:
        """Total inequality + equality row count."""
        rows = 0
        if self.a_ub is not None:
            rows += self.a_ub.shape[0]
        if self.a_eq is not None:
            rows += self.a_eq.shape[0]
        return rows

    def residuals(self, x: np.ndarray) -> dict:
        """Constraint violation magnitudes at ``x`` (for verification)."""
        x = np.asarray(x, dtype=float)
        out = {
            "bound_lower": float(np.max(np.clip(self.lower - x, 0, None), initial=0.0)),
            "bound_upper": float(np.max(np.clip(x - self.upper, 0, None), initial=0.0)),
        }
        if self.a_ub is not None:
            out["ineq"] = float(
                np.max(np.clip(self.a_ub @ x - self.b_ub, 0, None), initial=0.0)
            )
        else:
            out["ineq"] = 0.0
        if self.a_eq is not None:
            out["eq"] = float(np.max(np.abs(self.a_eq @ x - self.b_eq), initial=0.0))
        else:
            out["eq"] = 0.0
        return out

    def is_feasible(self, x: np.ndarray, tol: float = FEASIBILITY_TOL) -> bool:
        """True if ``x`` satisfies all constraints within ``tol``."""
        res = self.residuals(x)
        return all(v <= tol for v in res.values())


@dataclass
class MixedIntegerProgram:
    """A :class:`LinearProgram` plus an integrality mask.

    ``integer_mask[j]`` is True when variable ``j`` must take an integer
    value at the optimum (the level-selector variables of the paper's
    Eqs. 14/25).
    """

    lp: LinearProgram
    integer_mask: np.ndarray

    def __post_init__(self) -> None:
        mask = np.asarray(self.integer_mask, dtype=bool).ravel()
        if mask.size != self.lp.num_variables:
            raise ValueError(
                f"integer_mask length {mask.size} != variables {self.lp.num_variables}"
            )
        self.integer_mask = mask

    @property
    def num_integers(self) -> int:
        """Number of integer-constrained variables."""
        return int(self.integer_mask.sum())


def problem_signature(lp: "LinearProgram") -> Tuple[int, int, int]:
    """Shape triple identifying a problem's structure for warm-start reuse."""
    ub_rows = 0 if lp.a_ub is None else int(lp.a_ub.shape[0])
    eq_rows = 0 if lp.a_eq is None else int(lp.a_eq.shape[0])
    return (lp.num_variables, ub_rows, eq_rows)


@dataclass
class SolverState:
    """Opaque cross-solve reuse token for warm-starting.

    Solvers attach a state to :attr:`Solution.state`; passing it back to
    the next solve of a *structurally identical* problem (same variable
    layout and row counts — only coefficient data changed, as between
    successive slots of the paper's controller) lets the solver skip
    most of its cold-start work:

    * simplex — ``basis`` holds the optimal standard-form basis, reused
      as the starting vertex;
    * interior point — ``point``/``dual``/``slack`` hold the final
      primal-dual iterate, re-centred into a starting point;
    * branch and bound — ``point`` holds the previous incumbent, whose
      integer assignment seeds the new incumbent for immediate pruning.

    States are **advisory**: a solver that finds the state stale
    (signature mismatch, singular basis, infeasible at the new data)
    silently falls back to a cold start, so correctness never depends on
    the state.  The payload is plain ndarrays and primitives, hence
    picklable — it can cross the process-pool boundary used by
    :mod:`repro.sim.parallel`.
    """

    method: str
    signature: Tuple[int, int, int] = (0, 0, 0)
    basis: Optional[np.ndarray] = None
    point: Optional[np.ndarray] = None
    dual: Optional[np.ndarray] = None
    slack: Optional[np.ndarray] = None

    def matches(self, lp: "LinearProgram") -> bool:
        """True when ``lp`` has the structure this state was taken from."""
        return tuple(self.signature) == problem_signature(lp)


@dataclass
class Solution:
    """Solver output: status, solution vector, and objective value.

    ``ineq_marginals``/``eq_marginals`` carry the dual values of the
    inequality/equality rows when the backend provides them (HiGHS LP):
    the change in the *minimization* objective per unit increase of the
    corresponding right-hand side.  ``state`` carries the solver's
    warm-start token (see :class:`SolverState`) when the backend
    supports cross-solve reuse.  ``warm_start_used`` reports whether an
    *incoming* state actually steered this solve (simplex basis
    accepted, IPM warm point converged, B&B incumbent seeded) — False
    both when no state was offered and when a stale one was rejected.
    """

    status: SolveStatus
    x: Optional[np.ndarray] = None
    objective: Optional[float] = None
    iterations: int = 0
    nodes: int = 0
    message: str = ""
    gap: float = field(default=0.0)
    ineq_marginals: Optional[np.ndarray] = None
    eq_marginals: Optional[np.ndarray] = None
    state: Optional[SolverState] = None
    warm_start_used: bool = False

    @property
    def ok(self) -> bool:
        """True when the solve reached a (near-)optimal point."""
        return self.status is SolveStatus.OPTIMAL and self.x is not None

    def require_ok(self) -> "Solution":
        """Return self, raising :class:`SolverError` unless optimal."""
        if not self.ok:
            raise SolverError(
                f"solve failed: {self.status.value} {self.message}".strip()
            )
        return self
