"""Sparse solver core: boxed-variable dual simplex plus decomposition.

This module is the fleet-scale solve path of the reproduction (the
paper's Fig. 11 computation-time claim at 10-100x its sizes).  It
provides three pieces that ride the CSR constraint matrices built by
:class:`repro.core.formulation.FixedLevelLPCache` with ``sparse=True``:

* :func:`solve_sparse_lp` — an in-house **bounded-variable dual
  simplex** whose tableau never densifies: the constraint matrix stays
  CSR/CSC, only the small ``m x m`` basis inverse is dense.  Slot LPs
  are *boxable* (every variable gets a finite upper bound, either given
  or implied by a nonnegative row such as the arrival caps), which makes
  the all-slack basis dual feasible for free — no phase-1.  Problems
  the direct solver does not cover (equality rows, unboxable variables,
  very tall programs) fall back to HiGHS fed with the sparse matrix.
* an **RHS-only dual re-solve fast path** — between the controller's
  slots only prices (objective) and arrivals (right-hand side) change.
  When the objective is bit-identical to the previous slot's, the saved
  optimal basis is still dual feasible and the dual simplex restarts
  from it directly; when the objective changed, nonbasic variables are
  flipped to their dual-feasible bound first.  Both ride the standard
  :class:`~repro.solvers.base.SolverState` token.
* :func:`solve_decomposed` — per-class block decomposition: request
  classes couple only through the share-budget rows, so dropping those
  rows splits the slot LP into independent blocks that solve separately
  (optionally across the :func:`repro.sim.parallel.parallel_map`
  process pool).  If the recombined point satisfies the dropped
  coupling rows, the relaxation optimum is feasible and hence globally
  optimal; otherwise the caller joint-solves (the optimistic check —
  over-provisioned fleets virtually never trip it).

Dense solvers remain untouched and serve as the equivalence oracle in
the property-based test harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse as sp

from repro.obs.collectors import NULL_COLLECTOR, Collector
from repro.solvers.base import (
    LinearProgram,
    Solution,
    SolverState,
    SolveStatus,
    problem_signature,
)
from repro.solvers.linprog import solve_lp
from repro.solvers.tolerances import (
    FEASIBILITY_TOL,
    OPTIMALITY_TOL,
    PIVOT_TOL,
    ZERO_TOL,
)

__all__ = [
    "SPARSE_DIRECT_ROW_LIMIT",
    "solve_sparse_lp",
    "implied_upper_bounds",
    "BlockPlan",
    "class_blocks",
    "validate_block_plan",
    "DecomposedSolution",
    "solve_decomposed",
]

#: Above this many inequality rows the dense ``m x m`` basis inverse of
#: the direct dual simplex stops being cheap; taller programs route to
#: HiGHS (which consumes the sparse matrix natively).
SPARSE_DIRECT_ROW_LIMIT = 600

_TOL = ZERO_TOL
_PIVOT_TOL = PIVOT_TOL

#: 1-norm condition estimate above which a refactorized basis counts as
#: ill-conditioned (``sparse.ill_conditioned_bases``).  Telemetry only:
#: the eta-update NaN/inf guard and the terminal feasibility re-check
#: are what actually reject a numerically broken solve.
_CONDITION_LIMIT = 1e12

# Nonbasic-at-lower / nonbasic-at-upper / basic variable statuses.
_AT_LOWER, _AT_UPPER, _BASIC = 0, 1, 2


def _count(collector: Optional[Collector], name: str, value: int = 1) -> None:
    (collector if collector is not None else NULL_COLLECTOR).increment(
        name, value
    )


def _as_csr(a: object) -> "sp.csr_matrix":
    if sp.issparse(a):
        return a.tocsr()
    return sp.csr_matrix(np.asarray(a, dtype=float))


# ---------------------------------------------------------------------------
# Boxing: finite upper bounds implied by nonnegative rows
# ---------------------------------------------------------------------------

def implied_upper_bounds(lp: LinearProgram) -> Optional[np.ndarray]:
    """Finite upper bounds (float64) per variable, or ``None`` if impossible.

    For an inequality row ``r`` whose coefficients are all nonnegative
    and whose variables all have finite lower bounds,

        ``a_rj * x_j <= b_r - sum_{i != j} a_ri * l_i``

    is a valid (redundant) upper bound on ``x_j``.  In the slot LPs the
    arrival-cap rows box every dispatch variable this way and the share
    variables carry explicit bounds, so the whole program is boxable.
    The feasible set is unchanged — only variables whose objective
    coefficient is negative *need* a finite box (they start nonbasic at
    their upper bound); ``None`` is returned when one of those cannot be
    boxed (the caller falls back to HiGHS, which also catches genuinely
    unbounded programs).
    """
    if lp.a_ub is None or lp.b_ub is None:
        return None
    if not np.all(np.isfinite(lp.lower)):
        return None
    a = _as_csr(lp.a_ub)
    m, n = a.shape
    data, indices, indptr = a.data, a.indices, a.indptr
    entry_row = np.repeat(np.arange(m), np.diff(indptr))
    # Row-wise minimum coefficient (rows with any negative entry give no
    # implied bound) and activity at the lower bounds.
    row_min = np.full(m, np.inf)
    np.minimum.at(row_min, entry_row, data)
    row_act = np.zeros(m)
    np.add.at(row_act, entry_row, data * lp.lower[indices])
    row_ok = row_min >= 0.0
    valid = row_ok[entry_row] & (data > _TOL)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        implied = (
            (lp.b_ub[entry_row] - row_act[entry_row]) / data
            + lp.lower[indices]
        )
    cand = np.full(n, np.inf)
    ok = valid & np.isfinite(implied)
    np.minimum.at(cand, indices[ok], implied[ok])
    upper = np.minimum(lp.upper, np.maximum(cand, lp.lower))
    need = (lp.c < 0) & ~np.isfinite(upper)
    if np.any(need):
        return None
    return upper


# ---------------------------------------------------------------------------
# Bounded-variable dual simplex with a dense basis inverse
# ---------------------------------------------------------------------------

def _basis_inverse(
    ac: "sp.csc_matrix", basis: np.ndarray, n: int, m: int
) -> Optional[np.ndarray]:
    """Inverse of the basis matrix ``[A | I][:, basis]``, or ``None``."""
    b_mat = np.zeros((m, m))
    for col, var in enumerate(basis):
        if var < n:
            start, end = ac.indptr[var], ac.indptr[var + 1]
            b_mat[ac.indices[start:end], col] = ac.data[start:end]
        else:
            b_mat[var - n, col] = 1.0
    try:
        inv = np.linalg.inv(b_mat)
    except np.linalg.LinAlgError:
        return None
    if not np.all(np.isfinite(inv)):
        return None
    return inv


def _basis_norm1(
    ac: "sp.csc_matrix", basis: np.ndarray, n: int
) -> float:
    """1-norm (max column abs-sum) of the basis matrix ``[A | I][:, basis]``.

    Built column-by-column from the CSC data so the sanitizer's
    condition estimate (``norm1(B) * norm1(B^{-1})``) never assembles
    the dense basis matrix a second time.
    """
    worst = 0.0
    for var in basis:
        if var < n:
            start, end = ac.indptr[var], ac.indptr[var + 1]
            col_sum = float(np.abs(ac.data[start:end]).sum())
        else:
            col_sum = 1.0
        if col_sum > worst:
            worst = col_sum
    return worst


def _restore_state(
    state: Optional[SolverState],
    lp: LinearProgram,
    n: int,
    m: int,
    upper: np.ndarray,
) -> Optional[Tuple[np.ndarray, np.ndarray, bool]]:
    """Validate a warm-start token; return (basis, vstat, rhs_only)."""
    if (
        state is None
        or state.method != "sparse"
        or not state.matches(lp)
        or state.basis is None
        or state.slack is None
    ):
        return None
    basis = np.asarray(state.basis, dtype=int)
    vstat = np.asarray(state.slack, dtype=int)
    if basis.shape != (m,) or vstat.shape != (n + m,):
        return None
    if basis.min(initial=0) < 0 or basis.max(initial=0) >= n + m:
        return None
    if int((vstat == _BASIC).sum()) != m or not np.all(vstat[basis] == _BASIC):
        return None
    # A nonbasic-at-upper variable needs a finite bound to sit on.
    at_upper = vstat[:n] == _AT_UPPER
    if np.any(at_upper & ~np.isfinite(upper[:n])):
        return None
    rhs_only = (
        state.dual is not None
        and np.asarray(state.dual).shape == lp.c.shape
        and bool(np.array_equal(state.dual, lp.c))
    )
    return basis.copy(), vstat.copy(), rhs_only


def _dual_simplex(
    lp: LinearProgram,
    boxed_upper: np.ndarray,
    state: Optional[SolverState],
    max_iterations: Optional[int],
    collector: Optional[Collector] = None,
) -> Solution:
    """Bounded-variable dual simplex on ``A x + s = b`` (minimization).

    ``collector`` receives the numerical-sanitizer telemetry: NaN/inf
    guard trips at the eta update (``sparse.nonfinite_guard_trips`` —
    the iteration recovers through an early refactorization when the
    fresh inverse is finite), 1-norm basis condition estimates at every
    refactorization point (histogram ``sparse.basis_condition``), and
    ill-conditioned bases above :data:`_CONDITION_LIMIT`
    (``sparse.ill_conditioned_bases``).
    """
    a = _as_csr(lp.a_ub)
    ac = a.tocsc()
    m, n = a.shape
    total = n + m
    c_ext = np.concatenate([lp.c, np.zeros(m)])
    lower = np.concatenate([lp.lower, np.zeros(m)])
    upper = np.concatenate([boxed_upper, np.full(m, np.inf)])
    fixed = upper - lower <= _TOL
    limit = (
        int(max_iterations) if max_iterations is not None
        else 200 + 50 * (m + n)
    )

    warm_used = False
    basis: np.ndarray
    vstat: np.ndarray
    binv: Optional[np.ndarray] = None
    restored = _restore_state(state, lp, n, m, upper)
    if restored is not None:
        basis, vstat, rhs_only = restored
        binv = _basis_inverse(ac, basis, n, m)
        if binv is not None:
            warm_used = True
            if not rhs_only:
                # Objective changed: re-establish dual feasibility by
                # flipping nonbasic variables onto the bound their new
                # reduced cost prefers (a bound flip moves no basis).
                y = c_ext[basis] @ binv
                d = c_ext.copy()
                d[:n] -= y @ a
                d[n:] -= y
                flip_up = (vstat == _AT_LOWER) & (d < -_TOL)
                flip_down = (vstat == _AT_UPPER) & (d > _TOL)
                if np.any(flip_up & ~np.isfinite(upper)) or np.any(
                    flip_down & ~np.isfinite(lower)
                ):
                    binv = None
                    warm_used = False
                else:
                    vstat[flip_up] = _AT_UPPER
                    vstat[flip_down] = _AT_LOWER
    if binv is None:
        # Cold start: all-slack basis, nonbasics at their dual-feasible
        # bound.  Boxing guarantees the c<0 variables have one.
        basis = n + np.arange(m)
        vstat = np.full(total, _AT_LOWER, dtype=int)
        vstat[:n][(lp.c < 0) & np.isfinite(upper[:n])] = _AT_UPPER
        vstat[basis] = _BASIC
        binv = np.eye(m)
        warm_used = False

    iterations = 0
    since_refactor = 0
    alpha = np.empty(total)  # pivot-row scratch, reused every iteration
    while True:
        # Primal point at the current basis/statuses.
        x = np.where(vstat == _AT_UPPER, upper, lower)
        x[~np.isfinite(x)] = 0.0
        x[basis] = 0.0
        rhs_eff = lp.b_ub - a @ x[:n]
        x[basis] = binv @ rhs_eff

        viol_low = lower[basis] - x[basis]
        viol_up = x[basis] - upper[basis]
        viol = np.maximum(viol_low, viol_up)
        worst = float(viol.max(initial=0.0))
        if not np.isfinite(worst):
            return Solution(
                status=SolveStatus.NUMERICAL_ERROR,
                message="non-finite basic solution",
                iterations=iterations,
                warm_start_used=warm_used,
            )
        if worst <= OPTIMALITY_TOL:
            x_struct = x[:n].copy()
            np.clip(x_struct, lp.lower, lp.upper, out=x_struct)
            if not lp.is_feasible(x_struct, tol=FEASIBILITY_TOL):
                return Solution(
                    status=SolveStatus.NUMERICAL_ERROR,
                    message="terminal point failed feasibility check",
                    iterations=iterations,
                    warm_start_used=warm_used,
                )
            y = c_ext[basis] @ binv
            out_state = SolverState(
                method="sparse",
                signature=problem_signature(lp),
                basis=basis.copy(),
                slack=vstat.astype(float),
                dual=lp.c.copy(),
                point=x_struct.copy(),
            )
            # The duals certify the *boxed* problem.  They transfer to
            # the original LP unless a structural variable ends nonbasic
            # at an artificial box (original upper infinite) with a
            # meaningfully negative reduced cost — the box is redundant
            # for the feasible set (so x stays optimal), but its
            # multiplier belongs to the rows implying the bound, and
            # emitting it as-is would fail an independent reduced-cost
            # certificate.  Degrade to primal-only in that case.
            marginals: Optional[np.ndarray] = y.copy()
            at_box = (
                (vstat[:n] == _AT_UPPER) & ~np.isfinite(lp.upper)
            )
            if np.any(at_box):
                d_box = lp.c[at_box] - y @ a[:, np.flatnonzero(at_box)]
                tol_box = OPTIMALITY_TOL * max(
                    1.0, float(np.abs(lp.c).max(initial=0.0))
                )
                if np.any(d_box < -tol_box):
                    marginals = None
            return Solution(
                status=SolveStatus.OPTIMAL,
                x=x_struct,
                objective=float(lp.c @ x_struct),
                iterations=iterations,
                ineq_marginals=marginals,
                state=out_state,
                warm_start_used=warm_used,
            )
        if iterations >= limit:
            return Solution(
                status=SolveStatus.ITERATION_LIMIT,
                message=f"dual simplex hit {limit} iterations",
                iterations=iterations,
                warm_start_used=warm_used,
            )

        i = int(np.argmax(viol))
        below = viol_low[i] >= viol_up[i]
        rho = binv[i]
        alpha[:n] = rho @ a
        alpha[n:] = rho
        y = c_ext[basis] @ binv
        d = c_ext.copy()
        d[:n] -= y @ a
        d[n:] -= y

        abar = alpha if below else -alpha
        eligible = ~fixed & (
            ((vstat == _AT_LOWER) & (abar < -_TOL))
            | ((vstat == _AT_UPPER) & (abar > _TOL))
        )
        eligible[basis] = False
        if not np.any(eligible):
            return Solution(
                status=SolveStatus.INFEASIBLE,
                message="dual simplex: no entering column (primal infeasible)",
                iterations=iterations,
                warm_start_used=warm_used,
            )
        idx = np.flatnonzero(eligible)
        ratios = d[idx] / -abar[idx]
        ratios = np.maximum(ratios, 0.0)  # clamp dual-feasibility roundoff
        best = float(ratios.min())
        near = idx[ratios <= best + _TOL]
        q = int(near[np.argmax(np.abs(abar[near]))])

        if q < n:
            start, end = ac.indptr[q], ac.indptr[q + 1]
            u = binv[:, ac.indices[start:end]] @ ac.data[start:end]
        else:
            u = binv[:, q - n].copy()
        if abs(u[i]) < _PIVOT_TOL:
            return Solution(
                status=SolveStatus.NUMERICAL_ERROR,
                message="vanishing pivot",
                iterations=iterations,
                warm_start_used=warm_used,
            )
        leaving = int(basis[i])
        vstat[leaving] = _AT_LOWER if below else _AT_UPPER
        vstat[q] = _BASIC
        basis[i] = q
        binv[i, :] /= u[i]
        col = u.copy()
        col[i] = 0.0
        binv -= np.outer(col, binv[i])
        iterations += 1
        since_refactor += 1
        if not np.all(np.isfinite(binv)):
            # Sanitizer: the eta update blew up (overflow/NaN through a
            # tiny pivot).  Refactorize from scratch immediately — the
            # product-form error is discarded — and only give up when
            # the basis itself is singular or non-finite.
            _count(collector, "sparse.nonfinite_guard_trips")
            fresh = _basis_inverse(ac, basis, n, m)
            if fresh is None:
                return Solution(
                    status=SolveStatus.NUMERICAL_ERROR,
                    message="non-finite basis inverse after eta update",
                    iterations=iterations,
                    warm_start_used=warm_used,
                )
            binv = fresh
            since_refactor = 0
        if since_refactor >= 100:
            fresh = _basis_inverse(ac, basis, n, m)
            if fresh is None:
                return Solution(
                    status=SolveStatus.NUMERICAL_ERROR,
                    message="singular basis at refactorization",
                    iterations=iterations,
                    warm_start_used=warm_used,
                )
            if collector is not None and collector.enabled:
                # Condition estimate at the refactorization point: the
                # drifted eta-product inverse is being replaced anyway,
                # so one extra norm is the cheapest honest health check.
                cond = _basis_norm1(ac, basis, n) * float(
                    np.abs(fresh).sum(axis=0).max(initial=0.0)
                )
                collector.observe("sparse.basis_condition", cond)
                if cond > _CONDITION_LIMIT:
                    collector.increment("sparse.ill_conditioned_bases")
            binv = fresh
            since_refactor = 0


def solve_sparse_lp(
    lp: LinearProgram,
    state: Optional[SolverState] = None,
    collector: Optional[Collector] = None,
    max_iterations: Optional[int] = None,
) -> Solution:
    """Solve ``lp`` on the sparse path (direct dual simplex or HiGHS).

    The direct bounded-variable dual simplex handles the common slot-LP
    shape: inequality rows only, boxable variables, at most
    :data:`SPARSE_DIRECT_ROW_LIMIT` rows.  Everything else — and any
    numerical failure or infeasibility claim of the direct solver — is
    delegated to HiGHS, which consumes the sparse matrix without
    densifying.  ``state`` tokens produced here (``method="sparse"``)
    enable the RHS-only dual re-solve fast path across slots.
    """
    direct_ok = (
        lp.a_ub is not None
        and lp.a_eq is None
        and lp.a_ub.shape[0] <= SPARSE_DIRECT_ROW_LIMIT
    )
    boxed: Optional[np.ndarray] = None
    if direct_ok:
        boxed = implied_upper_bounds(lp)
        if boxed is None:
            _count(collector, "sparse.box_fallbacks")
    if boxed is not None:
        solution = _dual_simplex(
            lp, boxed, state, max_iterations, collector=collector
        )
        if solution.status is SolveStatus.OPTIMAL:
            _count(
                collector,
                "sparse.warm_hits" if solution.warm_start_used
                else "sparse.cold_solves",
            )
            _count(collector, "sparse.iterations", solution.iterations)
            return solution
        if solution.status is SolveStatus.ITERATION_LIMIT:
            return solution
        _count(collector, "sparse.highs_fallbacks")
    return solve_lp(
        lp, "highs", collector=collector, max_iterations=max_iterations
    )


# ---------------------------------------------------------------------------
# Per-class block decomposition
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BlockPlan:
    """Static index plan of one independent block of a structured LP."""

    var_idx: np.ndarray
    row_idx: np.ndarray


def class_blocks(
    K: int, S: int, L: int
) -> Tuple[List[BlockPlan], np.ndarray]:
    """Per-class blocks of the aggregated slot-LP layout.

    Variables ``lam_{k,s,l}`` / ``Phi_{k,l}`` and the delay/arrival rows
    of class ``k`` form block ``k``; the L share-budget rows (the only
    rows mixing classes) are the coupling rows, returned as an index
    array of dtype intp.  Index layout mirrors
    :meth:`FixedLevelLPCache._build_aggregated_structure`.
    """
    n_lam = K * S * L
    blocks: List[BlockPlan] = []
    for k in range(K):
        var_idx = np.concatenate([
            np.arange(k * S * L, (k + 1) * S * L),
            np.arange(n_lam + k * L, n_lam + (k + 1) * L),
        ])
        row_idx = np.concatenate([
            np.arange(k * L, (k + 1) * L),
            np.arange(K * L + L + k * S, K * L + L + (k + 1) * S),
        ])
        blocks.append(BlockPlan(var_idx=var_idx, row_idx=row_idx))
    coupling = np.arange(K * L, K * L + L)
    return blocks, coupling


def validate_block_plan(
    lp: LinearProgram,
    blocks: Sequence[BlockPlan],
    coupling_rows: np.ndarray,
) -> None:
    """Check that ``blocks`` really decompose ``lp`` (raise otherwise).

    Blocks must partition every column and every non-coupling row, and
    each block's rows may only touch that block's columns — otherwise
    dropping the coupling rows would silently change the problem.
    """
    if lp.a_ub is None:
        raise ValueError("block decomposition needs inequality rows")
    a = _as_csr(lp.a_ub)
    m, n = a.shape
    col_owner = np.full(n, -1)
    row_owner = np.full(m, -1)
    row_owner[coupling_rows] = -2
    for b, blk in enumerate(blocks):
        if np.any(col_owner[blk.var_idx] != -1):
            raise ValueError("block variable sets overlap")
        if np.any(row_owner[blk.row_idx] != -1):
            raise ValueError("block row sets overlap coupling or each other")
        col_owner[blk.var_idx] = b
        row_owner[blk.row_idx] = b
    if np.any(col_owner == -1) or np.any(row_owner == -1):
        raise ValueError("blocks must partition all columns and rows")
    entry_row = np.repeat(np.arange(m), np.diff(a.indptr))
    in_block = row_owner[entry_row] >= 0
    if np.any(
        col_owner[a.indices[in_block]] != row_owner[entry_row[in_block]]
    ):
        raise ValueError("a non-coupling row touches a foreign block's column")


@dataclass
class DecomposedSolution:
    """Recombined block solve: the joint solution plus per-block states."""

    solution: Solution
    states: List[Optional[SolverState]]
    num_blocks: int


def _solve_block_task(
    args: Tuple[LinearProgram, Optional[SolverState], Optional[int]],
) -> Solution:
    """Top-level (picklable) single-block solve for the process pool."""
    block_lp, block_state, max_iterations = args
    return solve_sparse_lp(
        block_lp, state=block_state, max_iterations=max_iterations
    )


def solve_decomposed(  # reprolint: disable=RP004
    lp: LinearProgram,
    blocks: Sequence[BlockPlan],
    coupling_rows: np.ndarray,
    states: Optional[Sequence[Optional[SolverState]]] = None,
    collector: Optional[Collector] = None,
    max_iterations: Optional[int] = None,
    workers: Optional[int] = None,
) -> Optional[DecomposedSolution]:
    """Optimistically solve ``lp`` block by block; ``None`` on failure.

    Drops the coupling rows, solves every block independently (each with
    its own warm-start token; ``workers > 1`` fans the blocks out over
    :func:`repro.sim.parallel.parallel_map`), and recombines.  When the
    recombined point satisfies the dropped rows, the relaxation optimum
    is feasible for the full program and therefore globally optimal.
    Returns ``None`` — caller joint-solves — when a block fails or a
    coupling row is violated.
    """
    if lp.a_ub is None or lp.b_ub is None:
        return None
    a = _as_csr(lp.a_ub)
    subs: List[LinearProgram] = []
    for blk in blocks:
        sub_a = a[blk.row_idx][:, blk.var_idx]
        subs.append(LinearProgram(
            c=lp.c[blk.var_idx],
            a_ub=sub_a,
            b_ub=lp.b_ub[blk.row_idx],
            lower=lp.lower[blk.var_idx],
            upper=lp.upper[blk.var_idx],
        ))
    block_states: List[Optional[SolverState]] = (
        list(states) if states is not None and len(states) == len(subs)
        else [None] * len(subs)
    )
    tasks = [
        (sub, block_state, max_iterations)
        for sub, block_state in zip(subs, block_states)
    ]
    # Blocks are per-class (see class_blocks), so label worker failures
    # with the originating block's class index — a crash inside one
    # block solve must not surface as an anonymous pool error.
    labels = [f"block[class={k}]" for k in range(len(tasks))]
    if workers is not None and workers > 1 and len(tasks) > 1:
        from repro.sim.parallel import parallel_map

        results = parallel_map(
            _solve_block_task, tasks, workers=workers, labels=labels
        )
    else:
        from repro.sim.parallel import WorkerError

        results = []
        for label, task in zip(labels, tasks):
            try:
                results.append(_solve_block_task(task))
            except Exception as exc:
                raise WorkerError(
                    f"{label}: {type(exc).__name__}: {exc}"
                ) from exc
    if any(not r.ok for r in results):
        _count(collector, "sparse.block_failures")
        return None
    x = np.zeros(lp.num_variables)
    for blk, res in zip(blocks, results):
        assert res.x is not None
        x[blk.var_idx] = res.x
    slack = lp.b_ub[coupling_rows] - a[coupling_rows] @ x
    scale = np.maximum(1.0, np.abs(lp.b_ub[coupling_rows]))
    if np.any(slack < -ZERO_TOL * scale):
        _count(collector, "sparse.coupling_rejects")
        return None
    solution = Solution(
        status=SolveStatus.OPTIMAL,
        x=x,
        objective=float(lp.c @ x),
        iterations=sum(r.iterations for r in results),
        warm_start_used=any(r.warm_start_used for r in results),
        message=f"decomposed into {len(blocks)} blocks",
    )
    _count(collector, "sparse.decomposed_solves")
    return DecomposedSolution(
        solution=solution,
        states=[r.state for r in results],
        num_blocks=len(blocks),
    )
