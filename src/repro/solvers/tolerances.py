"""Central numerical-tolerance constants for the solver stack.

Every magnitude below was previously a scattered literal (``1e-6`` here,
``1e-9`` there) in the solver and formulation modules.  Collecting them
in one leaf module (no imports beyond the stdlib) does three things:

* the *same* feasibility/optimality semantics are applied everywhere —
  a solution accepted by one backend is not rejected by another over a
  differing hardcoded epsilon;
* the certificate verifier (:mod:`repro.analysis.certify`) can check
  solutions against the exact tolerances the solvers promised, instead
  of re-guessing magnitudes;
* reprolint rule RP009 can flag any *new* hardcoded tolerance literal
  compared or added in ``solvers/``/``core/`` outside this module, so
  the extraction cannot silently regress.

The names encode intent, not just magnitude — two constants may share a
value (``FEASIBILITY_TOL`` and ``INTEGRALITY_TOL`` are both ``1e-6``)
yet must stay independently tunable.
"""

from __future__ import annotations

__all__ = [
    "FEASIBILITY_TOL",
    "INTEGRALITY_TOL",
    "OPTIMALITY_TOL",
    "WARM_BASIS_TOL",
    "ZERO_TOL",
    "PIVOT_TOL",
    "STRICT_TOL",
]

#: Constraint-satisfaction tolerance: the scaled violation up to which a
#: point still counts as feasible (``LinearProgram.is_feasible``, the
#: simplex phase-1 optimum check, plan share/deadline validation).
FEASIBILITY_TOL = 1e-6

#: How far from the nearest integer a value may sit and still count as
#: integral (branch & bound incumbents, MILP bound tightening).
INTEGRALITY_TOL = 1e-6

#: Reduced-cost / complementarity target of the iterative solvers (the
#: primal simplex pricing tolerance, the IPM convergence criterion, the
#: dual simplex's primal-violation stopping threshold).
OPTIMALITY_TOL = 1e-8

#: Slack allowed when revalidating a warm-started basis against new slot
#: data (primal feasibility of the reused basis, artificial pivot
#: detection).  Deliberately looser than ``ZERO_TOL``: a marginally
#: stale basis is still a better seed than a cold start.
WARM_BASIS_TOL = 1e-7

#: General numerical zero for pivot-eligibility tests, tie-breaking,
#: bound nudges before ceil/floor, and coupling-row checks.
ZERO_TOL = 1e-9

#: Below this magnitude a pivot element is treated as vanished and the
#: basis exchange is refused (dual simplex).
PIVOT_TOL = 1e-10

#: Strictest tolerance: presolve fixed-variable/redundancy detection,
#: B&B pruning slack, greedy-search improvement threshold.  Close to
#: float64 round-off at the library's typical problem scales.
STRICT_TOL = 1e-12
