"""Optimization solver substrate.

The paper solves its slot problems with commercial tools (ILOG CPLEX and
AIMMS).  This package provides the equivalent machinery from scratch:

* :mod:`repro.solvers.base` — problem/solution datatypes;
* :mod:`repro.solvers.simplex` — a dense two-phase primal simplex LP
  solver (no external dependencies);
* :mod:`repro.solvers.linprog` — a unified LP front-end that can route
  to the own simplex or scipy's HiGHS;
* :mod:`repro.solvers.branch_bound` — a best-first branch-and-bound MILP
  solver built on LP relaxations;
* :mod:`repro.solvers.penalty` — a quadratic-penalty + SLSQP nonlinear
  solver used for the paper's literal big-M constraint series;
* :mod:`repro.solvers.levels` — a greedy level-assignment heuristic for
  the multi-level TUF problem.
"""

from repro.solvers.base import (
    LinearProgram,
    MixedIntegerProgram,
    SolveStatus,
    Solution,
    SolverError,
    SolverState,
    problem_signature,
)
from repro.solvers.linprog import solve_lp
from repro.solvers.simplex import SimplexSolver
from repro.solvers.branch_bound import BranchAndBoundSolver, solve_milp
from repro.solvers.penalty import PenaltySolver
from repro.solvers.presolve import presolve, solve_with_presolve
from repro.solvers.interior_point import InteriorPointSolver

__all__ = [
    "SolverState",
    "problem_signature",
    "presolve",
    "solve_with_presolve",
    "InteriorPointSolver",
    "LinearProgram",
    "MixedIntegerProgram",
    "SolveStatus",
    "Solution",
    "SolverError",
    "solve_lp",
    "SimplexSolver",
    "BranchAndBoundSolver",
    "solve_milp",
    "PenaltySolver",
]
