"""A dense two-phase primal simplex LP solver.

Self-contained replacement for the LP capability the paper gets from
commercial solvers.  The implementation is the classic tableau method:

1. convert the bounded-variable LP to standard form
   (``min c'x, Ax = b, x >= 0, b >= 0``) by shifting/splitting variables,
   adding slack rows for finite upper bounds and inequalities;
2. phase 1 minimizes the sum of artificial variables to find a basic
   feasible solution (positive optimum => infeasible);
3. phase 2 minimizes the true objective from that basis.

Bland's rule is used throughout, which guarantees termination (no
cycling) at the cost of speed — acceptable at this library's problem
sizes (a few hundred variables per slot), and scipy's HiGHS is available
through :func:`repro.solvers.linprog.solve_lp` for larger instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.obs.collectors import NULL_COLLECTOR, Collector
from repro.solvers.base import (
    LinearProgram,
    Solution,
    SolverState,
    SolveStatus,
    problem_signature,
)
from repro.solvers.tolerances import (
    FEASIBILITY_TOL,
    OPTIMALITY_TOL,
    WARM_BASIS_TOL,
    ZERO_TOL,
)

__all__ = ["SimplexSolver"]

_TOL = ZERO_TOL

#: Consecutive degenerate pivots before the cycling-suspicion counter
#: trips.  Bland's rule guarantees termination, so this is telemetry
#: (``simplex.cycling_guard_trips``), not a correctness guard — but a
#: trip means the solver is grinding through a degenerate vertex and a
#: perturbation or presolve pass would likely pay off.
_CYCLING_STREAK_LIMIT = 1000


@dataclass
class _StandardForm:
    """Standard-form data plus the recipe to map solutions back."""

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    # Mapping back to original variables: x_orig = shift + M @ y
    shift: np.ndarray
    mapping: np.ndarray
    objective_offset: float


def _to_standard_form(lp: LinearProgram) -> _StandardForm:
    """Rewrite ``lp`` as ``min c'y : Ay = b, y >= 0`` with ``b >= 0``."""
    n = lp.num_variables
    lower, upper = lp.lower, lp.upper

    # Column construction: each original variable becomes one or two
    # standard-form columns.  mapping[j] row selects the combination.
    columns: List[np.ndarray] = []  # coefficient of each y column per orig var
    shift = np.zeros(n)
    col_of_var: List[Tuple[int, Optional[int]]] = []
    ncols = 0
    for j in range(n):
        if np.isfinite(lower[j]):
            shift[j] = lower[j]
            col_of_var.append((ncols, None))
            ncols += 1
        elif np.isfinite(upper[j]):
            # (-inf, u]: substitute x = u - y, y >= 0.
            shift[j] = upper[j]
            col_of_var.append((ncols, None))
            ncols += 1
        else:
            # Free variable: x = y+ - y-.
            col_of_var.append((ncols, ncols + 1))
            ncols += 2

    mapping = np.zeros((n, ncols))
    for j, (cpos, cneg) in enumerate(col_of_var):
        if cneg is None:
            if np.isfinite(lower[j]):
                mapping[j, cpos] = 1.0
            else:
                mapping[j, cpos] = -1.0  # x = u - y
        else:
            mapping[j, cpos] = 1.0
            mapping[j, cneg] = -1.0

    # Collect rows: equalities, inequalities (+slack), finite-range bounds.
    rows_a: List[np.ndarray] = []
    rows_b: List[float] = []
    row_kinds: List[str] = []  # "eq" or "ub"
    if lp.a_eq is not None:
        for r in range(lp.a_eq.shape[0]):
            rows_a.append(lp.a_eq[r])
            rows_b.append(float(lp.b_eq[r]))
            row_kinds.append("eq")
    if lp.a_ub is not None:
        for r in range(lp.a_ub.shape[0]):
            rows_a.append(lp.a_ub[r])
            rows_b.append(float(lp.b_ub[r]))
            row_kinds.append("ub")
    # Range rows for variables with BOTH bounds finite: y <= u - l.
    for j in range(n):
        if np.isfinite(lower[j]) and np.isfinite(upper[j]):
            e = np.zeros(n)
            e[j] = 1.0
            rows_a.append(e)
            rows_b.append(float(upper[j]))
            row_kinds.append("ub")

    num_ub = sum(1 for kind in row_kinds if kind == "ub")
    m = len(rows_a)
    a_std = np.zeros((m, ncols + num_ub))
    b_std = np.zeros(m)
    slack_idx = 0
    for r in range(m):
        row_orig = rows_a[r]
        # Row in terms of y columns: row_y = row_orig @ mapping; rhs shifts.
        a_std[r, :ncols] = row_orig @ mapping
        b_std[r] = rows_b[r] - float(row_orig @ shift)
        if row_kinds[r] == "ub":
            a_std[r, ncols + slack_idx] = 1.0
            slack_idx += 1

    # Objective in y space.
    c_std = np.zeros(ncols + num_ub)
    c_std[:ncols] = lp.c @ mapping
    objective_offset = float(lp.c @ shift)

    # Make rhs non-negative for phase 1.
    neg = b_std < 0
    a_std[neg] *= -1.0
    b_std[neg] *= -1.0

    mapping_full = np.zeros((n, ncols + num_ub))
    mapping_full[:, :ncols] = mapping
    return _StandardForm(
        a=a_std, b=b_std, c=c_std, shift=shift, mapping=mapping_full,
        objective_offset=objective_offset,
    )


class SimplexSolver:
    """Two-phase dense primal simplex with Bland's rule.

    Parameters
    ----------
    max_iterations:
        Pivot budget shared across both phases.
    tol:
        Numerical tolerance for reduced costs / feasibility.
    """

    def __init__(
        self, max_iterations: int = 20_000, tol: float = OPTIMALITY_TOL
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.max_iterations = int(max_iterations)
        self.tol = float(tol)

    # -------------------------------------------------------------- pivots

    def _pivot(self, tableau: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
        pivot_value = tableau[row, col]
        tableau[row] /= pivot_value
        for r in range(tableau.shape[0]):
            if r != row and abs(tableau[r, col]) > _TOL:
                tableau[r] -= tableau[r, col] * tableau[row]
        basis[row] = col

    def _iterate(
        self,
        tableau: np.ndarray,
        basis: np.ndarray,
        budget: int,
        collector: Collector = NULL_COLLECTOR,
    ) -> Tuple[str, int]:
        """Run pivots until optimal/unbounded/budget; returns (status, used).

        Sanitizer telemetry: every pivot with a (near-)zero ratio is a
        *degenerate* step — the objective does not move — counted under
        ``simplex.degenerate_pivots``; a run of
        :data:`_CYCLING_STREAK_LIMIT` consecutive degenerate pivots
        increments ``simplex.cycling_guard_trips`` (Bland's rule still
        terminates, but the solver is stalling on a degenerate vertex).
        """
        m = tableau.shape[0] - 1
        used = 0
        degenerate = 0
        streak = 0
        while used < budget:
            cost_row = tableau[-1, :-1]
            # Bland: smallest index with a negative reduced cost.
            entering_candidates = np.nonzero(cost_row < -self.tol)[0]
            if entering_candidates.size == 0:
                break
            col = int(entering_candidates[0])
            column = tableau[:m, col]
            rhs = tableau[:m, -1]
            positive = column > self.tol
            if not np.any(positive):
                if degenerate and collector.enabled:
                    collector.increment("simplex.degenerate_pivots", degenerate)
                return "unbounded", used
            ratios = np.full(m, np.inf)
            ratios[positive] = rhs[positive] / column[positive]
            min_ratio = ratios.min()
            # Bland tie-break: smallest basis variable index among ties.
            tie_rows = np.nonzero(ratios <= min_ratio + _TOL)[0]
            row = int(tie_rows[np.argmin(basis[tie_rows])])
            self._pivot(tableau, basis, row, col)
            used += 1
            if min_ratio <= _TOL:
                degenerate += 1
                streak += 1
                if streak == _CYCLING_STREAK_LIMIT and collector.enabled:
                    collector.increment("simplex.cycling_guard_trips")
            else:
                streak = 0
        else:
            if degenerate and collector.enabled:
                collector.increment("simplex.degenerate_pivots", degenerate)
            return "iteration_limit", used
        if degenerate and collector.enabled:
            collector.increment("simplex.degenerate_pivots", degenerate)
        return "optimal", used

    # ---------------------------------------------------------- warm start

    def _warm_tableau(
        self, sf: _StandardForm, basis: np.ndarray
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Rebuild a phase-2 tableau from a prior basis, or None if stale.

        The basis is only a *column index set*; ``B^{-1}A`` is
        recomputed against the new coefficient data, so a basis carried
        across slots stays valid whenever it is still primal feasible
        (typical when only prices/arrivals moved).  Any defect —
        wrong size, duplicate or artificial columns, singular ``B``,
        negative basic values — rejects the warm start.
        """
        a, b, c = sf.a, sf.b, sf.c
        m, ncols = a.shape
        if basis.shape != (m,) or m == 0:
            return None
        if basis.min() < 0 or basis.max() >= ncols:
            return None
        if np.unique(basis).size != m:
            return None
        try:
            binv = np.linalg.inv(a[:, basis])
        except np.linalg.LinAlgError:
            return None
        binv_a = binv @ a
        xb = binv @ b
        if not (np.all(np.isfinite(binv_a)) and np.all(np.isfinite(xb))):
            return None
        if xb.min(initial=0.0) < -WARM_BASIS_TOL:
            return None  # basis primal-infeasible at the new rhs
        xb = np.clip(xb, 0.0, None)
        tableau = np.zeros((m + 1, ncols + 1))
        tableau[:m, :ncols] = binv_a
        tableau[:m, -1] = xb
        cb = c[basis]
        tableau[-1, :ncols] = c - cb @ binv_a
        # Cost-row rhs convention: holds the *negated* objective.
        tableau[-1, -1] = -float(cb @ xb)
        return tableau, basis.astype(np.intp).copy()

    # --------------------------------------------------------------- solve

    def solve(
        self,
        lp: LinearProgram,
        state: Optional[SolverState] = None,
        collector: Optional[Collector] = None,
    ) -> Solution:
        """Solve ``lp``; see :class:`repro.solvers.base.Solution`.

        ``state`` may carry a prior optimal basis
        (:attr:`Solution.state` of an earlier solve of a structurally
        identical problem); when still feasible it skips phase 1
        entirely.  A stale state falls back to the cold two-phase path.
        ``collector`` (see :mod:`repro.obs`) receives pivot counts,
        phase timings, and warm-start hit/miss counters.
        """
        collector = collector if collector is not None else NULL_COLLECTOR
        with collector.timer("simplex.standard_form"):
            sf = _to_standard_form(lp)
        a, b, c = sf.a, sf.b, sf.c
        m, ncols = a.shape
        sig = problem_signature(lp)

        warm_attempted = False
        if (
            state is not None
            and state.method == "simplex"
            and state.basis is not None
            and tuple(state.signature) == sig
            and m > 0
        ):
            warm_attempted = True
            warm = self._warm_tableau(sf, np.asarray(state.basis, dtype=np.intp))
            if warm is not None:
                tableau, basis = warm
                with collector.timer("simplex.warm_iterate"):
                    status, used = self._iterate(
                        tableau, basis, self.max_iterations,
                        collector=collector,
                    )
                collector.increment("simplex.pivots", used)
                if status == "optimal":
                    collector.increment("simplex.warm_hits")
                    return self._extract(
                        lp, sf, tableau, basis, ncols, used, sig,
                        warm_used=True,
                    )
                if status == "unbounded":
                    # The warm tableau is a feasible vertex, so an
                    # unbounded ray from it is a valid certificate.
                    collector.increment("simplex.warm_hits")
                    return Solution(status=SolveStatus.UNBOUNDED,
                                    iterations=used, warm_start_used=True)
                # Iteration limit on the warm path: retry cold below.
        if warm_attempted:
            collector.increment("simplex.warm_misses")

        if m == 0:
            # Unconstrained besides y >= 0: minimize each term at 0 or unbounded.
            if np.any(c < -self.tol):
                return Solution(status=SolveStatus.UNBOUNDED, message="no constraints")
            y = np.zeros(ncols)
            x = sf.shift + sf.mapping @ y
            return Solution(
                status=SolveStatus.OPTIMAL, x=x,
                objective=float(lp.c @ x), iterations=0,
            )

        # Phase 1 tableau with artificials on every row.
        tableau = np.zeros((m + 1, ncols + m + 1))
        tableau[:m, :ncols] = a
        tableau[:m, ncols:ncols + m] = np.eye(m)
        tableau[:m, -1] = b
        basis = np.arange(ncols, ncols + m)
        # Phase-1 cost: sum of artificials; make reduced costs basis-consistent.
        tableau[-1, ncols:ncols + m] = 1.0
        tableau[-1] -= tableau[:m].sum(axis=0)

        with collector.timer("simplex.phase1"):
            status, used = self._iterate(
                tableau, basis, self.max_iterations, collector=collector
            )
        collector.increment("simplex.pivots", used)
        total_iters = used
        if status == "iteration_limit":
            return Solution(status=SolveStatus.ITERATION_LIMIT, iterations=total_iters,
                            message="phase 1 budget exhausted")
        phase1_obj = -tableau[-1, -1]
        if phase1_obj > FEASIBILITY_TOL:
            return Solution(status=SolveStatus.INFEASIBLE, iterations=total_iters,
                            message=f"phase-1 optimum {phase1_obj:.3e} > 0")

        # Drive artificials out of the basis where possible.
        for r in range(m):
            if basis[r] >= ncols:
                pivot_cols = np.nonzero(
                    np.abs(tableau[r, :ncols]) > WARM_BASIS_TOL
                )[0]
                if pivot_cols.size:
                    self._pivot(tableau, basis, r, int(pivot_cols[0]))
                    total_iters += 1
                # else: redundant row; artificial stays basic at zero.

        # Phase 2: swap in the true objective, zero artificial columns.
        tableau[:m, ncols:ncols + m] = 0.0
        tableau[-1, :] = 0.0
        tableau[-1, :ncols] = c
        for r in range(m):
            j = basis[r]
            if j < ncols and abs(c[j]) > _TOL:
                tableau[-1] -= c[j] * tableau[r]
        # Rows whose basic variable is an artificial stuck at zero must not
        # admit pivots through artificial columns; they are inert.

        with collector.timer("simplex.phase2"):
            status, used = self._iterate(
                tableau, basis, self.max_iterations - total_iters,
                collector=collector,
            )
        collector.increment("simplex.pivots", used)
        total_iters += used
        if status == "iteration_limit":
            return Solution(status=SolveStatus.ITERATION_LIMIT, iterations=total_iters,
                            message="phase 2 budget exhausted")
        if status == "unbounded":
            return Solution(status=SolveStatus.UNBOUNDED, iterations=total_iters)

        return self._extract(lp, sf, tableau, basis, ncols, total_iters, sig)

    def _extract(
        self,
        lp: LinearProgram,
        sf: _StandardForm,
        tableau: np.ndarray,
        basis: np.ndarray,
        ncols: int,
        iterations: int,
        sig: Tuple[int, int, int],
        warm_used: bool = False,
    ) -> Solution:
        """Map an optimal tableau back to original space, with a state."""
        m = tableau.shape[0] - 1
        y = np.zeros(ncols)
        for r in range(m):
            if basis[r] < ncols:
                y[basis[r]] = tableau[r, -1]
        x = sf.shift + sf.mapping @ y
        # Clean tiny negative noise inside bounds.
        x = np.clip(x, lp.lower, lp.upper)
        state = SolverState(
            method="simplex",
            signature=sig,
            basis=np.asarray(basis, dtype=np.intp).copy(),
        )
        return Solution(
            status=SolveStatus.OPTIMAL,
            x=x,
            objective=float(lp.c @ x),
            iterations=iterations,
            state=state,
            warm_start_used=warm_used,
        )
