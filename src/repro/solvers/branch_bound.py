"""Best-first branch-and-bound MILP solver.

Solves :class:`~repro.solvers.base.MixedIntegerProgram` instances by
branching on fractional integer variables over LP relaxations — the
machinery the paper delegates to CPLEX.  A best-first node queue keyed
by the relaxation bound keeps the search focused; an optional relative
gap allows early termination.

Tests cross-check this solver against ``scipy.optimize.milp`` (HiGHS).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np
from scipy import optimize as scipy_optimize

from repro.obs.collectors import NULL_COLLECTOR, Collector
from repro.solvers.base import (
    LinearProgram,
    MixedIntegerProgram,
    Solution,
    SolverState,
    SolveStatus,
    problem_signature,
)
from repro.solvers.linprog import solve_lp
from repro.solvers.tolerances import (
    FEASIBILITY_TOL,
    INTEGRALITY_TOL,
    STRICT_TOL,
    ZERO_TOL,
)

__all__ = ["BranchAndBoundSolver", "solve_milp"]


@dataclass(order=True)
class _Node:
    bound: float
    tie: int
    lower: np.ndarray = field(compare=False)
    upper: np.ndarray = field(compare=False)
    depth: int = field(compare=False, default=0)


class BranchAndBoundSolver:
    """Branch and bound over LP relaxations.

    Parameters
    ----------
    lp_method:
        LP backend for relaxations ("highs" or "simplex").
    max_nodes:
        Node budget; exceeding it returns ``ITERATION_LIMIT`` with the
        incumbent (if any).
    int_tol:
        A value within ``int_tol`` of an integer counts as integral.
    rel_gap:
        Terminate once ``(incumbent - bound) <= rel_gap * |incumbent|``.
    """

    def __init__(
        self,
        lp_method: str = "highs",
        max_nodes: int = 100_000,
        int_tol: float = INTEGRALITY_TOL,
        rel_gap: float = 0.0,
    ) -> None:
        self.lp_method = lp_method
        self.max_nodes = int(max_nodes)
        self.int_tol = float(int_tol)
        self.rel_gap = float(rel_gap)

    def _most_fractional(self, x: np.ndarray, mask: np.ndarray) -> Optional[int]:
        frac = np.abs(x - np.round(x))
        frac[~mask] = 0.0
        j = int(np.argmax(frac))
        if frac[j] <= self.int_tol:
            return None
        return j

    def _seed_incumbent(
        self, mip: MixedIntegerProgram, state: SolverState
    ) -> Tuple[Optional[np.ndarray], float, int]:
        """Build a starting incumbent from a prior solution's levels.

        Fixes every integer variable to the (rounded) value it took in
        the previous solve and re-optimizes the continuous variables —
        one LP.  If that restriction is feasible under the new data, its
        solution is a valid incumbent whose objective prunes the tree
        from node one.  Purely an acceleration: the search still
        explores everything strictly better, so the returned optimum is
        unchanged.
        """
        lp = mip.lp
        mask = mip.integer_mask
        prev = np.asarray(state.point, dtype=float)
        if prev.shape != (lp.num_variables,):
            return None, np.inf, 0
        vals = np.round(prev[mask])
        if np.any(vals < lp.lower[mask] - ZERO_TOL) \
                or np.any(vals > lp.upper[mask] + ZERO_TOL):
            return None, np.inf, 0
        lower = lp.lower.copy()
        upper = lp.upper.copy()
        lower[mask] = vals
        upper[mask] = vals
        restricted = LinearProgram(
            c=lp.c, a_ub=lp.a_ub, b_ub=lp.b_ub,
            a_eq=lp.a_eq, b_eq=lp.b_eq,
            lower=lower, upper=upper,
        )
        sol = solve_lp(restricted, method=self.lp_method)
        if not sol.ok:
            return None, np.inf, sol.iterations
        x = sol.x.copy()
        x[mask] = np.round(x[mask])
        if not lp.is_feasible(x, tol=FEASIBILITY_TOL):
            return None, np.inf, sol.iterations
        return x, float(lp.c @ x), sol.iterations

    def solve(
        self,
        mip: MixedIntegerProgram,
        state: Optional[SolverState] = None,
        collector: Optional[Collector] = None,
    ) -> Solution:
        """Solve the MILP; returns the incumbent and node statistics.

        ``state`` may carry a previous solve's solution
        (:attr:`Solution.state`); its integer assignment seeds the
        incumbent (see :meth:`_seed_incumbent`), which typically prunes
        most of the tree when consecutive problems share their optimal
        level choices — the common case across the paper's hourly slots.
        ``collector`` (see :mod:`repro.obs`) receives node/iteration
        counters and incumbent-seeding hit/miss counts.
        """
        collector = collector if collector is not None else NULL_COLLECTOR
        lp = mip.lp
        mask = mip.integer_mask
        counter = itertools.count()

        root = _Node(
            bound=-np.inf, tie=next(counter),
            lower=lp.lower.copy(), upper=lp.upper.copy(),
        )
        heap = [root]
        incumbent_x: Optional[np.ndarray] = None
        incumbent_obj = np.inf
        nodes = 0
        iterations = 0
        warm_used = False
        any_feasible_relaxation = False
        if (
            state is not None
            and state.method == "bb"
            and state.point is not None
            and tuple(state.signature) == problem_signature(lp)
        ):
            with collector.timer("bb.seed_incumbent"):
                incumbent_x, incumbent_obj, seed_iters = self._seed_incumbent(
                    mip, state
                )
            iterations += seed_iters
            warm_used = incumbent_x is not None
        if state is not None:
            collector.increment(
                "bb.warm_hits" if warm_used else "bb.warm_misses"
            )

        while heap and nodes < self.max_nodes:
            node = heapq.heappop(heap)
            if node.bound >= incumbent_obj - self._gap_slack(incumbent_obj):
                continue  # pruned by bound
            nodes += 1
            relaxed = LinearProgram(
                c=lp.c, a_ub=lp.a_ub, b_ub=lp.b_ub,
                a_eq=lp.a_eq, b_eq=lp.b_eq,
                lower=node.lower, upper=node.upper,
            )
            sol = solve_lp(relaxed, method=self.lp_method)
            iterations += sol.iterations
            if sol.status is SolveStatus.UNBOUNDED and node.depth == 0:
                return Solution(status=SolveStatus.UNBOUNDED, nodes=nodes,
                                iterations=iterations)
            if not sol.ok:
                continue  # infeasible subproblem
            any_feasible_relaxation = True
            if sol.objective >= incumbent_obj - self._gap_slack(incumbent_obj):
                continue
            branch_var = self._most_fractional(sol.x, mask)
            if branch_var is None:
                # Integral: new incumbent.
                x = sol.x.copy()
                x[mask] = np.round(x[mask])
                obj = float(lp.c @ x)
                if obj < incumbent_obj:
                    incumbent_obj = obj
                    incumbent_x = x
                continue
            value = sol.x[branch_var]
            floor_val = np.floor(value)
            # Down branch: x_j <= floor(value).
            down_upper = node.upper.copy()
            down_upper[branch_var] = floor_val
            if node.lower[branch_var] <= down_upper[branch_var]:
                heapq.heappush(heap, _Node(
                    bound=sol.objective, tie=next(counter),
                    lower=node.lower.copy(), upper=down_upper,
                    depth=node.depth + 1,
                ))
            # Up branch: x_j >= floor(value) + 1.
            up_lower = node.lower.copy()
            up_lower[branch_var] = floor_val + 1.0
            if up_lower[branch_var] <= node.upper[branch_var]:
                heapq.heappush(heap, _Node(
                    bound=sol.objective, tie=next(counter),
                    lower=up_lower, upper=node.upper.copy(),
                    depth=node.depth + 1,
                ))

        collector.increment("bb.nodes", nodes)
        collector.increment("bb.lp_iterations", iterations)
        if incumbent_x is not None:
            # Nodes left in the heap are only unexplored if the budget ran
            # out; otherwise every remaining node was prunable by bound.
            remaining = [n.bound for n in heap
                         if n.bound < incumbent_obj - self._gap_slack(incumbent_obj)]
            exhausted = nodes >= self.max_nodes and bool(remaining)
            remaining_bound = min(remaining, default=incumbent_obj)
            gap = max(0.0, incumbent_obj - remaining_bound)
            return Solution(
                status=SolveStatus.ITERATION_LIMIT if exhausted else SolveStatus.OPTIMAL,
                x=incumbent_x, objective=incumbent_obj,
                nodes=nodes, iterations=iterations, gap=gap,
                state=SolverState(
                    method="bb", signature=problem_signature(lp),
                    point=incumbent_x.copy(),
                ),
                warm_start_used=warm_used,
            )
        if nodes >= self.max_nodes:
            return Solution(status=SolveStatus.ITERATION_LIMIT, nodes=nodes,
                            iterations=iterations, message="node budget exhausted")
        message = ("LP relaxation infeasible" if not any_feasible_relaxation
                   else "no integral feasible point found")
        return Solution(status=SolveStatus.INFEASIBLE, nodes=nodes,
                        iterations=iterations, message=message)

    def _gap_slack(self, incumbent_obj: float) -> float:
        if not np.isfinite(incumbent_obj) or self.rel_gap <= 0.0:
            return STRICT_TOL
        return self.rel_gap * abs(incumbent_obj) + STRICT_TOL


def solve_milp(
    mip: MixedIntegerProgram,
    method: str = "bb",
    state: Optional[SolverState] = None,
    collector: Optional[Collector] = None,
    max_nodes: Optional[int] = None,
) -> Solution:
    """Solve a MILP with the own B&B (``"bb"``) or scipy HiGHS (``"highs"``).

    ``state`` seeds the branch-and-bound incumbent from a previous
    solution (see :meth:`BranchAndBoundSolver.solve`); the HiGHS bridge
    has no warm-start API and ignores it, but still emits a state so a
    later ``"bb"`` solve can pick it up.  ``collector`` (see
    :mod:`repro.obs`) receives node counters and solve timings.
    ``max_nodes`` caps the node count of either backend (``None`` keeps
    the defaults); exhausting it yields ``ITERATION_LIMIT``.
    """
    collector = collector if collector is not None else NULL_COLLECTOR
    if method == "bb":
        solver = (BranchAndBoundSolver() if max_nodes is None
                  else BranchAndBoundSolver(max_nodes=max_nodes))
        with collector.timer("bb.solve"):
            return solver.solve(mip, state=state, collector=collector)
    if method != "highs":
        raise ValueError(f"unknown MILP method {method!r}")

    lp = mip.lp
    constraints = []
    if lp.a_ub is not None:
        constraints.append(
            scipy_optimize.LinearConstraint(lp.a_ub, -np.inf, lp.b_ub)
        )
    if lp.a_eq is not None:
        constraints.append(
            scipy_optimize.LinearConstraint(lp.a_eq, lp.b_eq, lp.b_eq)
        )
    # Tighten integer variables' bounds to integral values first — an
    # equivalent transformation that sidesteps a HiGHS-via-scipy bug
    # where fractional bounds on integer variables yield suboptimal
    # answers (observed on scipy 1.17: ub=1.25 behaves like ub=0).
    lower = lp.lower.copy()
    upper = lp.upper.copy()
    mask = mip.integer_mask
    lower[mask] = np.ceil(lower[mask] - ZERO_TOL)
    upper[mask] = np.floor(upper[mask] + ZERO_TOL)
    if np.any(lower > upper):
        return Solution(status=SolveStatus.INFEASIBLE,
                        message="no integral point within bounds")
    if state is not None:
        # The scipy bridge cannot consume a state; count the offer so
        # warm-start accounting stays truthful for the HiGHS path.
        collector.increment("highs.milp_warm_misses")
    options = {} if max_nodes is None else {"node_limit": int(max_nodes)}
    with collector.timer("highs.milp_solve"):
        result = scipy_optimize.milp(
            c=lp.c,
            constraints=constraints or None,
            integrality=mask.astype(int),
            bounds=scipy_optimize.Bounds(lower, upper),
            options=options or None,
        )
    if result.status == 0 and result.x is not None:
        x = np.clip(result.x, lower, upper)
        return Solution(status=SolveStatus.OPTIMAL, x=x,
                        objective=float(lp.c @ x),
                        message=str(result.message or ""),
                        state=SolverState(
                            method="bb", signature=problem_signature(lp),
                            point=np.asarray(x, dtype=float).copy(),
                        ))
    status = {2: SolveStatus.INFEASIBLE, 3: SolveStatus.UNBOUNDED}.get(
        result.status, SolveStatus.NUMERICAL_ERROR
    )
    if result.status == 1:
        status = SolveStatus.ITERATION_LIMIT
    return Solution(status=status, message=str(result.message or ""))
