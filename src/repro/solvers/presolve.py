"""LP presolve reductions.

Classic size reductions applied before a solve, with a postsolve step
mapping the reduced solution back to the original variable space:

1. **fixed variables** — ``l_j == u_j`` pins ``x_j``; its contribution
   folds into the right-hand sides and the objective offset;
2. **empty rows** — all-zero inequality rows are satisfiability checks;
3. **redundant rows** — an inequality row whose worst-case (interval
   arithmetic over the bounds) left-hand side cannot exceed its rhs is
   dropped.

These matter most for the per-server formulations, where failed/zeroed
servers and minimum-share pins create many fixed variables.  The own
simplex gains the most; HiGHS has its own presolve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
from scipy import sparse as _sp

from repro.obs.collectors import NULL_COLLECTOR, Collector
from repro.solvers.base import (
    LinearProgram,
    Solution,
    SolverState,
    SolveStatus,
)
from repro.solvers.tolerances import STRICT_TOL, ZERO_TOL

__all__ = ["PresolveResult", "presolve", "solve_with_presolve"]


@dataclass
class PresolveResult:
    """Outcome of a presolve pass."""

    #: The reduced problem; None when presolve already decided the LP.
    reduced: Optional[LinearProgram]
    #: Maps a reduced solution vector back to the original space.
    restore: Callable[[np.ndarray], np.ndarray]
    #: Objective contribution of eliminated variables.
    objective_offset: float
    #: Immediate verdict ("infeasible" or None).
    verdict: Optional[SolveStatus] = None
    fixed_variables: int = 0
    dropped_rows: int = 0


def presolve(
    lp: LinearProgram,
    tol: float = STRICT_TOL,
    collector: Optional[Collector] = None,
) -> PresolveResult:
    """Apply the reductions to ``lp``.

    ``collector`` (see :mod:`repro.obs`) receives the reduction counts
    (fixed variables, dropped rows) and the reduction timing.
    """
    collector = collector if collector is not None else NULL_COLLECTOR
    with collector.timer("presolve.reduce"):
        result = _reduce(lp, tol)
    collector.increment("presolve.fixed_variables", result.fixed_variables)
    collector.increment("presolve.dropped_rows", result.dropped_rows)
    if result.verdict is not None:
        collector.increment("presolve.decided")
    return result


def _sparse_rows(
    mat: "_sp.spmatrix", free_idx: np.ndarray, tol: float
) -> "tuple[_sp.csr_matrix, np.ndarray]":
    """Reduced CSR (free columns only) and its per-row nonzero counts.

    Sub-``tol`` entries are dropped so the row-emptiness and interval
    checks below see the same structure the dense path's
    ``np.abs(row) > tol`` test sees — without densifying anything.
    """
    red = mat.tocsr()[:, free_idx].tocsr()
    red.data = np.where(np.abs(red.data) > tol, red.data, 0.0)
    red.eliminate_zeros()
    return red, np.diff(red.indptr)


def _reduce(lp: LinearProgram, tol: float) -> PresolveResult:
    """The reduction pass behind :func:`presolve`.

    Sparse (CSR) constraint matrices take a vectorized branch with the
    same semantics as the dense row loop: empty rows become
    satisfiability checks, rows whose interval-arithmetic worst case
    cannot bind are dropped, and the reduced matrix stays sparse.
    """
    n = lp.num_variables
    fixed_mask = np.isclose(lp.lower, lp.upper, rtol=0.0, atol=tol)
    fixed_values = np.where(fixed_mask, lp.lower, 0.0)
    free_idx = np.nonzero(~fixed_mask)[0]
    offset = float(lp.c @ fixed_values)

    def restore(x_reduced: np.ndarray) -> np.ndarray:
        x = fixed_values.copy()
        x[free_idx] = x_reduced
        return x

    # Fold fixed columns into the right-hand sides.
    a_ub = b_ub = a_eq = b_eq = None
    dropped = 0
    if lp.a_ub is not None and _sp.issparse(lp.a_ub):
        b_ub_adj = np.asarray(lp.b_ub - lp.a_ub @ fixed_values).ravel()
        a_ub_red, row_nnz = _sparse_rows(lp.a_ub, free_idx, tol)
        lo = lp.lower[free_idx]
        hi = lp.upper[free_idx]
        empty = row_nnz == 0
        if np.any(empty & (b_ub_adj < -ZERO_TOL)):
            return PresolveResult(
                reduced=None, restore=restore, objective_offset=offset,
                verdict=SolveStatus.INFEASIBLE,
                fixed_variables=int(fixed_mask.sum()),
            )
        pos = a_ub_red.maximum(0.0)
        neg = a_ub_red.minimum(0.0)
        with np.errstate(invalid="ignore"):
            worst = np.asarray(pos @ hi + neg @ lo).ravel()
        redundant = (
            (~empty) & np.isfinite(worst) & (worst <= b_ub_adj + STRICT_TOL)
        )
        keep_mask = ~(empty | redundant)
        dropped += int(empty.sum() + redundant.sum())
        if np.any(keep_mask):
            a_ub = a_ub_red[keep_mask]
            b_ub = b_ub_adj[keep_mask]
    elif lp.a_ub is not None:
        b_ub_adj = lp.b_ub - lp.a_ub @ fixed_values
        a_ub_red = lp.a_ub[:, free_idx]
        keep = []
        lo = lp.lower[free_idx]
        hi = lp.upper[free_idx]
        for r in range(a_ub_red.shape[0]):
            row = a_ub_red[r]
            if not np.any(np.abs(row) > tol):
                if b_ub_adj[r] < -ZERO_TOL:
                    return PresolveResult(
                        reduced=None, restore=restore,
                        objective_offset=offset,
                        verdict=SolveStatus.INFEASIBLE,
                        fixed_variables=int(fixed_mask.sum()),
                    )
                dropped += 1
                continue
            # Interval arithmetic: max achievable lhs <= rhs => redundant.
            with np.errstate(invalid="ignore"):
                worst = np.sum(np.where(row > 0, row * hi, row * lo))
            if np.isfinite(worst) and worst <= b_ub_adj[r] + STRICT_TOL:
                dropped += 1
                continue
            keep.append(r)
        if keep:
            a_ub = a_ub_red[keep]
            b_ub = b_ub_adj[keep]
    if lp.a_eq is not None and _sp.issparse(lp.a_eq):
        b_eq_adj = np.asarray(lp.b_eq - lp.a_eq @ fixed_values).ravel()
        a_eq_red, row_nnz = _sparse_rows(lp.a_eq, free_idx, tol)
        empty = row_nnz == 0
        if np.any(empty & (np.abs(b_eq_adj) > ZERO_TOL)):
            return PresolveResult(
                reduced=None, restore=restore, objective_offset=offset,
                verdict=SolveStatus.INFEASIBLE,
                fixed_variables=int(fixed_mask.sum()),
            )
        dropped += int(empty.sum())
        if np.any(~empty):
            a_eq = a_eq_red[~empty]
            b_eq = b_eq_adj[~empty]
    elif lp.a_eq is not None:
        b_eq_adj = lp.b_eq - lp.a_eq @ fixed_values
        a_eq_red = lp.a_eq[:, free_idx]
        keep = []
        for r in range(a_eq_red.shape[0]):
            if not np.any(np.abs(a_eq_red[r]) > tol):
                if abs(b_eq_adj[r]) > ZERO_TOL:
                    return PresolveResult(
                        reduced=None, restore=restore,
                        objective_offset=offset,
                        verdict=SolveStatus.INFEASIBLE,
                        fixed_variables=int(fixed_mask.sum()),
                    )
                dropped += 1
                continue
            keep.append(r)
        if keep:
            a_eq = a_eq_red[keep]
            b_eq = b_eq_adj[keep]

    if free_idx.size == 0:
        # Everything pinned: feasibility was checked row by row above,
        # except kept rows (there are none: any non-empty row over zero
        # free columns is empty) — so the fixed point stands.
        return PresolveResult(
            reduced=None, restore=restore, objective_offset=offset,
            verdict=None, fixed_variables=n, dropped_rows=dropped,
        )

    reduced = LinearProgram(
        c=lp.c[free_idx],
        a_ub=a_ub, b_ub=b_ub,
        a_eq=a_eq, b_eq=b_eq,
        lower=lp.lower[free_idx],
        upper=lp.upper[free_idx],
    )
    return PresolveResult(
        reduced=reduced, restore=restore, objective_offset=offset,
        fixed_variables=int(fixed_mask.sum()), dropped_rows=dropped,
    )


def solve_with_presolve(
    lp: LinearProgram,
    method: str = "highs",
    state: Optional[SolverState] = None,
    collector: Optional[Collector] = None,
) -> Solution:
    """Presolve, solve the reduction, and postsolve back.

    Falls through to a direct solve when nothing reduces.  ``state`` is
    a :class:`~repro.solvers.base.SolverState` taken from an earlier
    ``solve_with_presolve`` call: it lives in the *reduced* problem's
    space, so it composes with warm-starting whenever successive
    problems presolve to the same shape (the usual case for successive
    slots, where the fixed-variable pattern is structural).  A state
    that no longer fits the reduction is ignored by the inner solver.
    ``collector`` (see :mod:`repro.obs`) is threaded through both the
    reduction pass and the inner solve.
    """
    from repro.solvers.linprog import solve_lp

    result = presolve(lp, collector=collector)
    if result.verdict is not None:
        return Solution(status=result.verdict,
                        message="decided by presolve")
    if result.reduced is None:
        x = result.restore(np.empty(0))
        if not lp.is_feasible(x):
            return Solution(status=SolveStatus.INFEASIBLE,
                            message="fixed point violates constraints")
        return Solution(status=SolveStatus.OPTIMAL, x=x,
                        objective=float(lp.c @ x))
    inner = solve_lp(result.reduced, method=method, state=state,
                     collector=collector)
    if not inner.ok:
        return inner
    x = result.restore(inner.x)
    return Solution(
        status=SolveStatus.OPTIMAL,
        x=x,
        objective=float(lp.c @ x),
        iterations=inner.iterations,
        state=inner.state,
        warm_start_used=inner.warm_start_used,
    )
