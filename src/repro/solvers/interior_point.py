"""A primal-dual interior-point LP solver (Mehrotra-style, dense).

Third independent LP path beside the own simplex and HiGHS — useful as
a cross-check and as the classic alternative for larger dense slot
problems where simplex pivoting degrades.

The implementation solves the standard-form problem

    min c'x   s.t.  A x = b,  x >= 0

via the predictor-corrector primal-dual method with a shared normal-
equations factorization per iteration.  General problems (inequalities,
bounds) are converted through the same standard-form rewriter the
simplex uses.  Accuracy targets 1e-8 relative complementarity; the
solver reports ``NUMERICAL_ERROR`` rather than returning a bad point
when the Newton systems become too ill-conditioned.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.obs.collectors import NULL_COLLECTOR, Collector
from repro.solvers.base import (
    LinearProgram,
    Solution,
    SolverState,
    SolveStatus,
    problem_signature,
)
from repro.solvers.simplex import _to_standard_form
from repro.solvers.tolerances import OPTIMALITY_TOL, PIVOT_TOL, STRICT_TOL

__all__ = ["InteriorPointSolver"]


class InteriorPointSolver:
    """Mehrotra predictor-corrector for dense LPs.

    Parameters
    ----------
    max_iterations:
        Newton iteration budget.
    tol:
        Convergence tolerance on scaled residuals and duality gap.
    """

    def __init__(
        self, max_iterations: int = 100, tol: float = OPTIMALITY_TOL
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.max_iterations = int(max_iterations)
        self.tol = float(tol)

    # ----------------------------------------------------------- internals

    @staticmethod
    def _starting_point(a: np.ndarray, b: np.ndarray, c: np.ndarray
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Heuristic well-centred starting point (Mehrotra's)."""
        m, n = a.shape
        aat = a @ a.T + 1e-10 * np.eye(m)
        x = a.T @ np.linalg.solve(aat, b)
        lam = np.linalg.solve(aat, a @ c)
        s = c - a.T @ lam
        dx = max(-1.5 * x.min(initial=0.0), 0.0)
        ds = max(-1.5 * s.min(initial=0.0), 0.0)
        x = x + dx
        s = s + ds
        xs = float(x @ s)
        if xs <= 0:
            x = np.maximum(x, 1.0)
            s = np.maximum(s, 1.0)
            xs = float(x @ s)
        dx_hat = 0.5 * xs / max(s.sum(), 1e-12)
        ds_hat = 0.5 * xs / max(x.sum(), 1e-12)
        return x + dx_hat, lam, s + ds_hat

    @staticmethod
    def _warm_point(
        a: np.ndarray, c: np.ndarray,
        x_prev: np.ndarray, s_prev: np.ndarray, lam_prev: Optional[np.ndarray],
    ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Re-centre a previous primal-dual iterate into a starting point.

        The previous optimum sits on the boundary (many zero
        coordinates), which would stall the very first Newton step, so
        both ``x`` and ``s`` are floored a little into the interior.
        """
        m, n = a.shape
        if x_prev.shape != (n,) or s_prev.shape != (n,):
            return None
        if not (np.all(np.isfinite(x_prev)) and np.all(np.isfinite(s_prev))):
            return None
        floor_x = max(1e-8, 1e-3 * (1.0 + float(np.abs(x_prev).max(initial=0.0))))
        floor_s = max(1e-8, 1e-3 * (1.0 + float(np.abs(s_prev).max(initial=0.0))))
        x = np.maximum(x_prev, floor_x)
        s = np.maximum(s_prev, floor_s)
        if lam_prev is not None and lam_prev.shape == (m,) \
                and np.all(np.isfinite(lam_prev)):
            lam = lam_prev.copy()
        else:
            # Row-rank reduction can change the dual dimension between
            # calls; recover multipliers for the current rows instead.
            lam, *_ = np.linalg.lstsq(a.T, c - s, rcond=None)
        return x, lam, s

    def _solve_standard(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray,
        start: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None,
    ) -> Tuple[str, np.ndarray, np.ndarray, np.ndarray, int]:
        m, n = a.shape
        if start is not None:
            x, lam, s = start
        else:
            x, lam, s = self._starting_point(a, b, c)
        norm_b = 1.0 + np.linalg.norm(b)
        norm_c = 1.0 + np.linalg.norm(c)

        for it in range(self.max_iterations):
            r_primal = a @ x - b
            r_dual = a.T @ lam + s - c
            mu = float(x @ s) / n
            if (np.linalg.norm(r_primal) / norm_b < self.tol
                    and np.linalg.norm(r_dual) / norm_c < self.tol
                    and mu < self.tol):
                return "optimal", x, lam, s, it
            # Normal equations: (A D A') dlam = rhs, D = X S^{-1}.
            d = x / s
            adat = (a * d) @ a.T
            adat[np.diag_indices_from(adat)] += STRICT_TOL
            try:
                chol = np.linalg.cholesky(adat)
            except np.linalg.LinAlgError:
                return "numerical", x, lam, s, it

            def solve_newton(
                rc: np.ndarray, rb: np.ndarray, rxs: np.ndarray
            ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
                # Standard reduction of the KKT system:
                #   (A D A') dlam = -r_p - A(D r_d) + A(r_xs / s).
                tmp = -rb - a @ (d * rc) + a @ (rxs / s)
                dlam = np.linalg.solve(
                    chol.T, np.linalg.solve(chol, tmp)
                )
                ds_ = -rc - a.T @ dlam
                dx_ = -(rxs + x * ds_) / s
                return dx_, dlam, ds_

            # Predictor (affine) step.
            dx_aff, dlam_aff, ds_aff = solve_newton(
                r_dual, r_primal, x * s
            )
            alpha_p = _step_length(x, dx_aff)
            alpha_d = _step_length(s, ds_aff)
            mu_aff = float((x + alpha_p * dx_aff)
                           @ (s + alpha_d * ds_aff)) / n
            sigma = (mu_aff / mu) ** 3 if mu > 0 else 0.0

            # Corrector step.
            rxs = x * s + dx_aff * ds_aff - sigma * mu
            dx, dlam, ds = solve_newton(r_dual, r_primal, rxs)
            alpha_p = 0.99 * _step_length(x, dx)
            alpha_d = 0.99 * _step_length(s, ds)
            x = x + alpha_p * dx
            lam = lam + alpha_d * dlam
            s = s + alpha_d * ds
            if not (np.all(np.isfinite(x)) and np.all(np.isfinite(s))):
                return "numerical", x, lam, s, it
            # Divergence heuristics (infeasible/unbounded problems blow
            # the iterates up rather than converging).
            if np.linalg.norm(x) > 1e14 or np.linalg.norm(lam) > 1e14:
                return "diverged", x, lam, s, it
        return "iteration_limit", x, lam, s, self.max_iterations

    # --------------------------------------------------------------- solve

    def solve(
        self,
        lp: LinearProgram,
        state: Optional[SolverState] = None,
        collector: Optional[Collector] = None,
    ) -> Solution:
        """Solve ``lp``; see :class:`repro.solvers.base.Solution`.

        ``state`` may carry the final primal-dual iterate of an earlier
        solve of a structurally identical problem; it is re-centred into
        a starting point (typically saving most Newton iterations).  If
        the warm run fails to converge, the solver transparently retries
        from the cold Mehrotra starting point.  ``collector`` (see
        :mod:`repro.obs`) receives iteration counts, solve timings, and
        warm-start hit/miss counters.
        """
        collector = collector if collector is not None else NULL_COLLECTOR
        sf = _to_standard_form(lp)
        a, b, c = sf.a, sf.b, sf.c
        m, n = a.shape
        if m == 0:
            if np.any(c < -self.tol):
                return Solution(status=SolveStatus.UNBOUNDED)
            x = sf.shift + sf.mapping @ np.zeros(n)
            return Solution(status=SolveStatus.OPTIMAL, x=x,
                            objective=float(lp.c @ x))
        # Drop numerically dependent rows (standard-form conversion can
        # produce them); the normal equations need full row rank.  Rank
        # detection needs *column-pivoted* QR of A' (plain QR's diagonal
        # can vanish at full rank when early columns are parallel).
        _, r_piv, piv = _qr_column_pivot(a.T)
        diag = np.abs(np.diag(r_piv))
        scale = diag.max(initial=0.0)
        rank = int(np.sum(diag > PIVOT_TOL * max(scale, 1.0)))
        if rank < m:
            rows = np.sort(piv[:rank])
            a_red, b_red = a[rows], b[rows]
            # Verify the dropped rows are consistent.
            coeffs, *_ = np.linalg.lstsq(a_red.T, a.T, rcond=None)
            recon_b = coeffs.T @ b_red
            if not np.allclose(recon_b, b, atol=1e-7 * (1 + np.abs(b).max())):
                return Solution(status=SolveStatus.INFEASIBLE,
                                message="inconsistent dependent rows")
            a, b = a_red, b_red

        sig = problem_signature(lp)
        start = None
        if (
            state is not None
            and state.method == "ipm"
            and state.point is not None
            and state.slack is not None
            and tuple(state.signature) == sig
        ):
            start = self._warm_point(
                a, c,
                np.asarray(state.point, dtype=float),
                np.asarray(state.slack, dtype=float),
                None if state.dual is None
                else np.asarray(state.dual, dtype=float),
            )

        with collector.timer("ipm.solve"):
            verdict, x_std, lam_std, s_std, iters = self._solve_standard(
                a, b, c, start=start
            )
        warm_used = start is not None and verdict == "optimal"
        if start is not None and verdict != "optimal":
            # Stale warm point: retry cold so the warm path can never
            # make a solvable problem fail.
            with collector.timer("ipm.cold_retry"):
                verdict, x_std, lam_std, s_std, extra = self._solve_standard(
                    a, b, c
                )
            iters += extra
        collector.increment("ipm.iterations", iters)
        if state is not None:
            collector.increment(
                "ipm.warm_hits" if warm_used else "ipm.warm_misses"
            )
        if verdict == "optimal":
            x = sf.shift + sf.mapping @ x_std
            x = np.clip(x, lp.lower, lp.upper)
            new_state = SolverState(
                method="ipm", signature=sig,
                point=x_std.copy(), dual=lam_std.copy(), slack=s_std.copy(),
            )
            return Solution(status=SolveStatus.OPTIMAL, x=x,
                            objective=float(lp.c @ x), iterations=iters,
                            state=new_state, warm_start_used=warm_used)
        if verdict == "diverged":
            return Solution(status=SolveStatus.INFEASIBLE, iterations=iters,
                            message="iterates diverged "
                                    "(infeasible or unbounded)")
        if verdict == "iteration_limit":
            return Solution(status=SolveStatus.ITERATION_LIMIT,
                            iterations=iters)
        return Solution(status=SolveStatus.NUMERICAL_ERROR, iterations=iters)


def _step_length(v: np.ndarray, dv: np.ndarray) -> float:
    """Largest alpha in (0, 1] keeping ``v + alpha dv > 0``."""
    negative = dv < 0
    if not np.any(negative):
        return 1.0
    return float(min(1.0, np.min(-v[negative] / dv[negative])))


def _qr_column_pivot(
    mat: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """QR with column pivoting via scipy (wrapped for testability)."""
    from scipy.linalg import qr

    return qr(mat, mode="economic", pivoting=True)
