"""Greedy / local-search level assignment for multi-level TUFs.

The multi-level slot problem fixes, for each (request class, data
center) pair, which TUF level the optimizer *targets* (i.e. which
sub-deadline the delay constraint enforces and which utility value the
objective earns).  Once the level vector is fixed, the remaining problem
is the one-level LP.  The exact approach enumerates levels inside a MILP
(:mod:`repro.core.formulation`); this module provides the cheap
alternative — coordinate-descent local search over level vectors with
the LP as evaluation oracle — used as a heuristic ablation and as a warm
start.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.solvers.tolerances import STRICT_TOL

__all__ = ["coordinate_descent_levels"]

Evaluator = Callable[[Tuple[int, ...]], float]


def coordinate_descent_levels(
    num_choices: Sequence[int],
    evaluate: Evaluator,
    initial: Optional[Sequence[int]] = None,
    max_sweeps: int = 10,
) -> Tuple[Tuple[int, ...], float, int]:
    """Maximize ``evaluate(levels)`` by single-coordinate moves.

    Parameters
    ----------
    num_choices:
        ``num_choices[p]`` is the number of admissible levels at
        position ``p``; candidate vectors satisfy
        ``0 <= levels[p] < num_choices[p]``.
    evaluate:
        Objective oracle (an LP solve in the optimizer); larger is
        better.  May return ``-inf`` for infeasible vectors.
    initial:
        Starting vector; defaults to all zeros (every pair targeting its
        highest-value level).
    max_sweeps:
        Full coordinate sweeps before giving up on convergence.

    Returns
    -------
    (best_vector, best_value, evaluations)
    """
    sizes = [int(n) for n in num_choices]
    if any(n < 1 for n in sizes):
        raise ValueError("every position needs at least one choice")
    current: List[int] = list(initial) if initial is not None else [0] * len(sizes)
    if len(current) != len(sizes):
        raise ValueError("initial vector length mismatch")
    for p, (v, n) in enumerate(zip(current, sizes)):
        if not 0 <= v < n:
            raise ValueError(f"initial[{p}]={v} out of range [0, {n})")

    evaluations = 0
    best_value = evaluate(tuple(current))
    evaluations += 1

    for _ in range(max_sweeps):
        improved = False
        for p in range(len(sizes)):
            original = current[p]
            for candidate in range(sizes[p]):
                if candidate == original:
                    continue
                current[p] = candidate
                value = evaluate(tuple(current))
                evaluations += 1
                if value > best_value + STRICT_TOL:
                    best_value = value
                    original = candidate
                    improved = True
            current[p] = original
        if not improved:
            break
    return tuple(current), best_value, evaluations
