"""Nonlinear solver: SLSQP with a quadratic-penalty fallback.

The paper's literal formulation of multi-level TUFs is a *nonlinear*
constraint series (Eqs. 11-13 and 17 contain products of the utility
selector with delay expressions), which the authors hand to AIMMS/CPLEX
CP.  :class:`PenaltySolver` fills that role: it first tries scipy's
SLSQP on the constrained problem and, if that fails to converge, falls
back to a classic quadratic-penalty homotopy solved with L-BFGS-B.

Solutions are *near-optimal* (the problems are non-convex); the exact
MILP path in :mod:`repro.solvers.branch_bound` is the reference the
tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np
from scipy import optimize

from repro.obs.collectors import NULL_COLLECTOR, Collector
from repro.solvers.base import Solution, SolverState, SolveStatus

__all__ = ["NonlinearProgram", "PenaltySolver"]

Fn = Callable[[np.ndarray], float]
VecFn = Callable[[np.ndarray], np.ndarray]


@dataclass
class NonlinearProgram:
    """``min f(x)`` s.t. ``ineq(x) <= 0``, ``eq(x) = 0``, ``l <= x <= u``.

    ``ineq`` and ``eq`` each map x to a vector of constraint residuals.
    """

    objective: Fn
    lower: np.ndarray
    upper: np.ndarray
    ineq: Optional[VecFn] = None
    eq: Optional[VecFn] = None

    def __post_init__(self) -> None:
        self.lower = np.asarray(self.lower, dtype=float).ravel()
        self.upper = np.asarray(self.upper, dtype=float).ravel()
        if self.lower.shape != self.upper.shape:
            raise ValueError("lower and upper must have the same shape")
        if np.any(self.lower > self.upper):
            raise ValueError("lower bound exceeds upper bound")

    @property
    def num_variables(self) -> int:
        """Number of decision variables."""
        return int(self.lower.size)

    def violation(self, x: np.ndarray) -> float:
        """Maximum constraint violation at ``x``."""
        worst = 0.0
        if self.ineq is not None:
            g = np.asarray(self.ineq(x), dtype=float)
            if g.size:
                worst = max(worst, float(np.max(np.clip(g, 0.0, None))))
        if self.eq is not None:
            h = np.asarray(self.eq(x), dtype=float)
            if h.size:
                worst = max(worst, float(np.max(np.abs(h))))
        worst = max(worst, float(np.max(np.clip(self.lower - x, 0, None), initial=0.0)))
        worst = max(worst, float(np.max(np.clip(x - self.upper, 0, None), initial=0.0)))
        return worst


class PenaltySolver:
    """SLSQP-first nonlinear solver with quadratic-penalty fallback.

    Parameters
    ----------
    feasibility_tol:
        Accept a point when its worst constraint violation is below this.
    penalty_rounds:
        Number of penalty-weight escalations in the fallback.
    multi_start:
        Extra random restarts (best feasible point wins).
    """

    def __init__(
        self,
        feasibility_tol: float = 1e-6,
        penalty_rounds: int = 8,
        multi_start: int = 3,
        seed: int = 0,
    ) -> None:
        self.feasibility_tol = float(feasibility_tol)
        self.penalty_rounds = int(penalty_rounds)
        self.multi_start = int(multi_start)
        self.seed = int(seed)

    # ------------------------------------------------------------ attempts

    def _slsqp(self, nlp: NonlinearProgram, x0: np.ndarray) -> Optional[np.ndarray]:
        constraints = []
        if nlp.ineq is not None:
            constraints.append(
                {"type": "ineq", "fun": lambda x: -np.asarray(nlp.ineq(x))}
            )
        if nlp.eq is not None:
            constraints.append({"type": "eq", "fun": lambda x: np.asarray(nlp.eq(x))})
        bounds = optimize.Bounds(nlp.lower, nlp.upper)
        try:
            result = optimize.minimize(
                nlp.objective, x0, method="SLSQP",
                bounds=bounds, constraints=constraints,
                options={"maxiter": 500, "ftol": 1e-10},
            )
        except (ValueError, FloatingPointError):
            return None
        if result.x is None:
            return None
        x = np.clip(result.x, nlp.lower, nlp.upper)
        return x

    def _penalty(self, nlp: NonlinearProgram, x0: np.ndarray) -> Optional[np.ndarray]:
        weight = 10.0
        x = x0.copy()
        bounds = optimize.Bounds(nlp.lower, nlp.upper)
        for _ in range(self.penalty_rounds):
            def penalized(z: np.ndarray, w: float = weight) -> float:
                value = nlp.objective(z)
                if nlp.ineq is not None:
                    g = np.clip(np.asarray(nlp.ineq(z), dtype=float), 0.0, None)
                    value += w * float(g @ g)
                if nlp.eq is not None:
                    h = np.asarray(nlp.eq(z), dtype=float)
                    value += w * float(h @ h)
                return value

            try:
                result = optimize.minimize(
                    penalized, x, method="L-BFGS-B", bounds=bounds,
                    options={"maxiter": 500},
                )
            except (ValueError, FloatingPointError):
                return None
            if result.x is None:
                return None
            x = np.clip(result.x, nlp.lower, nlp.upper)
            if nlp.violation(x) <= self.feasibility_tol:
                return x
            weight *= 10.0
        return x if nlp.violation(x) <= 10 * self.feasibility_tol else None

    # --------------------------------------------------------------- solve

    def solve(
        self,
        nlp: NonlinearProgram,
        x0: Optional[np.ndarray] = None,
        state: Optional[SolverState] = None,
        collector: Optional[Collector] = None,
    ) -> Solution:
        """Find a near-optimal feasible point of ``nlp``.

        ``state`` and ``collector`` follow the solver threading contract
        of :mod:`repro.solvers.base`: ``state`` may carry a previous
        solve's point (:attr:`Solution.state`), which is added as an
        extra start — the non-convex landscape shifts little between
        consecutive slots, so the prior optimum usually lands in the
        right basin immediately.  ``collector`` (see :mod:`repro.obs`)
        receives attempt timings and start counters.  Both default to
        inert values, so existing callers are unaffected.
        """
        collector = collector if collector is not None else NULL_COLLECTOR
        rng = np.random.default_rng(self.seed)
        finite_low = np.where(np.isfinite(nlp.lower), nlp.lower, -1.0)
        finite_high = np.where(np.isfinite(nlp.upper), nlp.upper, finite_low + 2.0)
        starts: List[np.ndarray] = []
        warm_point: Optional[np.ndarray] = None
        if state is not None and state.method == "penalty" and state.point is not None:
            candidate = np.asarray(state.point, dtype=float).ravel()
            if candidate.size == nlp.num_variables:
                warm_point = candidate
        warm_offered = warm_point is not None
        if warm_point is not None:
            starts.append(np.clip(warm_point, nlp.lower, nlp.upper))
        if state is not None:
            collector.increment(
                "penalty.warm_hits" if warm_offered else "penalty.warm_misses"
            )
        if x0 is not None:
            starts.append(np.clip(np.asarray(x0, dtype=float), nlp.lower, nlp.upper))
        starts.append((finite_low + finite_high) / 2.0)
        for _ in range(self.multi_start):
            starts.append(rng.uniform(finite_low, finite_high))
        collector.increment("penalty.starts", len(starts))

        best_x: Optional[np.ndarray] = None
        best_obj = np.inf
        warm_used = False
        with collector.timer("penalty.solve"):
            for start_index, start in enumerate(starts):
                for attempt in (self._slsqp, self._penalty):
                    x = attempt(nlp, start)
                    if x is None or nlp.violation(x) > 10 * self.feasibility_tol:
                        continue
                    obj = float(nlp.objective(x))
                    if obj < best_obj:
                        best_obj = obj
                        best_x = x
                        warm_used = warm_offered and start_index == 0
        if best_x is None:
            return Solution(status=SolveStatus.INFEASIBLE,
                            message="no feasible point found from any start")
        next_state = SolverState(
            method="penalty",
            signature=(nlp.num_variables, 0, 0),
            point=best_x.copy(),
        )
        return Solution(
            status=SolveStatus.OPTIMAL, x=best_x, objective=best_obj,
            state=next_state, warm_start_used=warm_used,
        )
