"""Unified LP front-end.

``solve_lp`` routes a :class:`~repro.solvers.base.LinearProgram` to
scipy's HiGHS (fast, default), the library's own simplex, or the
library's own primal-dual interior-point method — three independent
implementations cross-checked in tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import optimize

from repro.obs.collectors import NULL_COLLECTOR, Collector
from repro.solvers.base import LinearProgram, Solution, SolverState, SolveStatus
from repro.solvers.interior_point import InteriorPointSolver
from repro.solvers.simplex import SimplexSolver

__all__ = ["solve_lp"]

_SCIPY_STATUS = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.ITERATION_LIMIT,
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.NUMERICAL_ERROR,
}


def solve_lp(
    lp: LinearProgram,
    method: str = "highs",
    state: Optional[SolverState] = None,
    collector: Optional[Collector] = None,
    max_iterations: Optional[int] = None,
) -> Solution:
    """Solve a linear program.

    Parameters
    ----------
    lp:
        The minimization problem.
    method:
        ``"highs"`` for scipy's HiGHS solvers, ``"simplex"`` for the
        library's own two-phase simplex, ``"ipm"`` for the library's own
        primal-dual interior-point method.
    state:
        Optional :class:`~repro.solvers.base.SolverState` from an
        earlier solve of a structurally identical problem.  ``simplex``
        and ``ipm`` warm-start from it (falling back to a cold start
        when it is stale); the scipy HiGHS bridge has no warm-start API,
        so ``highs`` ignores it.
    collector:
        Optional telemetry sink (see :mod:`repro.obs`); receives
        backend-specific counters and timings.
    max_iterations:
        Iteration budget (simplex pivots / IPM steps / HiGHS
        iterations); exhausting it yields ``ITERATION_LIMIT``.  ``None``
        keeps each backend's default.
    """
    collector = collector if collector is not None else NULL_COLLECTOR
    if method == "simplex":
        solver = (SimplexSolver() if max_iterations is None
                  else SimplexSolver(max_iterations=max_iterations))
        return solver.solve(lp, state=state, collector=collector)
    if method == "ipm":
        solver = (InteriorPointSolver() if max_iterations is None
                  else InteriorPointSolver(max_iterations=max_iterations))
        return solver.solve(lp, state=state, collector=collector)
    if method != "highs":
        raise ValueError(f"unknown LP method {method!r}")

    if state is not None:
        # HiGHS-via-scipy cannot consume a state; count the offer so
        # warm-start accounting stays truthful for this backend too.
        collector.increment("highs.warm_misses")
    bounds = np.column_stack([lp.lower, lp.upper])
    options = {} if max_iterations is None else {"maxiter": int(max_iterations)}
    with collector.timer("highs.solve"):
        result = optimize.linprog(
            c=lp.c,
            A_ub=lp.a_ub,
            b_ub=lp.b_ub,
            A_eq=lp.a_eq,
            b_eq=lp.b_eq,
            bounds=bounds,
            method="highs",
            options=options or None,
        )
    status = _SCIPY_STATUS.get(result.status, SolveStatus.NUMERICAL_ERROR)
    x = None
    objective = None
    ineq_marginals = None
    eq_marginals = None
    if result.x is not None and status is SolveStatus.OPTIMAL:
        x = np.clip(np.asarray(result.x, dtype=float), lp.lower, lp.upper)
        objective = float(lp.c @ x)
        if getattr(result, "ineqlin", None) is not None:
            ineq_marginals = np.asarray(result.ineqlin.marginals, dtype=float)
        if getattr(result, "eqlin", None) is not None:
            eq_marginals = np.asarray(result.eqlin.marginals, dtype=float)
    collector.increment("highs.iterations", int(getattr(result, "nit", 0) or 0))
    return Solution(
        status=status,
        x=x,
        objective=objective,
        iterations=int(getattr(result, "nit", 0) or 0),
        message=str(result.message or ""),
        ineq_marginals=ineq_marginals,
        eq_marginals=eq_marginals,
    )
