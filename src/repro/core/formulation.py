"""Slot-problem builders: the paper's constrained optimization (Eq. 5-8).

Two interchangeable formulations are provided:

* **per-server** (paper-faithful): decision variables are
  ``lambda_{k,s,i,l}`` and ``phi_{k,i,l}`` for every physical server,
  exactly as in the paper's Table I;
* **aggregated** (fast path): because servers within a data center are
  homogeneous and all constraints are linear, any feasible solution can
  be symmetrized across a data center's servers without changing the
  objective, so it suffices to decide per-data-center totals
  ``lambda_{k,s,l}`` and total share mass ``Phi_{k,l} in [0, M_l]`` with
  the delay constraint ``Phi*C*mu - Lambda >= M_l / D_k``.  Tests verify
  both formulations reach the same optimum for fixed-level problems.
  For *multi-level* TUFs the equivalence is level-wise only: the
  aggregated MILP targets one level per (class, data center) while the
  per-server layout may mix levels across a data center's servers, so
  the per-server optimum can be marginally higher.

For one-level TUFs (or any *fixed* level assignment) the problem is the
LP of paper §IV-1.  For multi-level TUFs the level choice is encoded
with binary selectors ``z_{k,l,q}`` (paper Eqs. 14/25) and the bilinear
revenue term ``U(R) * Lambda`` is linearized exactly with McCormick
variables ``y_{k,l,q} = z_{k,l,q} * Lambda_{k,l}`` — valid because
``sum_q z = 1`` and ``Lambda`` is bounded.  The result is a MILP
equivalent to the paper's constrained program (solved there by CPLEX).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np
from scipy import sparse as _sp

from repro.cloud.topology import CloudTopology
from repro.core.plan import DispatchPlan
from repro.solvers.base import LinearProgram, MixedIntegerProgram
from repro.utils.validation import check_nonnegative, check_positive

__all__ = [
    "SlotInputs",
    "feasibility_margin",
    "fixed_level_lp",
    "multilevel_milp",
    "FixedLevelLPCache",
    "MultilevelMILPCache",
    "DEADLINE_SAFETY",
]

Decoder = Callable[[np.ndarray], DispatchPlan]

#: Relative shrink applied to every deadline inside the solvers.  The LP
#: optimum often sits exactly on a delay constraint; without a margin,
#: re-computing ``R = 1/(phi*C*mu - lambda)`` from the solution in floating
#: point can land infinitesimally *past* the step-downward TUF's cliff and
#: forfeit the whole level's revenue.  1e-6 is far above solver feasibility
#: tolerances and far below any experiment's parameter resolution.
DEADLINE_SAFETY = 1e-6


@dataclass(frozen=True)
class SlotInputs:
    """Everything that varies slot to slot, plus the static topology.

    Attributes
    ----------
    topology:
        The static system description.
    arrivals:
        ``(K, S)`` average arrival rates ``lambda_{k,s}`` for the slot.
    prices:
        ``(L,)`` electricity prices in $/kWh for the slot.
    slot_duration:
        Slot length ``T`` in the rate time unit.
    apply_pue:
        Multiply processing energy by each data center's PUE.
    deadline_scale:
        Plan against deadlines scaled by this factor (in (0, 1]).  1.0
        reproduces the paper; smaller values buy robustness headroom so
        *stochastic* realized delays stay clear of the TUF cliffs (the
        mean-delay constraint alone leaves saturated VMs sitting exactly
        on the boundary).
    delay_factor:
        Multiplier on the required headroom ``1/D`` (>= 1).  1.0 is the
        paper's mean-delay SLA (``E[R] <= D``).  Because the M/M/1
        sojourn is exponential with rate ``mu_eff - lambda``, the tail
        SLA ``P(sojourn > D) <= eps`` is *exactly* the same linear
        constraint with ``delay_factor = ln(1/eps)`` — percentile
        guarantees come for free in this model.
    """

    topology: CloudTopology
    arrivals: np.ndarray = field(repr=False)
    prices: np.ndarray = field(repr=False)
    slot_duration: float = 1.0
    apply_pue: bool = False
    deadline_scale: float = 1.0
    delay_factor: float = 1.0

    def __post_init__(self) -> None:
        topo = self.topology
        arrivals = check_nonnegative(self.arrivals, "arrivals")
        prices = check_nonnegative(self.prices, "prices")
        if arrivals.shape != (topo.num_classes, topo.num_frontends):
            raise ValueError(
                f"arrivals must have shape "
                f"{(topo.num_classes, topo.num_frontends)}, got {arrivals.shape}"
            )
        if prices.shape != (topo.num_datacenters,):
            raise ValueError(
                f"prices must have shape {(topo.num_datacenters,)}, "
                f"got {prices.shape}"
            )
        check_positive(self.slot_duration, "slot_duration")
        if not 0.0 < self.deadline_scale <= 1.0:
            raise ValueError(
                f"deadline_scale must be in (0, 1], got {self.deadline_scale}"
            )
        if self.delay_factor < 1.0:
            raise ValueError(
                f"delay_factor must be >= 1, got {self.delay_factor}"
            )
        object.__setattr__(self, "arrivals", arrivals)
        object.__setattr__(self, "prices", prices)

    # ------------------------------------------------------------- helpers

    def cost_per_request(self) -> np.ndarray:
        """``(K, S, L)`` dollars per dispatched request (energy + transfer).

        ``P_{k,l} * p_l + TranCost_k * d_{s,l}`` (paper Eqs. 2-3).
        dtype float64.
        """
        topo = self.topology
        energy = topo.energy_per_request  # (K, L)
        if self.apply_pue:
            energy = energy * np.array([dc.pue for dc in topo.datacenters])[None, :]
        processing = energy * self.prices[None, :]  # (K, L)
        transfer = topo.transfer_model().per_request_cost()  # (K, S, L)
        return processing[:, None, :] + transfer

    def lambda_max(self) -> np.ndarray:
        """``(K, L)`` valid upper bounds on per-DC class loads.

        Used by the MILP's McCormick linearization; the bound is the
        smaller of total offered load and the data center's raw capacity.
        dtype float64.
        """
        topo = self.topology
        offered = self.arrivals.sum(axis=1)  # (K,)
        dc_cap = topo.service_rates * (
            topo.server_capacities * topo.servers_per_datacenter
        )[None, :]
        return np.minimum(offered[:, None], dc_cap)


def feasibility_margin(
    topology: CloudTopology, deadline_scale: float = 1.0
) -> np.ndarray:
    """Per-data-center slack of the unconditional delay constraints.

    The paper enforces ``1/(phi*C*mu) <= D`` even on unloaded VMs
    (constraint 6 holds unconditionally), which requires every server to
    reserve share ``1/(D_k * C_l * mu_{k,l})`` per class.  Feasibility of
    the slot problem therefore needs

        sum_k 1 / (D_k * C_l * mu_{k,l}) <= 1     for every l.

    Returns the ``(L,)`` float64 array of ``1 - sum_k ...`` margins; a
    negative entry means the topology cannot host all classes on one
    server.
    """
    deadlines = deadline_scale * np.array(
        [rc.deadline for rc in topology.request_classes]
    )
    mu = topology.service_rates  # (K, L)
    cap = topology.server_capacities  # (L,)
    required = 1.0 / (deadlines[:, None] * mu * cap[None, :])  # (K, L)
    return 1.0 - required.sum(axis=0)


def _require_feasible(
    topology: CloudTopology, deadline_scale: float = 1.0
) -> None:
    margin = feasibility_margin(topology, deadline_scale)
    # A data center with zero available servers hosts nothing: its delay
    # rows degenerate to ``lambda <= 0`` and its share budget to 0, so
    # the reserve requirement is vacuous and must not block the slot.
    margin = np.where(topology.servers_per_datacenter > 0, margin, 1.0)
    if np.any(margin < 0):
        bad = int(np.argmin(margin))
        raise ValueError(
            f"infeasible topology: data center "
            f"{topology.datacenters[bad].name!r} cannot reserve the minimum "
            f"CPU shares for all request classes "
            f"(sum_k 1/(D_k C mu_k) = {1 - margin[bad]:.4f} > 1); "
            f"loosen deadlines or raise service rates"
        )


# ---------------------------------------------------------------------------
# Fixed-level LP (one-level TUFs, or any chosen level assignment)
# ---------------------------------------------------------------------------

def _aggregated_csr(
    K: int, S: int, L: int, mu: np.ndarray, cap: np.ndarray
) -> "_sp.csr_matrix":
    """CSR constraint matrix of the aggregated layout, built vectorized.

    Identical coefficients to the dense loops in
    :meth:`FixedLevelLPCache._build_aggregated_structure`; row nonzero
    counts are fixed (delay: S+1, share: K, arrival: L), so the whole
    matrix assembles from index arithmetic with no Python-level loop.
    """
    n_lam = K * S * L
    n_vars = n_lam + K * L
    k = np.repeat(np.arange(K), L)  # delay-row class index, row-major
    l = np.tile(np.arange(L), K)
    lam_cols = (k[:, None] * S + np.arange(S)[None, :]) * L + l[:, None]
    phi_cols = (n_lam + k * L + l)[:, None]
    delay_cols = np.concatenate([lam_cols, phi_cols], axis=1)
    delay_data = np.concatenate(
        [np.ones((K * L, S)), -(cap[l] * mu[k, l])[:, None]], axis=1
    )
    share_cols = n_lam + (np.arange(K)[None, :] * L + np.arange(L)[:, None])
    arr_cols = np.arange(K * S)[:, None] * L + np.arange(L)[None, :]
    indices = np.concatenate(
        [delay_cols.ravel(), share_cols.ravel(), arr_cols.ravel()]
    )
    data = np.concatenate(
        [delay_data.ravel(), np.ones(L * K), np.ones(K * S * L)]
    )
    counts = np.concatenate(
        [np.full(K * L, S + 1), np.full(L, K), np.full(K * S, L)]
    )
    indptr = np.concatenate([[0], np.cumsum(counts)])
    return _sp.csr_matrix(
        (data, indices, indptr), shape=(K * L + L + K * S, n_vars)
    )


def _per_server_csr(
    K: int, S: int, N: int, dc_of: np.ndarray,
    mu: np.ndarray, cap: np.ndarray,
) -> "_sp.csr_matrix":
    """CSR constraint matrix of the per-server layout, built vectorized.

    The dense per-server matrix is ``O((K*N + N + K*S) * (K*S*N + K*N))``
    — roughly a gigabyte at 1800 servers — while its nonzero count is
    only ``K*N*(S+1) + N*K + K*S*N``; this builder never materializes
    the zeros.
    """
    n_lam = K * S * N
    n_vars = n_lam + K * N
    k = np.repeat(np.arange(K), N)  # delay-row class index, row-major
    n = np.tile(np.arange(N), K)
    lam_cols = (k[:, None] * S + np.arange(S)[None, :]) * N + n[:, None]
    phi_cols = (n_lam + k * N + n)[:, None]
    delay_cols = np.concatenate([lam_cols, phi_cols], axis=1)
    coeff = -(cap[dc_of[n]] * mu[k, dc_of[n]])
    delay_data = np.concatenate(
        [np.ones((K * N, S)), coeff[:, None]], axis=1
    )
    share_cols = n_lam + (np.arange(K)[None, :] * N + np.arange(N)[:, None])
    arr_cols = np.arange(K * S)[:, None] * N + np.arange(N)[None, :]
    indices = np.concatenate(
        [delay_cols.ravel(), share_cols.ravel(), arr_cols.ravel()]
    )
    data = np.concatenate(
        [delay_data.ravel(), np.ones(N * K), np.ones(K * S * N)]
    )
    counts = np.concatenate(
        [np.full(K * N, S + 1), np.full(N, K), np.full(K * S, N)]
    )
    indptr = np.concatenate([[0], np.cumsum(counts)])
    return _sp.csr_matrix(
        (data, indices, indptr), shape=(K * N + N + K * S, n_vars)
    )


def _level_tables(
    topology: CloudTopology,
    levels: np.ndarray,
    deadline_scale: float = 1.0,
    delay_factor: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-(k,l) utility and *effective* sub-deadline for an assignment.

    The effective deadline folds in the safety shrink, the robustness
    margin, and the percentile factor: a headroom requirement of
    ``delay_factor / D`` is the same constraint as a mean-delay deadline
    of ``D / delay_factor``.
    """
    k_count, l_count = topology.num_classes, topology.num_datacenters
    utilities = np.empty((k_count, l_count))
    deadlines = np.empty((k_count, l_count))
    scale = deadline_scale * (1.0 - DEADLINE_SAFETY) / delay_factor
    for k, rc in enumerate(topology.request_classes):
        values = rc.tuf.values
        subdeadlines = rc.tuf.deadlines
        for l in range(l_count):
            q = int(levels[k, l])
            if not 0 <= q < values.size:
                raise ValueError(
                    f"level {q} out of range for class {rc.name!r} "
                    f"({values.size} levels)"
                )
            utilities[k, l] = values[q]
            deadlines[k, l] = subdeadlines[q] * scale
    return utilities, deadlines


class FixedLevelLPCache:
    """Slot-invariant skeleton of the fixed-level LP, refilled per slot.

    The slot LP's constraint *matrix*, variable bounds, and decoder
    depend only on the topology and variable layout; everything that
    changes between the controller's hourly slots — electricity prices,
    arrival rates, targeted TUF levels — enters purely through the
    objective vector ``c`` and the right-hand side ``b_ub``.  This cache
    builds the matrix structure once and, on every :meth:`build`, only
    refills those two vectors: ``O(vars)`` ndarray writes instead of the
    ``O(rows x vars)`` Python-level matrix construction the cold path
    pays, which dominates per-slot cost in day-long runs (cf. the
    paper's Fig. 11 computation-time study).

    Returned problems **share** the cache's constraint matrix; treat
    ``lp.a_ub`` as read-only.

    Row layout (relied upon by :mod:`repro.core.sensitivity`): delay
    rows (class-major), then share-budget rows, then arrival-cap rows.

    With ``sparse=True`` the constraint matrix is built directly as a
    ``scipy.sparse`` CSR matrix (same coefficients, same layout, never
    densified) — the representation the sparse solve path of
    :mod:`repro.solvers.sparse` rides.  Dense remains the default and
    serves as the equivalence oracle in tests.
    """

    def __init__(
        self,
        topology: CloudTopology,
        per_server: bool = False,
        sparse: bool = False,
    ) -> None:
        self.topology = topology
        self.per_server = bool(per_server)
        self.sparse = bool(sparse)
        if self.per_server:
            self._build_per_server_structure()
        else:
            self._build_aggregated_structure()

    # --------------------------------------------------------- structure

    def _build_aggregated_structure(self) -> None:
        topo = self.topology
        K, S, L = topo.num_classes, topo.num_frontends, topo.num_datacenters
        M = topo.servers_per_datacenter.astype(float)  # (L,)
        mu = topo.service_rates  # (K, L)
        cap = topo.server_capacities  # (L,)
        n_lam = K * S * L
        n_vars = n_lam + K * L
        self._n_lam = n_lam
        self._n_vars = n_vars
        self._M = M

        if self.sparse:
            self._a_ub = _aggregated_csr(K, S, L, mu, cap)
        else:
            a = np.zeros((K * L + L + K * S, n_vars))
            # (1) Delay: sum_s lam - Phi*C*mu <= -M_l / D_{k,l-level}
            for k in range(K):
                for l in range(L):
                    r = k * L + l
                    for s in range(S):
                        a[r, (k * S + s) * L + l] = 1.0
                    a[r, n_lam + k * L + l] = -cap[l] * mu[k, l]
            # (2) Shares: sum_k Phi_{k,l} <= M_l
            for l in range(L):
                for k in range(K):
                    a[K * L + l, n_lam + k * L + l] = 1.0
            # (3) Arrivals: sum_l lam <= lambda_{k,s}
            for k in range(K):
                for s in range(S):
                    r = K * L + L + k * S + s
                    a[r, (k * S + s) * L:(k * S + s) * L + L] = 1.0
            self._a_ub = a

        upper = np.full(n_vars, np.inf)
        upper[n_lam:] = np.tile(M, K)
        self._upper = upper

        b = np.empty(self._a_ub.shape[0])
        b[K * L:K * L + L] = M
        self._b_template = b

        def decoder(x: np.ndarray) -> DispatchPlan:
            lam = x[:n_lam].reshape(K, S, L)
            phi_total = x[n_lam:].reshape(K, L)
            return _expand_symmetric(topo, lam, phi_total)

        self._decoder: Decoder = decoder

    def _build_per_server_structure(self) -> None:
        topo = self.topology
        K, S = topo.num_classes, topo.num_frontends
        N = topo.num_servers
        dc_of = np.empty(N, dtype=int)
        offsets = topo.server_offsets()
        for l, _dc in enumerate(topo.datacenters):
            dc_of[offsets[l]:offsets[l + 1]] = l
        mu = topo.service_rates  # (K, L)
        cap = topo.server_capacities  # (L,)
        n_lam = K * S * N
        n_vars = n_lam + K * N
        self._n_lam = n_lam
        self._n_vars = n_vars
        self._dc_of = dc_of

        if self.sparse:
            self._a_ub = _per_server_csr(K, S, N, dc_of, mu, cap)
        else:
            a = np.zeros((K * N + N + K * S, n_vars))
            # (1) Delay per (k, n): sum_s lam - phi*C*mu <= -1/D
            for k in range(K):
                for n in range(N):
                    r = k * N + n
                    for s in range(S):
                        a[r, (k * S + s) * N + n] = 1.0
                    l = dc_of[n]
                    a[r, n_lam + k * N + n] = -cap[l] * mu[k, l]
            # (2) Shares per server: sum_k phi <= 1
            for n in range(N):
                for k in range(K):
                    a[K * N + n, n_lam + k * N + n] = 1.0
            # (3) Arrivals: sum_n lam <= lambda_{k,s}
            for k in range(K):
                for s in range(S):
                    r = K * N + N + k * S + s
                    a[r, (k * S + s) * N:(k * S + s) * N + N] = 1.0
            self._a_ub = a

        upper = np.full(n_vars, np.inf)
        upper[n_lam:] = 1.0
        self._upper = upper

        b = np.empty(self._a_ub.shape[0])
        b[K * N:K * N + N] = 1.0
        self._b_template = b

        def decoder(x: np.ndarray) -> DispatchPlan:
            lam = x[:n_lam].reshape(K, S, N)
            phi = x[n_lam:].reshape(K, N)
            phi = _normalize_shares(phi)
            return DispatchPlan(topology=topo, rates=lam, shares=phi)

        self._decoder = decoder

    # -------------------------------------------------------------- build

    def build(
        self, inputs: SlotInputs, levels: Optional[np.ndarray] = None
    ) -> Tuple[LinearProgram, Decoder]:
        """Fill the skeleton with one slot's data; see :func:`fixed_level_lp`."""
        topo = inputs.topology
        if topo is not self.topology:
            raise ValueError(
                "SlotInputs.topology differs from the cache's topology; "
                "build a new cache for a new topology"
            )
        _require_feasible(topo, inputs.deadline_scale / inputs.delay_factor)
        K, S, L = topo.num_classes, topo.num_frontends, topo.num_datacenters
        if levels is None:
            levels = np.zeros((K, L), dtype=int)
        levels = np.asarray(levels, dtype=int)
        if levels.shape != (K, L):
            raise ValueError(
                f"levels must have shape {(K, L)}, got {levels.shape}"
            )
        utilities, deadlines = _level_tables(
            topo, levels, inputs.deadline_scale, inputs.delay_factor
        )
        cost = inputs.cost_per_request()  # (K, S, L)
        # Net profit per dispatched request if the targeted level is met.
        net = utilities[:, None, :] - cost  # (K, S, L)
        T = inputs.slot_duration

        c = np.zeros(self._n_vars)
        b = self._b_template.copy()
        if self.per_server:
            N = topo.num_servers
            c[:self._n_lam] = (-T * net[:, :, self._dc_of]).ravel()
            b[:K * N] = (-1.0 / deadlines[:, self._dc_of]).ravel()
            b[K * N + N:] = inputs.arrivals.ravel()
        else:
            c[:self._n_lam] = (-T * net).ravel()  # minimize -profit
            b[:K * L] = (-self._M / deadlines).ravel()
            b[K * L + L:] = inputs.arrivals.ravel()

        lp = LinearProgram(c=c, a_ub=self._a_ub, b_ub=b, upper=self._upper)
        return lp, self._decoder


def fixed_level_lp(
    inputs: SlotInputs,
    levels: Optional[np.ndarray] = None,
    per_server: bool = False,
    sparse: bool = False,
) -> Tuple[LinearProgram, Decoder]:
    """Build the slot LP for a fixed TUF-level assignment.

    One-shot wrapper over :class:`FixedLevelLPCache`; callers planning
    many slots on one topology should hold a cache instead (the
    optimizer does when warm-starting).

    Parameters
    ----------
    inputs:
        Slot data.
    levels:
        ``(K, L)`` integer level targeted per class per data center;
        ``None`` targets level 0 everywhere (the only choice for
        one-level TUFs — paper §IV-1's plain LP).
    per_server:
        Use the paper-faithful per-server variable layout instead of the
        aggregated one.
    sparse:
        Build the constraint matrix as a ``scipy.sparse`` CSR matrix
        (same coefficients, same layout) instead of a dense ndarray.

    Returns
    -------
    (lp, decoder):
        ``lp`` minimizes *negative* net profit; ``decoder`` maps an LP
        solution vector to a :class:`DispatchPlan`.
    """
    cache = FixedLevelLPCache(
        inputs.topology, per_server=per_server, sparse=sparse
    )
    return cache.build(inputs, levels=levels)


# ---------------------------------------------------------------------------
# Multi-level MILP
# ---------------------------------------------------------------------------

class MultilevelMILPCache:
    """Slot-invariant skeleton of the multi-level slot MILP.

    Unlike the fixed-level LP, a few *matrix* entries of the MILP do
    vary with slot data: the McCormick big-M coefficients and the ``y``
    upper bounds both use ``Lambda_max`` (a function of the arrivals).
    The cache records their (row, column) positions during the one-time
    structural build and patches exactly those entries on each
    :meth:`build` — everything else (sparsity pattern, equality system,
    level selectors, integrality mask, decoder) is reused.  The
    constraint matrix handed out is a fresh copy per build (one
    ``memcpy``), so returned problems never alias each other.

    The structure depends on ``deadline_scale``/``delay_factor`` (they
    scale the delay rows' ``z`` coefficients); the cache transparently
    rebuilds if those change between calls.

    ``tight_bounds`` (default on) replaces the raw McCormick cap
    ``Lambda_max = min(offered, M*C*mu)`` with the per-*level*
    deadline-aware bound ``min(offered, M*(C*mu - 1/D_q))``: whenever
    ``z_q = 1`` the delay row already forces
    ``Lambda <= Phi*C*mu - M/D_q <= M*(C*mu - 1/D_q)``, so the tighter
    cap cuts no integer-feasible point — it only strengthens every
    branch-and-bound node's LP relaxation (the §VII audit's MD010/MD012
    looseness findings are about exactly this slack).  Pass
    ``tight_bounds=False`` to reproduce the historical envelope.
    """

    def __init__(
        self, topology: CloudTopology, tight_bounds: bool = True
    ) -> None:
        self.topology = topology
        self.tight_bounds = bool(tight_bounds)
        self._key: Optional[Tuple[float, float]] = None

    # --------------------------------------------------------- structure

    def _build_structure(self, key: Tuple[float, float]) -> None:
        deadline_scale, delay_factor = key
        topo = self.topology
        K, S, L = topo.num_classes, topo.num_frontends, topo.num_datacenters
        M = topo.servers_per_datacenter.astype(float)
        mu = topo.service_rates
        cap = topo.server_capacities

        level_counts = [rc.tuf.num_levels for rc in topo.request_classes]
        n_lam = K * S * L
        n_phi = K * L
        # z and y blocks, laid out class-major then dc-major then level.
        zy_offsets = np.concatenate(
            [[0], np.cumsum([q * L for q in level_counts])]
        )
        n_z = int(zy_offsets[-1])
        n_vars = n_lam + n_phi + 2 * n_z
        self._n_lam = n_lam
        self._n_vars = n_vars

        def lam_idx(k: int, s: int, l: int) -> int:
            return (k * S + s) * L + l

        def phi_idx(k: int, l: int) -> int:
            return n_lam + k * L + l

        def z_idx(k: int, l: int, q: int) -> int:
            return n_lam + n_phi + int(zy_offsets[k]) + l * level_counts[k] + q

        def y_idx(k: int, l: int, q: int) -> int:
            return (n_lam + n_phi + n_z + int(zy_offsets[k])
                    + l * level_counts[k] + q)

        # Slot-invariant part of the objective: revenue enters through y
        # with the static TUF values; the lam block is overwritten with
        # the slot's costs on every build.
        c_unit = np.zeros(n_vars)
        for k, rc in enumerate(topo.request_classes):
            values = rc.tuf.values
            for l in range(L):
                for q in range(level_counts[k]):
                    c_unit[y_idx(k, l, q)] = -float(values[q])
        self._c_unit = c_unit

        rows_ub: List[np.ndarray] = []
        b_ub: List[float] = []
        rows_eq: List[np.ndarray] = []
        b_eq: List[float] = []
        # Positions of the arrival-dependent McCormick coefficients.
        mc_rows: List[int] = []
        mc_cols: List[int] = []
        mc_k: List[int] = []
        mc_l: List[int] = []
        mc_caps: List[float] = []
        y_cols: List[int] = []
        y_k: List[int] = []
        y_l: List[int] = []

        for k, rc in enumerate(topo.request_classes):
            subdeadlines = rc.tuf.deadlines
            for l in range(L):
                # (1) Delay with level-dependent sub-deadline:
                # Lambda - Phi*C*mu + sum_q (M_l / D_q) z_q <= 0
                row = np.zeros(n_vars)
                for s in range(S):
                    row[lam_idx(k, s, l)] = 1.0
                row[phi_idx(k, l)] = -cap[l] * mu[k, l]
                for q in range(level_counts[k]):
                    row[z_idx(k, l, q)] = M[l] / float(
                        subdeadlines[q] * deadline_scale
                        * (1.0 - DEADLINE_SAFETY) / delay_factor
                    )
                rows_ub.append(row)
                b_ub.append(0.0)

                # (4) Level selection: sum_q z = 1
                row = np.zeros(n_vars)
                for q in range(level_counts[k]):
                    row[z_idx(k, l, q)] = 1.0
                rows_eq.append(row)
                b_eq.append(1.0)

                # (5) McCormick sum: sum_q y - Lambda = 0
                row = np.zeros(n_vars)
                for q in range(level_counts[k]):
                    row[y_idx(k, l, q)] = 1.0
                for s in range(S):
                    row[lam_idx(k, s, l)] = -1.0
                rows_eq.append(row)
                b_eq.append(0.0)

                # (6) McCormick caps: y_q - Lambda_max z_q <= 0; the
                # -Lambda_max entries are patched per slot.
                for q in range(level_counts[k]):
                    row = np.zeros(n_vars)
                    row[y_idx(k, l, q)] = 1.0
                    mc_rows.append(len(rows_ub))
                    mc_cols.append(z_idx(k, l, q))
                    mc_k.append(k)
                    mc_l.append(l)
                    # Static half of the per-level tight cap
                    # M*(C*mu - 1/D_q): the 1/D_q term reuses the delay
                    # row's exact z coefficient so both constraints
                    # agree to the last bit.
                    mc_caps.append(
                        M[l] * cap[l] * mu[k, l] - M[l] / float(
                            subdeadlines[q] * deadline_scale
                            * (1.0 - DEADLINE_SAFETY) / delay_factor
                        )
                    )
                    y_cols.append(y_idx(k, l, q))
                    y_k.append(k)
                    y_l.append(l)
                    rows_ub.append(row)
                    b_ub.append(0.0)

        # (2) Shares: sum_k Phi_{k,l} <= M_l
        for l in range(L):
            row = np.zeros(n_vars)
            for k in range(K):
                row[phi_idx(k, l)] = 1.0
            rows_ub.append(row)
            b_ub.append(M[l])

        # (3) Arrivals: sum_l lam <= lambda_{k,s} (rhs filled per slot)
        self._arrival_row0 = len(rows_ub)
        for k in range(K):
            for s in range(S):
                row = np.zeros(n_vars)
                for l in range(L):
                    row[lam_idx(k, s, l)] = 1.0
                rows_ub.append(row)
                b_ub.append(0.0)

        self._a_ub = np.array(rows_ub)
        self._b_ub_template = np.array(b_ub)
        self._a_eq = np.array(rows_eq)
        self._b_eq = np.array(b_eq)
        self._mc_rows = np.array(mc_rows, dtype=int)
        self._mc_cols = np.array(mc_cols, dtype=int)
        self._mc_k = np.array(mc_k, dtype=int)
        self._mc_l = np.array(mc_l, dtype=int)
        self._mc_caps = np.array(mc_caps, dtype=float)
        self._y_cols = np.array(y_cols, dtype=int)
        self._y_k = np.array(y_k, dtype=int)
        self._y_l = np.array(y_l, dtype=int)

        self._lower = np.zeros(n_vars)
        upper = np.full(n_vars, np.inf)
        integer_mask = np.zeros(n_vars, dtype=bool)
        for k in range(K):
            for l in range(L):
                upper[phi_idx(k, l)] = M[l]
                for q in range(level_counts[k]):
                    upper[z_idx(k, l, q)] = 1.0
                    integer_mask[z_idx(k, l, q)] = True
        self._upper = upper
        self._integer_mask = integer_mask

        topo_ref = topo
        n_phi_ref = n_phi

        def decoder(x: np.ndarray) -> DispatchPlan:
            lam = x[:n_lam].reshape(K, S, L)
            phi_total = x[n_lam:n_lam + n_phi_ref].reshape(K, L)
            return _expand_symmetric(topo_ref, lam, phi_total)

        self._decoder: Decoder = decoder
        self._key = key

    # -------------------------------------------------------------- build

    def build(
        self, inputs: SlotInputs
    ) -> Tuple[MixedIntegerProgram, Decoder]:
        """Fill the skeleton with one slot's data; see :func:`multilevel_milp`."""
        topo = inputs.topology
        if topo is not self.topology:
            raise ValueError(
                "SlotInputs.topology differs from the cache's topology; "
                "build a new cache for a new topology"
            )
        _require_feasible(topo, inputs.deadline_scale / inputs.delay_factor)
        key = (float(inputs.deadline_scale), float(inputs.delay_factor))
        if self._key != key:
            self._build_structure(key)

        lam_max = inputs.lambda_max()  # (K, L)
        bound = lam_max[self._mc_k, self._mc_l]
        if self.tight_bounds:
            bound = np.minimum(bound, np.maximum(self._mc_caps, 0.0))
        self._a_ub[self._mc_rows, self._mc_cols] = -np.maximum(bound, 1e-12)
        self._upper[self._y_cols] = np.maximum(bound, 0.0)

        T = inputs.slot_duration
        c = self._c_unit * T  # revenue via y
        c[:self._n_lam] = (T * inputs.cost_per_request()).ravel()

        b_ub = self._b_ub_template.copy()
        b_ub[self._arrival_row0:] = inputs.arrivals.ravel()

        lp = LinearProgram(
            c=c,
            a_ub=self._a_ub.copy(), b_ub=b_ub,
            a_eq=self._a_eq, b_eq=self._b_eq,
            lower=self._lower, upper=self._upper,
        )
        mip = MixedIntegerProgram(lp=lp, integer_mask=self._integer_mask)
        return mip, self._decoder


def multilevel_milp(
    inputs: SlotInputs, tight_bounds: bool = True
) -> Tuple[MixedIntegerProgram, Decoder]:
    """Build the multi-level-TUF slot MILP (aggregated formulation).

    One-shot wrapper over :class:`MultilevelMILPCache`; callers planning
    many slots on one topology should hold a cache instead.
    ``tight_bounds`` selects the deadline-aware per-level McCormick caps
    (see :class:`MultilevelMILPCache`).

    Variables per data center ``l`` and class ``k`` with ``Q_k`` levels:

    * ``lam_{k,s,l} >= 0`` — dispatched rates;
    * ``Phi_{k,l} in [0, M_l]`` — total CPU share mass;
    * ``z_{k,l,q} in {0,1}`` — targeted TUF level (``sum_q z = 1``);
    * ``y_{k,l,q} >= 0`` — McCormick product ``z * Lambda``.

    Constraints: delay with the targeted sub-deadline, share budget,
    arrival caps, level selection, and the exact linearization
    ``sum_q y = Lambda``, ``y_q <= Lambda_max * z_q``.
    """
    cache = MultilevelMILPCache(inputs.topology, tight_bounds=tight_bounds)
    return cache.build(inputs)


# ---------------------------------------------------------------------------
# Shared decoding helpers
# ---------------------------------------------------------------------------

def _normalize_shares(phi: np.ndarray) -> np.ndarray:
    """Scale down columns whose share sum drifted above 1 numerically."""
    totals = phi.sum(axis=0)
    over = totals > 1.0
    if np.any(over):
        phi = phi.copy()
        phi[:, over] /= totals[over][None, :]
    return phi


def _expand_symmetric(
    topo: CloudTopology, lam: np.ndarray, phi_total: np.ndarray
) -> DispatchPlan:
    """Expand an aggregated solution symmetrically over each DC's servers."""
    K, S = topo.num_classes, topo.num_frontends
    N = topo.num_servers
    rates = np.zeros((K, S, N))
    shares = np.zeros((K, N))
    offsets = topo.server_offsets()
    for l, dc in enumerate(topo.datacenters):
        m = dc.num_servers
        if m == 0:
            # Zero-server data centers contribute no columns; their
            # aggregated load is forced to 0 by the delay rows.
            continue
        sl = slice(offsets[l], offsets[l + 1])
        rates[:, :, sl] = lam[:, :, l][:, :, None] / m
        shares[:, sl] = phi_total[:, l][:, None] / m
    return DispatchPlan(topology=topo, rates=rates, shares=shares)
