"""Time utility functions (TUFs).

The paper models per-request SLA profit as a *non-increasing* time
utility function of the expected delay (paper §III-B1, Fig. 3):

* a **constant** TUF pays ``U_1`` for any delay up to the deadline
  (Eq. 9) — "one-level step-downward";
* a **multi-level step-downward** TUF pays ``U_q`` when the delay lands
  in ``(D_{q-1}, D_q]`` and zero past the final deadline (Eqs. 10, 16);
* any **monotonic non-increasing** TUF can be approximated by a
  step-downward TUF with many levels (the paper notes it is the limit of
  infinitely many steps).

All utilities here are *per request* in dollars; the optimizer multiplies
by the dispatched rate and the slot length.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Sequence, Tuple, Union

import numpy as np

from repro.utils.validation import (
    check_nonnegative,
    check_positive,
    check_strictly_increasing,
)

__all__ = [
    "UtilityLevel",
    "TimeUtilityFunction",
    "StepDownwardTUF",
    "ConstantTUF",
    "MonotonicTUF",
]

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class UtilityLevel:
    """One step of a step-downward TUF.

    ``value`` is earned per request whose expected delay does not exceed
    ``deadline`` (but exceeds the previous level's deadline).
    """

    value: float
    deadline: float

    def __post_init__(self) -> None:
        check_nonnegative(self.value, "value")
        check_positive(self.deadline, "deadline")


class TimeUtilityFunction(ABC):
    """Abstract non-increasing map from expected delay to $ per request."""

    @abstractmethod
    def utility(self, delay: ArrayLike) -> ArrayLike:
        """Per-request utility earned at expected delay ``delay``."""

    @property
    @abstractmethod
    def deadline(self) -> float:
        """Final deadline ``D_k``; utility is zero for delays beyond it."""

    @property
    @abstractmethod
    def max_value(self) -> float:
        """The largest attainable per-request utility."""

    def __call__(self, delay: ArrayLike) -> ArrayLike:
        return self.utility(delay)


class StepDownwardTUF(TimeUtilityFunction):
    """Multi-level step-downward TUF (paper Eqs. 9, 10, 16).

    Parameters
    ----------
    values:
        Per-level utilities ``U_{k,1} > U_{k,2} > ... > U_{k,n} >= 0``.
    deadlines:
        Strictly increasing sub-deadlines ``D_{k,1} < ... < D_{k,n}``;
        the last entry is the final deadline ``D_k``.

    Examples
    --------
    >>> tuf = StepDownwardTUF(values=[10.0, 4.0], deadlines=[0.5, 1.0])
    >>> tuf.utility(0.3), tuf.utility(0.7), tuf.utility(1.5)
    (10.0, 4.0, 0.0)
    """

    def __init__(self, values: Sequence[float], deadlines: Sequence[float]) -> None:
        values_arr = check_nonnegative(list(values), "values")
        deadlines_arr = check_strictly_increasing(deadlines, "deadlines")
        if values_arr.ndim != 1 or values_arr.size == 0:
            raise ValueError("values must be a non-empty 1-D sequence")
        if values_arr.size != deadlines_arr.size:
            raise ValueError(
                f"values ({values_arr.size}) and deadlines "
                f"({deadlines_arr.size}) must have the same length"
            )
        if values_arr.size >= 2 and np.any(np.diff(values_arr) >= 0):
            raise ValueError(
                "values must be strictly decreasing (U_1 > U_2 > ...), "
                f"got {values_arr!r}"
            )
        self._values = values_arr
        self._deadlines = deadlines_arr

    @property
    def values(self) -> np.ndarray:
        """Per-level utilities, float64 copy."""
        return self._values.copy()

    @property
    def deadlines(self) -> np.ndarray:
        """Per-level sub-deadlines, float64 copy."""
        return self._deadlines.copy()

    @property
    def num_levels(self) -> int:
        """Number of steps ``n``."""
        return int(self._values.size)

    @property
    def deadline(self) -> float:
        return float(self._deadlines[-1])

    @property
    def max_value(self) -> float:
        return float(self._values[0])

    @property
    def levels(self) -> Tuple[UtilityLevel, ...]:
        """The steps as :class:`UtilityLevel` tuples."""
        return tuple(
            UtilityLevel(float(v), float(d))
            for v, d in zip(self._values, self._deadlines)
        )

    def utility(self, delay: ArrayLike) -> ArrayLike:
        delay_arr = np.asarray(delay, dtype=float)
        # level index q such that D_{q-1} < delay <= D_q; past the final
        # deadline the request earns nothing.
        idx = np.searchsorted(self._deadlines, delay_arr, side="left")
        padded = np.concatenate([self._values, [0.0]])
        out = np.where(delay_arr <= 0.0, self._values[0], padded[idx])
        out = np.where(delay_arr > self._deadlines[-1], 0.0, out)
        if np.isscalar(delay) or np.ndim(delay) == 0:
            return float(out)
        return out

    def level_for_delay(self, delay: float) -> int:
        """0-based level index achieved at ``delay``; -1 past the deadline."""
        if delay > self.deadline:
            return -1
        if delay <= 0.0:
            return 0
        return int(np.searchsorted(self._deadlines, delay, side="left"))

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"({v:g}$, <= {d:g})" for v, d in zip(self._values, self._deadlines)
        )
        return f"StepDownwardTUF[{pairs}]"


class ConstantTUF(StepDownwardTUF):
    """One-level step-downward TUF (paper Eq. 9): ``U_1`` until ``D``.

    Examples
    --------
    >>> tuf = ConstantTUF(value=10.0, deadline=0.02)
    >>> tuf.utility(0.01), tuf.utility(0.05)
    (10.0, 0.0)
    """

    def __init__(self, value: float, deadline: float) -> None:
        super().__init__(values=[value], deadlines=[deadline])

    def __repr__(self) -> str:
        return f"ConstantTUF(value={self.max_value:g}, deadline={self.deadline:g})"


class MonotonicTUF(TimeUtilityFunction):
    """Arbitrary monotonic non-increasing TUF given as a callable.

    The paper notes that a monotonic TUF is the infinite-step limit of a
    step-downward TUF; :meth:`discretize` produces that approximation so
    the same solvers apply.
    """

    def __init__(self, fn: Callable[[float], float], deadline: float) -> None:
        check_positive(deadline, "deadline")
        self._fn = fn
        self._deadline = float(deadline)
        value_at_zero = float(fn(0.0))
        check_nonnegative(value_at_zero, "fn(0)")
        self._max_value = value_at_zero

    @property
    def deadline(self) -> float:
        return self._deadline

    @property
    def max_value(self) -> float:
        return self._max_value

    def utility(self, delay: ArrayLike) -> ArrayLike:
        delay_arr = np.asarray(delay, dtype=float)
        vec = np.vectorize(self._fn, otypes=[float])
        out = np.where(delay_arr > self._deadline, 0.0, vec(np.clip(delay_arr, 0.0, None)))
        if np.isscalar(delay) or np.ndim(delay) == 0:
            return float(out)
        return out

    def discretize(self, num_levels: int) -> StepDownwardTUF:
        """Approximate by an ``num_levels``-step step-downward TUF.

        Level ``q`` covers delays in ``((q-1)*D/n, q*D/n]`` and pays the
        utility at the *left* edge of the interval (an upper bound that
        converges to the original function as ``num_levels`` grows).
        Consecutive equal values are perturbed to keep strict decrease.
        """
        if num_levels < 1:
            raise ValueError("num_levels must be >= 1")
        edges = np.linspace(0.0, self._deadline, num_levels + 1)
        values = np.array([float(self._fn(edge)) for edge in edges[:-1]])
        # Enforce monotonicity requirements of StepDownwardTUF.
        values = np.minimum.accumulate(values)
        eps = max(self._max_value, 1.0) * 1e-9
        for q in range(1, values.size):
            if values[q] >= values[q - 1]:
                values[q] = values[q - 1] - eps * (q + 1)
        values = np.clip(values, 0.0, None)
        # Strictness may still fail at the zero floor; nudge upward.
        for q in range(values.size - 2, -1, -1):
            if values[q] <= values[q + 1]:
                values[q] = values[q + 1] + eps
        return StepDownwardTUF(values=values, deadlines=edges[1:])
