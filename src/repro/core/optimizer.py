"""The paper's "Optimized" approach: profit-aware dispatching/allocation.

:class:`ProfitAwareOptimizer` solves the per-slot constrained
optimization of §IV and returns a :class:`~repro.core.plan.DispatchPlan`.
Solve paths:

* ``"lp"`` — one-level TUFs (paper §IV-1): a plain LP;
* ``"milp"`` — multi-level TUFs via the exact MILP with binary level
  selectors (the role CPLEX plays in the paper);
* ``"bigm"`` — the paper's literal big-M nonlinear constraint series
  solved with a penalty/SLSQP method, repaired through the LP;
* ``"greedy"`` — coordinate-descent local search over level vectors
  with the LP as oracle (cheap heuristic ablation);
* ``"auto"`` (default) — ``"lp"`` when every class has a one-level TUF,
  ``"milp"`` otherwise.

Formulations: ``"aggregated"`` (fast, provably equivalent given
homogeneous servers per data center) or ``"per_server"``
(paper-faithful variable layout; also used by the Fig. 11 computation-
time study since its size grows with the server count).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cloud.datacenter import DataCenter
from repro.cloud.topology import CloudTopology
from repro.core.baselines import BalancedDispatcher
from repro.core.bigm import solve_slot_bigm
from repro.core.config import OptimizerConfig
from repro.core.formulation import (
    Decoder,
    FixedLevelLPCache,
    MultilevelMILPCache,
    SlotInputs,
    fixed_level_lp,
    multilevel_milp,
)
from repro.core.objective import evaluate_plan
from repro.core.plan import DispatchPlan
from repro.core.rightsizing import consolidate_plan
from repro.obs.collectors import Collector
from repro.obs.trace import SlotTrace
from repro.solvers.base import (
    LinearProgram,
    MixedIntegerProgram,
    Solution,
    SolverError,
    SolverState,
)
from repro.solvers.branch_bound import solve_milp
from repro.solvers.levels import coordinate_descent_levels
from repro.solvers.linprog import solve_lp
from repro.solvers.sparse import (
    BlockPlan,
    class_blocks,
    solve_decomposed,
    solve_sparse_lp,
    validate_block_plan,
)
from repro.solvers.tolerances import ZERO_TOL

__all__ = ["OptimizerConfig", "ProfitAwareOptimizer", "SolveStats"]


@dataclass(frozen=True)
class SolveStats:
    """Diagnostics from the most recent ``plan_slot`` call."""

    method: str
    formulation: str
    wall_time: float
    num_variables: int
    num_constraints: int
    iterations: int = 0
    nodes: int = 0
    objective: float = 0.0
    lp_evaluations: int = 0
    #: True when this solve was seeded with state from an earlier slot
    #: (a solver state and/or a greedy level vector).
    warm_started: bool = False
    #: ``"off"``/``"cold"``/``"hit"``/``"miss"`` — whether warm-starting
    #: was enabled, had state to offer, and whether the solver took it.
    warm_outcome: str = "off"
    #: Wall seconds spent building/refilling the slot problem.
    build_time: float = 0.0
    #: Wall seconds spent inside the solver.
    solve_time: float = 0.0
    #: Wall seconds spent on consolidation / spare-capacity passes.
    postprocess_time: float = 0.0
    #: Integer number of powered servers implied by the plan's share
    #: mass (filled by the sparse path's symmetry collapse; 0 elsewhere).
    active_servers: int = 0
    #: Position in the fallback chain that produced the plan (0 = the
    #: requested solver succeeded; see ``OptimizerConfig.fallback``).
    fallback_level: int = 0
    #: Name of the winning stage (``"lp"``, ``"lp:simplex"``,
    #: ``"greedy"``, ``"balanced"``, ...).
    fallback_stage: str = ""
    #: ``"; "``-joined error messages of the stages that failed before
    #: the winning one ("" when the primary solve succeeded).
    failure: str = ""


def _explode_topology(topology: CloudTopology) -> CloudTopology:
    """Rewrite the topology so each physical server is its own 1-server DC.

    The aggregated formulation on the exploded topology *is* the
    per-server formulation on the original one, so every solve path
    (including the MILP) gains a per-server variant for free.  Flat
    server ordering is preserved, so plans fold back unchanged.
    """
    datacenters = []
    distances_cols = []
    for l, dc in enumerate(topology.datacenters):
        for i in range(dc.num_servers):
            datacenters.append(DataCenter(
                name=f"{dc.name}#srv{i}",
                num_servers=1,
                service_rates=dc.service_rates,
                energy_per_request=dc.energy_per_request,
                server_capacity=dc.server_capacity,
                pue=dc.pue,
            ))
            distances_cols.append(topology.distances[:, l])
    return CloudTopology(
        request_classes=topology.request_classes,
        frontends=topology.frontends,
        datacenters=tuple(datacenters),
        distances=np.stack(distances_cols, axis=1),
    )


class ProfitAwareOptimizer:
    """Profit- and cost-aware slot optimizer (the paper's "Optimized").

    The only constructor signature is::

        ProfitAwareOptimizer(topology, config=OptimizerConfig(...))

    Every knob lives on the frozen, validated
    :class:`~repro.core.config.OptimizerConfig` (see its docstring for
    the full catalogue: solve path, formulation, backends, robustness
    margins, warm-starting, telemetry collector).  ``config=None``
    means the all-defaults configuration.  Flat constructor keywords
    (``level_method=...`` and friends, removed with the PR-2
    deprecation shim) raise ``TypeError``.

    Per-slot diagnostics land on :attr:`last_stats`
    (:class:`SolveStats`); when ``config.collector`` is enabled, each
    ``plan_slot`` call additionally emits a
    :class:`~repro.obs.trace.SlotTrace` and threads the collector
    through the underlying LP/MILP solvers.

    With ``config.fallback`` (the default), a failed solve no longer
    aborts the run: the slot is retried and then re-solved down a chain
    of increasingly conservative stages — alternate exact backend,
    greedy level search, and finally the always-feasible Balanced plan —
    so ``plan_slot`` returns a feasible plan for every slot.  The chain
    position that produced the plan is reported as
    :attr:`SolveStats.fallback_level` and in the slot trace's
    ``fallback``/``failure`` fields.
    """

    name = "optimized"

    def __init__(
        self,
        topology: CloudTopology,
        config: Optional[OptimizerConfig] = None,
    ) -> None:
        if config is None:
            config = OptimizerConfig()
        self.topology = topology
        self.config = config
        # Flat mirrors, kept for backward compatibility with pre-config
        # call sites (and cheaper attribute access on the hot path).
        self.level_method = config.level_method
        self.formulation = config.formulation
        self.lp_method = config.lp_method
        self.milp_method = config.milp_method
        self.consolidate = config.consolidate
        self.apply_pue = config.apply_pue
        self.use_spare_capacity = config.use_spare_capacity
        self.deadline_margin = config.deadline_margin
        self.percentile_sla = config.percentile_sla
        self._delay_factor = config.delay_factor
        self.warm_start = config.warm_start
        #: Telemetry sink; reassignable (e.g. by ``run_simulation``).
        self.collector: Collector = config.collector
        #: Slot index stamped onto the next emitted trace; advanced by
        #: every ``plan_slot`` call, reset by :meth:`reset_warm_state`.
        self.slot_index = 0
        self.last_stats: Optional[SolveStats] = None
        self._multilevel = any(
            rc.tuf.num_levels > 1 for rc in topology.request_classes
        )
        # Formulation caches (structure only; built lazily, never reset).
        self._lp_cache: Optional[FixedLevelLPCache] = None
        self._milp_cache: Optional[MultilevelMILPCache] = None
        # Sparse solve path (config.sparse): CSR aggregated cache — the
        # symmetry collapse of identical servers — plus the per-class
        # block plan and its warm-start states.
        self._sparse_cache: Optional[FixedLevelLPCache] = None
        self._sparse_blocks: Optional[List[BlockPlan]] = None
        self._sparse_coupling: Optional[np.ndarray] = None
        self._sparse_block_states: Optional[List[Optional[SolverState]]] = None
        self._sparse_joint_state: Optional[SolverState] = None
        self._exploded_topology: Optional[CloudTopology] = None
        # Last-resort fallback dispatcher (built lazily, topology-static).
        self._baseline: Optional[BalancedDispatcher] = None
        # Cross-slot solver state (cleared by reset_warm_state).
        self._lp_state: Optional[SolverState] = None
        self._milp_state: Optional[SolverState] = None
        self._greedy_lp_states: Dict[Tuple[int, ...], SolverState] = {}
        self._greedy_last_state: Optional[SolverState] = None
        self._greedy_levels: Optional[Tuple[int, ...]] = None

    def reset_warm_state(self) -> None:
        """Forget all cross-slot solver state.

        The formulation caches are kept (they depend only on the
        topology); only the advisory warm-start seeds are dropped (and
        the trace slot counter rewound), so a run started after this
        call behaves exactly like a fresh optimizer.
        """
        self._drop_solver_state()
        self.slot_index = 0

    # --------------------------------------------------------------- public

    def plan_slot(
        self,
        arrivals: np.ndarray,
        prices: np.ndarray,
        slot_duration: float = 1.0,
    ) -> DispatchPlan:
        """Solve one slot and return the dispatch plan."""
        if not slot_duration > 0.0:
            raise ValueError(
                f"slot_duration must be positive (got {slot_duration}); "
                "it is the slot length in hours over which the arrival "
                "rates apply — e.g. 1.0 for the paper's hourly slots"
            )
        method = self.level_method
        if method == "auto":
            method = "milp" if self._multilevel else "lp"
        if method == "lp" and self._multilevel:
            raise ValueError(
                "level_method='lp' requires one-level TUFs; use 'milp', "
                "'bigm', or 'greedy' for multi-level TUFs"
            )
        inputs = SlotInputs(
            topology=self.topology,
            arrivals=arrivals,
            prices=prices,
            slot_duration=slot_duration,
            apply_pue=self.apply_pue,
            deadline_scale=self.deadline_margin,
            delay_factor=self._delay_factor,
        )
        audit_findings = self._audit_inputs(inputs)
        start = time.perf_counter()
        if self.config.fallback:
            plan, stats, fallback_level, fallback_stage, failure = \
                self._solve_with_fallback(method, inputs, start)
        else:
            plan, stats = self._solve_stage(
                method, inputs,
                budget=self.config.solver_iteration_budget,
            )
            fallback_level, fallback_stage, failure = 0, method, ""
        certificates = self._certify_solution(stats.pop("certify", None),
                                              inputs)
        post_start = time.perf_counter()
        if self.consolidate:
            plan = consolidate_plan(plan)
        if self.use_spare_capacity:
            plan = plan.with_spare_capacity_distributed()
        postprocess_time = time.perf_counter() - post_start
        elapsed = time.perf_counter() - start
        if not self.warm_start:
            warm_outcome = "off"
        elif not stats.get("warm_offered", False):
            warm_outcome = "cold"
        elif stats.get("warm_used", False):
            warm_outcome = "hit"
        else:
            warm_outcome = "miss"
        self.last_stats = SolveStats(
            method=method,
            formulation=self.formulation,
            wall_time=elapsed,
            num_variables=int(stats.get("num_variables", 0)),
            num_constraints=int(stats.get("num_constraints", 0)),
            iterations=int(stats.get("iterations", 0)),
            nodes=int(stats.get("nodes", 0)),
            objective=float(stats.get("objective", 0.0)),
            lp_evaluations=int(stats.get("lp_evaluations", 0)),
            warm_started=bool(stats.get("warm_offered", False)),
            warm_outcome=warm_outcome,
            build_time=float(stats.get("build_time", 0.0)),
            solve_time=float(stats.get("solve_time", 0.0)),
            postprocess_time=postprocess_time,
            active_servers=int(stats.get("active_servers", 0)),
            fallback_level=fallback_level,
            fallback_stage=fallback_stage,
            failure=failure,
        )
        slot = self.slot_index
        self.slot_index = slot + 1
        collector = self.collector
        if collector.enabled:
            collector.increment("optimizer.slots")
            collector.increment(f"optimizer.warm_{warm_outcome}")
            collector.observe_time("optimizer.plan_slot", elapsed)
            if fallback_level > 0:
                collector.increment("optimizer.fallbacks")
                collector.increment(f"optimizer.fallback_{fallback_stage}")
            collector.record_slot(SlotTrace(
                slot=slot,
                method=method,
                formulation=self.formulation,
                warm_start=warm_outcome,
                objective=float(stats.get("objective", 0.0)),
                total_time=elapsed,
                phase_times={
                    "build": float(stats.get("build_time", 0.0)),
                    "solve": float(stats.get("solve_time", 0.0)),
                    "postprocess": postprocess_time,
                    # The sparse path adds disjoint stage timings
                    # (collapse/decompose/expand) so fleet benches can
                    # see where the time went.
                    **{key: float(value) for key, value
                       in stats.get("extra_phases", {}).items()},
                },
                iterations=int(stats.get("iterations", 0)),
                nodes=int(stats.get("nodes", 0)),
                lp_evaluations=int(stats.get("lp_evaluations", 0)),
                num_variables=int(stats.get("num_variables", 0)),
                num_constraints=int(stats.get("num_constraints", 0)),
                residuals=stats.get("residuals", {}),
                fallback=fallback_level,
                failure=failure,
                audit=audit_findings,
                certificates=certificates,
            ))
        return plan

    def _audit_inputs(self, inputs: SlotInputs) -> List[Dict]:
        """Run the formulation auditor per ``config.audit``.

        Returns the findings as plain dicts (for the slot trace);
        raises :class:`SolverError` in ``"error"`` mode when the audit
        reports an error-severity finding, *before* any solver runs.
        """
        if self.config.audit == "off":
            return []
        from repro.analysis.model import audit_slot

        report = audit_slot(inputs)
        collector = self.collector
        if collector.enabled:
            collector.increment("optimizer.audits")
            if report.findings:
                collector.increment(
                    "optimizer.audit_findings", len(report.findings)
                )
            if report.errors:
                collector.increment(
                    "optimizer.audit_errors", len(report.errors)
                )
        if self.config.audit == "error" and not report.clean:
            first = report.errors[0]
            raise SolverError(
                f"formulation audit failed with {len(report.errors)} "
                f"error(s); first: {first.code} [{first.component}] "
                f"{first.message}"
            )
        return [finding.to_dict() for finding in report.findings]

    def _certify_solution(
        self, payload: Optional[Dict], inputs: SlotInputs
    ) -> List[Dict]:
        """Run the optimality certifier per ``config.certify``.

        ``payload`` is the winning solve stage's ``{"problem",
        "solution", "plan", "coupling_rows"?}`` capture (stages that
        produce no certifiable LP — big-M, the balanced baseline — stash
        nothing, which counts as a skip).  Returns the findings as plain
        dicts (for the slot trace); raises :class:`SolverError` in
        ``"error"`` mode when a certificate check reports an
        error-severity finding, *before* the plan is returned.
        """
        if self.config.certify == "off":
            return []
        collector = self.collector
        if payload is None:
            if collector.enabled:
                collector.increment("optimizer.certify_skipped")
            return []
        from repro.analysis.certify import certify_solution

        report = certify_solution(
            payload["problem"],
            payload["solution"],
            inputs=inputs,
            plan=payload.get("plan"),
            coupling_rows=payload.get("coupling_rows"),
        )
        if collector.enabled:
            collector.increment("optimizer.certifies")
            if report.findings:
                collector.increment(
                    "optimizer.certify_findings", len(report.findings)
                )
            if report.errors:
                collector.increment(
                    "optimizer.certify_errors", len(report.errors)
                )
        if self.config.certify == "error" and not report.clean:
            first = report.errors[0]
            raise SolverError(
                f"optimality certificate failed with {len(report.errors)} "
                f"error(s); first: {first.code} [{first.component}] "
                f"{first.message}"
            )
        return [finding.to_dict() for finding in report.findings]

    # ----------------------------------------------------- fallback pipeline

    def _solve_stage(
        self,
        method: str,
        inputs: SlotInputs,
        lp_method: Optional[str] = None,
        milp_method: Optional[str] = None,
        budget: Optional[int] = None,
    ) -> Tuple[DispatchPlan, Dict]:
        """Run one solve path; raises :class:`SolverError` on failure.

        ``lp_method``/``milp_method`` override the configured backends
        (fallback stages re-solve with an *independent* implementation);
        ``budget`` caps solver work (iterations for LPs, nodes for
        MILPs).  The big-M path has no budget knob.
        """
        if method == "lp":
            return self._solve_lp(
                inputs, lp_method=lp_method, max_iterations=budget
            )
        if method == "milp":
            return self._solve_milp(
                inputs, milp_method=milp_method, max_nodes=budget
            )
        if method == "greedy":
            return self._solve_greedy(
                inputs, lp_method=lp_method, max_iterations=budget
            )
        # bigm
        t0 = time.perf_counter()
        plan = solve_slot_bigm(inputs, lp_method=lp_method or self.lp_method)
        return plan, {"num_variables": 0, "num_constraints": 0,
                      "solve_time": time.perf_counter() - t0}

    def _solve_baseline(self, inputs: SlotInputs) -> Tuple[DispatchPlan, Dict]:
        """Last-resort stage: the always-feasible Balanced plan.

        The price-greedy :class:`BalancedDispatcher` admits load only up
        to each server's deadline-safe M/M/1 capacity, so its plan is
        feasible by construction for *any* slot data — it may drop
        demand, but it never violates a constraint and never fails.
        """
        if self._baseline is None:
            self._baseline = BalancedDispatcher(self.topology)
        t0 = time.perf_counter()
        plan = self._baseline.plan_slot(
            inputs.arrivals, inputs.prices, slot_duration=inputs.slot_duration
        )
        outcome = evaluate_plan(
            plan, inputs.arrivals, inputs.prices,
            slot_duration=inputs.slot_duration, apply_pue=inputs.apply_pue,
        )
        return plan, {
            "num_variables": 0,
            "num_constraints": 0,
            "objective": outcome.net_profit,
            "solve_time": time.perf_counter() - t0,
        }

    def _fallback_stages(self, method: str) -> List[Tuple[str, Dict]]:
        """Ordered rescue stages after the failed primary ``method``.

        Each entry is ``(stage_name, _solve_stage kwargs)``; the final
        ``"balanced"`` sentinel maps to :meth:`_solve_baseline`.  The
        chain re-solves with an alternate exact backend first (HiGHS,
        simplex, and the own B&B are independent implementations, so a
        numerical failure in one rarely repeats in another), then the
        greedy level search, then the baseline plan.
        """
        stages: List[Tuple[str, Dict]] = []
        if self._multilevel:
            if method != "milp":
                stages.append(
                    (f"milp:{self.milp_method}", {"method": "milp"})
                )
            else:
                alt = "bb" if self.milp_method != "bb" else "highs"
                stages.append((f"milp:{alt}", {"method": "milp",
                                               "milp_method": alt}))
        else:
            alt = ("simplex"
                   if not (method == "lp" and self.lp_method == "simplex")
                   else "highs")
            stages.append((f"lp:{alt}", {"method": "lp", "lp_method": alt}))
        if method != "greedy":
            stages.append(("greedy", {"method": "greedy"}))
        stages.append(("balanced", {}))
        return stages

    def _drop_solver_state(self) -> None:
        """Clear cross-slot warm-start seeds (stale state is a common
        cause of a failed solve) without rewinding the trace counter."""
        self._lp_state = None
        self._milp_state = None
        self._sparse_block_states = None
        self._sparse_joint_state = None
        self._greedy_lp_states.clear()
        self._greedy_last_state = None
        self._greedy_levels = None

    def _solve_with_fallback(
        self, method: str, inputs: SlotInputs, start: float
    ) -> Tuple[DispatchPlan, Dict, int, str, str]:
        """Drive the fallback chain until some stage yields a plan.

        Returns ``(plan, stats, fallback_level, stage_name, failure)``
        where ``fallback_level`` is the chain position of the winning
        stage (0 = requested solver) and ``failure`` joins the error
        messages collected along the way.  The final baseline stage
        cannot fail, so every call returns a feasible plan.
        """
        config = self.config
        failures: List[str] = []
        stages: List[Tuple[str, Dict]] = [
            (method, {"method": method,
                      "budget": config.solver_iteration_budget})
        ]
        stages.extend(self._fallback_stages(method))
        last = len(stages) - 1
        time_budget = config.fallback_time_budget
        for level, (stage_name, kwargs) in enumerate(stages):
            if (level and level < last and time_budget is not None
                    and time.perf_counter() - start > time_budget):
                failures.append(
                    f"{stage_name}: skipped (over time budget "
                    f"{time_budget:g}s)"
                )
                continue
            for attempt in range(1 + config.fallback_retries):
                if attempt or level:
                    # Retries and rescue stages start cold.
                    self._drop_solver_state()
                try:
                    if stage_name == "balanced":
                        plan, stats = self._solve_baseline(inputs)
                    else:
                        plan, stats = self._solve_stage(inputs=inputs,
                                                        **kwargs)
                except SolverError as exc:
                    failures.append(f"{stage_name}: {exc}")
                    continue
                return plan, stats, level, stage_name, "; ".join(failures)
        raise SolverError(  # pragma: no cover - balanced cannot fail
            "fallback chain exhausted: " + "; ".join(failures)
        )

    # -------------------------------------------------------------- private

    def _build_lp(
        self, inputs: SlotInputs, levels: Optional[np.ndarray] = None
    ) -> Tuple[LinearProgram, Decoder]:
        per_server = self.formulation == "per_server"
        if not self.warm_start:
            return fixed_level_lp(inputs, levels=levels, per_server=per_server)
        if self._lp_cache is None:
            self._lp_cache = FixedLevelLPCache(
                self.topology, per_server=per_server
            )
        return self._lp_cache.build(inputs, levels=levels)

    def _solve_lp(
        self,
        inputs: SlotInputs,
        lp_method: Optional[str] = None,
        max_iterations: Optional[int] = None,
    ) -> Tuple[DispatchPlan, Dict]:
        # A fallback stage re-solving with an alternate backend neither
        # consumes nor overwrites the primary backend's warm state.
        # The sparse/decomposed path serves only the primary stage:
        # fallback stages name their backend explicitly and stay dense,
        # so they remain independent implementations.
        if self.config.sparse and lp_method is None:
            return self._solve_lp_sparse(inputs, max_iterations=max_iterations)
        override = lp_method is not None and lp_method != self.lp_method
        lp_method = lp_method if lp_method is not None else self.lp_method
        t0 = time.perf_counter()
        lp, decoder = self._build_lp(inputs)
        t1 = time.perf_counter()
        state = self._lp_state if (self.warm_start and not override) else None
        solution = solve_lp(
            lp, method=lp_method, state=state, collector=self.collector,
            max_iterations=max_iterations,
        )
        t2 = time.perf_counter()
        if not solution.ok:
            raise SolverError(
                f"slot LP failed: {solution.status.value} {solution.message}"
            )
        if self.warm_start and not override:
            self._lp_state = solution.state
        stats = {
            "num_variables": lp.num_variables,
            "num_constraints": lp.num_constraints,
            "iterations": solution.iterations,
            "objective": -solution.objective,
            "warm_offered": state is not None,
            "warm_used": solution.warm_start_used,
            "build_time": t1 - t0,
            "solve_time": t2 - t1,
        }
        if self.collector.enabled:
            stats["residuals"] = lp.residuals(solution.x)
        plan = decoder(solution.x)
        if self.config.certify != "off":
            stats["certify"] = {
                "problem": lp, "solution": solution, "plan": plan,
            }
        return plan, stats

    def _solve_lp_sparse(
        self,
        inputs: SlotInputs,
        max_iterations: Optional[int] = None,
    ) -> Tuple[DispatchPlan, Dict]:
        """Sparse/decomposed slot solve (``config.sparse``).

        Always formulates on the **aggregated** CSR cache — for
        ``formulation="per_server"`` this *is* the symmetry collapse:
        identical servers within a data center become one aggregate
        share variable, and the decoder expands the solution back to a
        per-server plan (exact for homogeneous servers, see
        ``fixed_level_lp``).  The per-class block decomposition is tried
        first (independent blocks, each warm-started from its own
        state); when a coupling row binds, the joint LP is solved by
        the bounded dual simplex with an RHS-only warm re-solve.

        Stage timings are reported disjointly so the slot trace shows
        where the time went: ``build`` (or ``collapse`` under
        per-server), ``decompose`` (block solves + coupling check),
        ``solve`` (joint solve — zero when decomposition succeeded),
        and ``expand`` (decode back to a per-server plan).
        """
        use_warm = self.warm_start
        t0 = time.perf_counter()
        if self._sparse_cache is None:
            self._sparse_cache = FixedLevelLPCache(self.topology, sparse=True)
        lp, decoder = self._sparse_cache.build(inputs)
        t1 = time.perf_counter()
        topo = self.topology
        K, S, L = topo.num_classes, topo.num_frontends, topo.num_datacenters
        if self._sparse_blocks is None or self._sparse_coupling is None:
            blocks, coupling = class_blocks(K, S, L)
            validate_block_plan(lp, blocks, coupling)
            self._sparse_blocks = blocks
            self._sparse_coupling = coupling
        warm_offered = use_warm and (
            self._sparse_block_states is not None
            or self._sparse_joint_state is not None
        )
        decomposed = solve_decomposed(
            lp, self._sparse_blocks, self._sparse_coupling,
            states=self._sparse_block_states if use_warm else None,
            collector=self.collector,
            max_iterations=max_iterations,
            workers=self.config.sparse_block_workers,
        )
        t2 = time.perf_counter()
        if decomposed is not None:
            solution = decomposed.solution
            if use_warm:
                self._sparse_block_states = decomposed.states
            joint_time = 0.0
        else:
            solution = solve_sparse_lp(
                lp,
                state=self._sparse_joint_state if use_warm else None,
                collector=self.collector,
                max_iterations=max_iterations,
            )
            joint_time = time.perf_counter() - t2
            if use_warm:
                self._sparse_joint_state = (
                    solution.state if solution.ok else None
                )
        if not solution.ok:
            raise SolverError(
                f"slot LP failed: {solution.status.value} {solution.message}"
            )
        t3 = time.perf_counter()
        plan = decoder(solution.x)
        expand_time = time.perf_counter() - t3
        # Integer server counts implied by the aggregate share mass.
        n_lam = K * S * L
        dc_shares = solution.x[n_lam:n_lam + K * L].reshape(K, L).sum(axis=0)
        active_servers = int(np.ceil(np.maximum(dc_shares, 0.0) - ZERO_TOL).sum())
        extra_phases = {"decompose": t2 - t1, "expand": expand_time}
        if self.formulation == "per_server":
            build_time, extra_phases["collapse"] = 0.0, t1 - t0
        else:
            build_time = t1 - t0
        stats = {
            "num_variables": lp.num_variables,
            "num_constraints": lp.num_constraints,
            "iterations": solution.iterations,
            "objective": -solution.objective,
            "warm_offered": warm_offered,
            "warm_used": solution.warm_start_used,
            "build_time": build_time,
            "solve_time": joint_time,
            "extra_phases": extra_phases,
            "active_servers": active_servers,
        }
        if self.collector.enabled:
            stats["residuals"] = lp.residuals(solution.x)
        if self.config.certify != "off":
            stats["certify"] = {
                "problem": lp, "solution": solution, "plan": plan,
                "coupling_rows": self._sparse_coupling,
            }
        return plan, stats

    def _build_milp(
        self, inputs: SlotInputs
    ) -> Tuple[MixedIntegerProgram, Decoder]:
        if not self.warm_start:
            return multilevel_milp(inputs)
        if self._milp_cache is None or self._milp_cache.topology is not inputs.topology:
            self._milp_cache = MultilevelMILPCache(inputs.topology)
        return self._milp_cache.build(inputs)

    def _solve_milp(
        self,
        inputs: SlotInputs,
        milp_method: Optional[str] = None,
        max_nodes: Optional[int] = None,
    ) -> Tuple[DispatchPlan, Dict]:
        override = milp_method is not None and milp_method != self.milp_method
        milp_method = (milp_method if milp_method is not None
                       else self.milp_method)
        if self.formulation == "per_server":
            if self._exploded_topology is None:
                self._exploded_topology = _explode_topology(self.topology)
            exploded = self._exploded_topology
            inputs = SlotInputs(
                topology=exploded,
                arrivals=inputs.arrivals,
                prices=np.repeat(
                    inputs.prices, self.topology.servers_per_datacenter
                ),
                slot_duration=inputs.slot_duration,
                apply_pue=inputs.apply_pue,
                deadline_scale=inputs.deadline_scale,
                delay_factor=inputs.delay_factor,
            )
        t0 = time.perf_counter()
        mip, decoder = self._build_milp(inputs)
        t1 = time.perf_counter()
        state = self._milp_state if (self.warm_start and not override) else None
        solution = solve_milp(
            mip, method=milp_method, state=state, collector=self.collector,
            max_nodes=max_nodes,
        )
        t2 = time.perf_counter()
        if not solution.ok:
            raise SolverError(
                f"slot MILP failed: {solution.status.value} {solution.message}"
            )
        if self.warm_start and not override:
            self._milp_state = solution.state
        plan = decoder(solution.x)
        if self.formulation == "per_server":
            plan = DispatchPlan(
                topology=self.topology,
                rates=plan.rates,
                shares=plan.shares,
            )
        stats = {
            "num_variables": mip.lp.num_variables,
            "num_constraints": mip.lp.num_constraints,
            "iterations": solution.iterations,
            "nodes": solution.nodes,
            "objective": -solution.objective,
            "warm_offered": state is not None,
            "warm_used": solution.warm_start_used,
            "build_time": t1 - t0,
            "solve_time": t2 - t1,
        }
        if self.collector.enabled:
            stats["residuals"] = mip.lp.residuals(solution.x)
        if self.config.certify != "off":
            # ``plan`` is re-wrapped on the original topology, so the
            # CT051 profit identity scores it against the original slot
            # inputs; the MILP itself certifies in its own (possibly
            # exploded) space.
            stats["certify"] = {
                "problem": mip, "solution": solution, "plan": plan,
            }
        return plan, stats

    def _solve_greedy(
        self,
        inputs: SlotInputs,
        lp_method: Optional[str] = None,
        max_iterations: Optional[int] = None,
    ) -> Tuple[DispatchPlan, Dict]:
        override = lp_method is not None and lp_method != self.lp_method
        lp_method = lp_method if lp_method is not None else self.lp_method
        use_warm = self.warm_start and not override
        topo = self.topology
        K, L = topo.num_classes, topo.num_datacenters
        sizes = []
        for k in range(K):
            q = topo.request_classes[k].tuf.num_levels
            sizes.extend([q] * L)

        best_plan: Dict[Tuple[int, ...], DispatchPlan] = {}
        best_solution: Dict[Tuple[int, ...], Solution] = {}

        def evaluate(levels_flat: Tuple[int, ...]) -> float:
            levels = np.asarray(levels_flat, dtype=int).reshape(K, L)
            lp, decoder = self._build_lp(inputs, levels=levels)
            state = None
            if use_warm:
                # Prefer the state from the last solve of this exact
                # level vector (a later sweep, or the previous slot's
                # nearby data); fall back to the most recent solve of
                # any vector — same structure, so still a usable seed.
                state = (self._greedy_lp_states.get(levels_flat)
                         or self._greedy_last_state)
            solution = solve_lp(
                lp, method=lp_method, state=state,
                collector=self.collector,
                max_iterations=max_iterations,
            )
            if not solution.ok:
                return -np.inf
            if use_warm and solution.state is not None:
                self._greedy_lp_states[levels_flat] = solution.state
                self._greedy_last_state = solution.state
            best_plan[levels_flat] = decoder(solution.x)
            best_solution[levels_flat] = solution
            return -solution.objective

        t0 = time.perf_counter()
        initial = self._greedy_levels if use_warm else None
        if initial is not None and len(initial) != len(sizes):
            initial = None
        warm_used = initial is not None
        vector, value, evaluations = coordinate_descent_levels(
            sizes, evaluate, initial=initial
        )
        if vector not in best_plan and initial is not None:
            # The seeded neighborhood was entirely infeasible under the
            # new slot data; restart cold so warm-starting can never fail
            # a slot the cold search would solve.
            warm_used = False
            vector, value, extra = coordinate_descent_levels(sizes, evaluate)
            evaluations += extra
        if vector not in best_plan:
            raise SolverError("greedy level search found no feasible assignment")
        if use_warm:
            self._greedy_levels = vector
        stats = {
            "lp_evaluations": evaluations,
            "objective": value,
            "warm_offered": initial is not None,
            "warm_used": warm_used,
            "solve_time": time.perf_counter() - t0,
        }
        if self.config.certify != "off":
            # The warm-start cache refills one shared LP object in
            # place, so whatever ``evaluate`` last built may not be the
            # winner's problem — rebuild the winning level vector's LP
            # for the certificate.
            winner_levels = np.asarray(vector, dtype=int).reshape(K, L)
            winner_lp, _ = self._build_lp(inputs, levels=winner_levels)
            stats["certify"] = {
                "problem": winner_lp,
                "solution": best_solution[vector],
                "plan": best_plan[vector],
            }
        return best_plan[vector], stats
