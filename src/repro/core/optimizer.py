"""The paper's "Optimized" approach: profit-aware dispatching/allocation.

:class:`ProfitAwareOptimizer` solves the per-slot constrained
optimization of §IV and returns a :class:`~repro.core.plan.DispatchPlan`.
Solve paths:

* ``"lp"`` — one-level TUFs (paper §IV-1): a plain LP;
* ``"milp"`` — multi-level TUFs via the exact MILP with binary level
  selectors (the role CPLEX plays in the paper);
* ``"bigm"`` — the paper's literal big-M nonlinear constraint series
  solved with a penalty/SLSQP method, repaired through the LP;
* ``"greedy"`` — coordinate-descent local search over level vectors
  with the LP as oracle (cheap heuristic ablation);
* ``"auto"`` (default) — ``"lp"`` when every class has a one-level TUF,
  ``"milp"`` otherwise.

Formulations: ``"aggregated"`` (fast, provably equivalent given
homogeneous servers per data center) or ``"per_server"``
(paper-faithful variable layout; also used by the Fig. 11 computation-
time study since its size grows with the server count).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.cloud.datacenter import DataCenter
from repro.cloud.topology import CloudTopology
from repro.core.bigm import solve_slot_bigm
from repro.core.formulation import (
    FixedLevelLPCache,
    MultilevelMILPCache,
    SlotInputs,
    fixed_level_lp,
    multilevel_milp,
)
from repro.core.plan import DispatchPlan
from repro.core.rightsizing import consolidate_plan
from repro.solvers.base import SolverError, SolverState
from repro.solvers.branch_bound import solve_milp
from repro.solvers.levels import coordinate_descent_levels
from repro.solvers.linprog import solve_lp

__all__ = ["ProfitAwareOptimizer", "SolveStats"]


@dataclass(frozen=True)
class SolveStats:
    """Diagnostics from the most recent ``plan_slot`` call."""

    method: str
    formulation: str
    wall_time: float
    num_variables: int
    num_constraints: int
    iterations: int = 0
    nodes: int = 0
    objective: float = 0.0
    lp_evaluations: int = 0
    #: True when this solve was seeded with state from an earlier slot
    #: (a solver state and/or a greedy level vector).
    warm_started: bool = False


def _explode_topology(topology: CloudTopology) -> CloudTopology:
    """Rewrite the topology so each physical server is its own 1-server DC.

    The aggregated formulation on the exploded topology *is* the
    per-server formulation on the original one, so every solve path
    (including the MILP) gains a per-server variant for free.  Flat
    server ordering is preserved, so plans fold back unchanged.
    """
    datacenters = []
    distances_cols = []
    for l, dc in enumerate(topology.datacenters):
        for i in range(dc.num_servers):
            datacenters.append(DataCenter(
                name=f"{dc.name}#srv{i}",
                num_servers=1,
                service_rates=dc.service_rates,
                energy_per_request=dc.energy_per_request,
                server_capacity=dc.server_capacity,
                pue=dc.pue,
            ))
            distances_cols.append(topology.distances[:, l])
    return CloudTopology(
        request_classes=topology.request_classes,
        frontends=topology.frontends,
        datacenters=tuple(datacenters),
        distances=np.stack(distances_cols, axis=1),
    )


class ProfitAwareOptimizer:
    """Profit- and cost-aware slot optimizer (the paper's "Optimized").

    Parameters
    ----------
    topology:
        The static system description.
    level_method:
        ``"auto"``, ``"lp"``, ``"milp"``, ``"bigm"``, or ``"greedy"``.
    formulation:
        ``"aggregated"`` or ``"per_server"``.
    lp_method:
        LP backend (``"highs"`` or the library's own ``"simplex"``).
    milp_method:
        MILP backend (``"highs"`` or the library's own ``"bb"``).
    consolidate:
        Run the right-sizing consolidation pass on every plan.
    apply_pue:
        Include PUE in the processing-energy cost.
    use_spare_capacity:
        Distribute each server's unused CPU to its loaded VMs after
        solving (free under the per-request energy model; strictly
        improves delays, keeping stochastic realizations away from the
        TUF cliffs).  On by default.
    deadline_margin:
        Plan against deadlines scaled by this factor in (0, 1].  1.0 is
        the paper's formulation; at saturation it leaves mean delays
        exactly on the TUF boundary, where stochastic realizations earn
        the level only about half the time.  A margin like 0.85 trades a
        little admission capacity for robust realized revenue (see
        ``benchmarks/bench_validation_des.py``).
    percentile_sla:
        When set to ``eps`` in (0, 1), plan for the *tail* SLA
        ``P(sojourn > D) <= eps`` instead of the paper's mean-delay SLA.
        Exact for the M/M/1 model (exponential sojourns): the constraint
        is the same LP row with the headroom requirement multiplied by
        ``ln(1/eps)``.
    warm_start:
        Reuse work across successive ``plan_slot`` calls: the slot
        problem's constraint structure is built once and refilled per
        slot (:class:`FixedLevelLPCache` / :class:`MultilevelMILPCache`),
        and each solve's :class:`~repro.solvers.base.SolverState` seeds
        the next (simplex basis, interior point, B&B incumbent, greedy
        level vector).  States are advisory: a stale one falls back to a
        cold start, so results are unaffected for the exact methods —
        only ``"greedy"`` may land on a different local optimum because
        the seeded level vector changes the search trajectory.  Call
        :meth:`reset_warm_state` to make back-to-back runs bit-reproducible.
    """

    name = "optimized"

    def __init__(
        self,
        topology: CloudTopology,
        level_method: str = "auto",
        formulation: str = "aggregated",
        lp_method: str = "highs",
        milp_method: str = "highs",
        consolidate: bool = False,
        apply_pue: bool = False,
        use_spare_capacity: bool = True,
        deadline_margin: float = 1.0,
        percentile_sla: Optional[float] = None,
        warm_start: bool = True,
    ):
        if level_method not in ("auto", "lp", "milp", "bigm", "greedy"):
            raise ValueError(f"unknown level_method {level_method!r}")
        if formulation not in ("aggregated", "per_server"):
            raise ValueError(f"unknown formulation {formulation!r}")
        self.topology = topology
        self.level_method = level_method
        self.formulation = formulation
        self.lp_method = lp_method
        self.milp_method = milp_method
        self.consolidate = consolidate
        self.apply_pue = apply_pue
        self.use_spare_capacity = use_spare_capacity
        if not 0.0 < deadline_margin <= 1.0:
            raise ValueError(
                f"deadline_margin must be in (0, 1], got {deadline_margin}"
            )
        self.deadline_margin = float(deadline_margin)
        if percentile_sla is not None and not 0.0 < percentile_sla < 1.0:
            raise ValueError(
                f"percentile_sla must be in (0, 1), got {percentile_sla}"
            )
        self.percentile_sla = percentile_sla
        self._delay_factor = (
            1.0 if percentile_sla is None else float(np.log(1.0 / percentile_sla))
        )
        if self._delay_factor < 1.0:
            # eps > 1/e would *weaken* the mean constraint; floor at the
            # paper's mean-delay requirement.
            self._delay_factor = 1.0
        self.last_stats: Optional[SolveStats] = None
        self._multilevel = any(
            rc.tuf.num_levels > 1 for rc in topology.request_classes
        )
        self.warm_start = bool(warm_start)
        # Formulation caches (structure only; built lazily, never reset).
        self._lp_cache: Optional[FixedLevelLPCache] = None
        self._milp_cache: Optional[MultilevelMILPCache] = None
        self._exploded_topology: Optional[CloudTopology] = None
        # Cross-slot solver state (cleared by reset_warm_state).
        self._lp_state: Optional[SolverState] = None
        self._milp_state: Optional[SolverState] = None
        self._greedy_lp_states: Dict[Tuple[int, ...], SolverState] = {}
        self._greedy_last_state: Optional[SolverState] = None
        self._greedy_levels: Optional[Tuple[int, ...]] = None

    def reset_warm_state(self) -> None:
        """Forget all cross-slot solver state.

        The formulation caches are kept (they depend only on the
        topology); only the advisory warm-start seeds are dropped, so a
        run started after this call behaves exactly like a fresh
        optimizer.
        """
        self._lp_state = None
        self._milp_state = None
        self._greedy_lp_states.clear()
        self._greedy_last_state = None
        self._greedy_levels = None

    # --------------------------------------------------------------- public

    def plan_slot(
        self,
        arrivals: np.ndarray,
        prices: np.ndarray,
        slot_duration: float = 1.0,
    ) -> DispatchPlan:
        """Solve one slot and return the dispatch plan."""
        method = self.level_method
        if method == "auto":
            method = "milp" if self._multilevel else "lp"
        if method == "lp" and self._multilevel:
            raise ValueError(
                "level_method='lp' requires one-level TUFs; use 'milp', "
                "'bigm', or 'greedy' for multi-level TUFs"
            )
        inputs = SlotInputs(
            topology=self.topology,
            arrivals=arrivals,
            prices=prices,
            slot_duration=slot_duration,
            apply_pue=self.apply_pue,
            deadline_scale=self.deadline_margin,
            delay_factor=self._delay_factor,
        )
        start = time.perf_counter()
        if method == "lp":
            plan, stats = self._solve_lp(inputs)
        elif method == "milp":
            plan, stats = self._solve_milp(inputs)
        elif method == "greedy":
            plan, stats = self._solve_greedy(inputs)
        else:  # bigm
            plan = solve_slot_bigm(inputs, lp_method=self.lp_method)
            stats = {"num_variables": 0, "num_constraints": 0}
        elapsed = time.perf_counter() - start
        if self.consolidate:
            plan = consolidate_plan(plan)
        if self.use_spare_capacity:
            plan = plan.with_spare_capacity_distributed()
        self.last_stats = SolveStats(
            method=method,
            formulation=self.formulation,
            wall_time=elapsed,
            num_variables=int(stats.get("num_variables", 0)),
            num_constraints=int(stats.get("num_constraints", 0)),
            iterations=int(stats.get("iterations", 0)),
            nodes=int(stats.get("nodes", 0)),
            objective=float(stats.get("objective", 0.0)),
            lp_evaluations=int(stats.get("lp_evaluations", 0)),
            warm_started=bool(stats.get("warm_started", False)),
        )
        return plan

    # -------------------------------------------------------------- private

    def _build_lp(self, inputs: SlotInputs, levels=None):
        per_server = self.formulation == "per_server"
        if not self.warm_start:
            return fixed_level_lp(inputs, levels=levels, per_server=per_server)
        if self._lp_cache is None:
            self._lp_cache = FixedLevelLPCache(
                self.topology, per_server=per_server
            )
        return self._lp_cache.build(inputs, levels=levels)

    def _solve_lp(self, inputs: SlotInputs) -> Tuple[DispatchPlan, Dict]:
        lp, decoder = self._build_lp(inputs)
        state = self._lp_state if self.warm_start else None
        solution = solve_lp(lp, method=self.lp_method, state=state)
        if not solution.ok:
            raise SolverError(
                f"slot LP failed: {solution.status.value} {solution.message}"
            )
        if self.warm_start:
            self._lp_state = solution.state
        return decoder(solution.x), {
            "num_variables": lp.num_variables,
            "num_constraints": lp.num_constraints,
            "iterations": solution.iterations,
            "objective": -solution.objective,
            "warm_started": state is not None,
        }

    def _build_milp(self, inputs: SlotInputs):
        if not self.warm_start:
            return multilevel_milp(inputs)
        if self._milp_cache is None or self._milp_cache.topology is not inputs.topology:
            self._milp_cache = MultilevelMILPCache(inputs.topology)
        return self._milp_cache.build(inputs)

    def _solve_milp(self, inputs: SlotInputs) -> Tuple[DispatchPlan, Dict]:
        if self.formulation == "per_server":
            if self._exploded_topology is None:
                self._exploded_topology = _explode_topology(self.topology)
            exploded = self._exploded_topology
            inputs = SlotInputs(
                topology=exploded,
                arrivals=inputs.arrivals,
                prices=np.repeat(
                    inputs.prices, self.topology.servers_per_datacenter
                ),
                slot_duration=inputs.slot_duration,
                apply_pue=inputs.apply_pue,
                deadline_scale=inputs.deadline_scale,
                delay_factor=inputs.delay_factor,
            )
        mip, decoder = self._build_milp(inputs)
        state = self._milp_state if self.warm_start else None
        solution = solve_milp(mip, method=self.milp_method, state=state)
        if not solution.ok:
            raise SolverError(
                f"slot MILP failed: {solution.status.value} {solution.message}"
            )
        if self.warm_start:
            self._milp_state = solution.state
        plan = decoder(solution.x)
        if self.formulation == "per_server":
            plan = DispatchPlan(
                topology=self.topology,
                rates=plan.rates,
                shares=plan.shares,
            )
        return plan, {
            "num_variables": mip.lp.num_variables,
            "num_constraints": mip.lp.num_constraints,
            "iterations": solution.iterations,
            "nodes": solution.nodes,
            "objective": -solution.objective,
            "warm_started": state is not None,
        }

    def _solve_greedy(self, inputs: SlotInputs) -> Tuple[DispatchPlan, Dict]:
        topo = self.topology
        K, L = topo.num_classes, topo.num_datacenters
        sizes = []
        for k in range(K):
            q = topo.request_classes[k].tuf.num_levels
            sizes.extend([q] * L)

        best_plan: Dict[Tuple[int, ...], DispatchPlan] = {}

        def evaluate(levels_flat: Tuple[int, ...]) -> float:
            levels = np.asarray(levels_flat, dtype=int).reshape(K, L)
            lp, decoder = self._build_lp(inputs, levels=levels)
            state = None
            if self.warm_start:
                # Prefer the state from the last solve of this exact
                # level vector (a later sweep, or the previous slot's
                # nearby data); fall back to the most recent solve of
                # any vector — same structure, so still a usable seed.
                state = (self._greedy_lp_states.get(levels_flat)
                         or self._greedy_last_state)
            solution = solve_lp(lp, method=self.lp_method, state=state)
            if not solution.ok:
                return -np.inf
            if self.warm_start and solution.state is not None:
                self._greedy_lp_states[levels_flat] = solution.state
                self._greedy_last_state = solution.state
            best_plan[levels_flat] = decoder(solution.x)
            return -solution.objective

        initial = self._greedy_levels if self.warm_start else None
        if initial is not None and len(initial) != len(sizes):
            initial = None
        vector, value, evaluations = coordinate_descent_levels(
            sizes, evaluate, initial=initial
        )
        if vector not in best_plan and initial is not None:
            # The seeded neighborhood was entirely infeasible under the
            # new slot data; restart cold so warm-starting can never fail
            # a slot the cold search would solve.
            vector, value, extra = coordinate_descent_levels(sizes, evaluate)
            evaluations += extra
        if vector not in best_plan:
            raise SolverError("greedy level search found no feasible assignment")
        if self.warm_start:
            self._greedy_levels = vector
        return best_plan[vector], {
            "lp_evaluations": evaluations,
            "objective": value,
            "warm_started": initial is not None,
        }
