"""Shadow-price (dual) analysis of the slot problem.

The slot LP's dual values answer the provider's planning questions
directly in dollars per slot:

* **server value** — how much net profit would one more server at data
  center ``l`` add?  (Combines the CPU-share budget dual with the
  delay-constraint duals, both of which scale with ``M_l``.)
* **demand value** — how much is one more offered request per time unit
  of class ``k`` at front-end ``s`` worth?  (The arrival-cap dual; zero
  when the class is not worth serving or the cap is slack.)
* **share value** — the marginal worth of raw CPU-share mass at ``l``.

Only meaningful on the LP path (one-level TUFs or a fixed level
assignment); duals come from the HiGHS backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.formulation import SlotInputs, fixed_level_lp
from repro.solvers.base import SolverError
from repro.solvers.linprog import solve_lp

__all__ = ["SlotSensitivity", "slot_sensitivity"]


@dataclass(frozen=True)
class SlotSensitivity:
    """Dollar-per-slot shadow prices of the slot LP's resources."""

    net_profit: float
    #: (L,) marginal profit of one extra unit of CPU-share mass at l.
    share_mass_value: np.ndarray = field(repr=False)
    #: (L,) marginal profit of one extra physical server at l.
    server_value: np.ndarray = field(repr=False)
    #: (K, S) marginal profit of one extra offered request per time unit.
    demand_value: np.ndarray = field(repr=False)
    #: (K, L) duals of the delay constraints (0 when slack).
    delay_duals: np.ndarray = field(repr=False)

    def most_valuable_expansion(self) -> int:
        """Data-center index where an extra server pays the most."""
        return int(np.argmax(self.server_value))


def slot_sensitivity(
    inputs: SlotInputs, levels: Optional[np.ndarray] = None
) -> SlotSensitivity:
    """Solve the (aggregated) slot LP and extract shadow prices.

    Parameters
    ----------
    inputs:
        Slot data (topology, arrivals, prices).
    levels:
        Fixed TUF-level assignment; ``None`` targets top levels (the
        only option for one-level TUFs).
    """
    topo = inputs.topology
    K, S, L = topo.num_classes, topo.num_frontends, topo.num_datacenters
    lp, _ = fixed_level_lp(inputs, levels=levels, per_server=False)
    solution = solve_lp(lp, method="highs")
    if not solution.ok:
        raise SolverError(
            f"sensitivity LP failed: {solution.status.value} {solution.message}"
        )
    marginals = solution.ineq_marginals
    if marginals is None:
        raise SolverError("LP backend returned no dual values")

    # Row layout of the aggregated LP (see formulation._fixed_level_lp_
    # aggregated): K*L delay rows, then L share rows, then K*S arrival
    # rows.  Marginals are d(min obj)/d(rhs); profit = -obj.
    delay_duals = -marginals[: K * L].reshape(K, L)
    share_duals = -marginals[K * L: K * L + L]
    arrival_duals = -marginals[K * L + L:].reshape(K, S)

    # One extra server at l raises the share budget by 1 *and* relaxes
    # every delay row's rhs by -1/D_{k,l} (rhs = -M_l / D): the total
    # derivative combines both.  _level_tables applied the deadline
    # scaling already; recompute the effective deadlines the LP used.
    from repro.core.formulation import _level_tables
    if levels is None:
        levels = np.zeros((K, L), dtype=int)
    _, deadlines = _level_tables(topo, np.asarray(levels, dtype=int),
                                 inputs.deadline_scale)
    # d(profit)/d(M_l) = share_dual_l + sum_k delay_dual_{k,l} *
    # d(rhs_delay)/d(M_l), with rhs_delay = -M_l/D and the profit-space
    # dual of the delay row being delay_duals (already negated).
    server_value = share_duals.copy()
    for l in range(L):
        for k in range(K):
            server_value[l] += delay_duals[k, l] * (-1.0 / deadlines[k, l])

    return SlotSensitivity(
        net_profit=-solution.objective,
        share_mass_value=share_duals,
        server_value=np.clip(server_value, 0.0, None),
        demand_value=np.clip(arrival_duals, 0.0, None),
        delay_duals=delay_duals,
    )
