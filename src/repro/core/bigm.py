"""The paper's big-M transformation of step-downward TUFs (Eqs. 11-26).

A step-downward TUF is an ``if/else`` over the delay, which the paper
notes is "unfortunately not well supported by some popular nonlinear
mathematic programming solvers".  Its key analytical contribution is an
equivalent *constraint series*: with ``U`` restricted to the discrete
level set ``{U_1 > U_2 > ... > U_n}``, the constraints

    (R - D_1)          + BIG*(U - U_1)                  <= 0
    (D_q + delta - R)  + BIG*(U_{q+1} - U)(U - U_{q+2}) <= 0   (q = 1..n-2)
    (R - D_q)          + BIG*(U_q - U)(U - U_{q-1})     <= 0   (q = 2..n-1)
    (D_{n-1} + delta - R) + BIG*(U_n - U)               <= 0

hold *iff* ``U`` equals the TUF level achieved at delay ``R`` (for
``R <= D_n``).  The discrete restriction itself is encoded with one
integer ``x in [1, n]`` through the Lagrange interpolation of Eq. 26.

This module implements the series generically for any number of levels,
the Eq. 26 interpolation, and a slot solver that optimizes the paper's
literal nonlinear program with :class:`repro.solvers.penalty.PenaltySolver`
and then repairs the fractional level choices through the fixed-level LP
(the "bigm" path of :class:`repro.core.optimizer.ProfitAwareOptimizer`).
The exact MILP path is the reference it is compared against in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.core.formulation import SlotInputs, fixed_level_lp
from repro.core.plan import DispatchPlan
from repro.core.tuf import StepDownwardTUF
from repro.solvers.base import SolverError
from repro.solvers.linprog import solve_lp
from repro.solvers.penalty import NonlinearProgram, PenaltySolver
from repro.solvers.tolerances import STRICT_TOL, ZERO_TOL

__all__ = [
    "DEFAULT_BIG",
    "DEFAULT_DELTA",
    "bigm_constraint_series",
    "check_series_selects_level",
    "lagrange_utility",
    "solve_slot_bigm",
]

Constraint = Callable[[float, float], float]

#: Historical shared big-M constant of the "bigm" solve path.  Large
#: enough for every experiment in the paper, but ``repro audit`` (rule
#: MD010) measures it as orders of magnitude looser than the data-driven
#: per-class minimum, so :func:`solve_slot_bigm` now defaults to
#: ``big=None`` — the tightened per-class values from
#: :func:`repro.analysis.model.bigm.recommended_big`.  Pass
#: ``big=DEFAULT_BIG`` explicitly to reproduce the historical series.
DEFAULT_BIG = 1e4

#: The paper's "small enough" time increment (delta in Eqs. 12/17).
DEFAULT_DELTA = 1e-9


def bigm_constraint_series(
    values: Sequence[float],
    deadlines: Sequence[float],
    big: float = 1e6,
    delta: float = DEFAULT_DELTA,
) -> List[Constraint]:
    """Build the Eq. 11-13 / 17 constraint callables for one TUF.

    Each returned callable maps ``(R, U)`` to a residual that must be
    ``<= 0``.  ``big`` is the paper's large constant (Delta) and
    ``delta`` its "small enough" time increment.
    """
    values_arr = np.asarray(values, dtype=float)
    deadlines_arr = np.asarray(deadlines, dtype=float)
    n = values_arr.size
    if n < 1 or deadlines_arr.size != n:
        raise ValueError("values and deadlines must be equal-length, non-empty")
    if n == 1:
        # One level: the plain deadline constraint, no selection needed.
        return [lambda r, u, d=float(deadlines_arr[0]): r - d]

    cons: List[Constraint] = []
    u_vals = values_arr
    d_vals = deadlines_arr

    # (R - D_1) + BIG*(U - U_1) <= 0  — forces U < U_1 once R > D_1.
    cons.append(lambda r, u: (r - d_vals[0]) + big * (u - u_vals[0]))

    # Interior pairs for each boundary q (1-based boundaries 1..n-1).
    for q in range(1, n - 1):  # 0-based: boundary between level q and q+1
        # (D_q + delta - R) + BIG*(U_{q+1} - U)(U - U_{q+2}) <= 0
        cons.append(
            lambda r, u, dq=float(d_vals[q - 1]), uq1=float(u_vals[q]),
            uq2=float(u_vals[q + 1]): (dq + delta - r) + big * (uq1 - u) * (u - uq2)
        )
        # (R - D_{q+1}) + BIG*(U_{q+1} - U)(U - U_q) <= 0
        cons.append(
            lambda r, u, dq1=float(d_vals[q]), uq1=float(u_vals[q]),
            uq0=float(u_vals[q - 1]): (r - dq1) + big * (uq1 - u) * (u - uq0)
        )

    # (D_{n-1} + delta - R) + BIG*(U_n - U) <= 0 — forces U > U_n while
    # R is within the (n-1)-th sub-deadline.
    cons.append(
        lambda r, u: (d_vals[n - 2] + delta - r) + big * (u_vals[n - 1] - u)
    )
    return cons


def check_series_selects_level(
    tuf: StepDownwardTUF,
    delay: float,
    big: float = 1e6,
    delta: float = 1e-9,
) -> Tuple[int, List[int]]:
    """Verify the paper's equivalence claim at one delay.

    Evaluates the constraint series at every discrete utility level and
    returns ``(tuf_level, feasible_levels)``: the level the TUF itself
    assigns at ``delay`` and the levels that satisfy every constraint.
    The paper's claim is that exactly the TUF level is feasible (for
    delays within the final deadline).
    """
    series = bigm_constraint_series(tuf.values, tuf.deadlines, big=big, delta=delta)
    # Satisfied constraints evaluate to <= delta; violations are at least
    # the width of a time band or big*(level gap)^2 — far above this.
    tol = 10.0 * delta + ZERO_TOL
    feasible = []
    for q, u in enumerate(tuf.values):
        if all(con(delay, float(u)) <= tol for con in series):
            feasible.append(q)
    return tuf.level_for_delay(delay), feasible


def lagrange_utility(x: float, values: Sequence[float]) -> float:
    """Paper Eq. 26: utility as a polynomial in the level selector ``x``.

    For integer ``x in {1..n}`` this evaluates exactly to ``values[x-1]``
    (the Lagrange interpolation through the points ``(i, U_i)``); the
    relaxed NLP path evaluates it at fractional ``x`` too.
    """
    values_arr = np.asarray(values, dtype=float)
    n = values_arr.size
    if n == 1:
        return float(values_arr[0])
    total = 0.0
    for i in range(1, n + 1):
        # prod_{j=0, j!=i}^{n} (j - x) / normalization: Eq. 26's closed form
        # with denominator (-1)^x x!(n-x)! generalized via gamma would lose
        # exactness off-integers; build the classic Lagrange basis instead,
        # which coincides with Eq. 26 at integer x.
        numerator = 1.0
        denominator = 1.0
        for j in range(1, n + 1):
            if j == i:
                continue
            numerator *= (x - j)
            denominator *= (i - j)
        total += values_arr[i - 1] * numerator / denominator
    return float(total)


# ---------------------------------------------------------------------------
# Slot solver on the literal nonlinear program
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _Layout:
    """Variable layout of the big-M NLP (aggregated formulation)."""

    K: int
    S: int
    L: int

    @property
    def n_lam(self) -> int:
        return self.K * self.S * self.L

    @property
    def n_phi(self) -> int:
        return self.K * self.L

    @property
    def n_u(self) -> int:
        return self.K * self.L

    @property
    def n_vars(self) -> int:
        return self.n_lam + self.n_phi + self.n_u

    def lam(self, x: np.ndarray) -> np.ndarray:
        return x[: self.n_lam].reshape(self.K, self.S, self.L)

    def phi(self, x: np.ndarray) -> np.ndarray:
        return x[self.n_lam: self.n_lam + self.n_phi].reshape(self.K, self.L)

    def u(self, x: np.ndarray) -> np.ndarray:
        return x[self.n_lam + self.n_phi:].reshape(self.K, self.L)


def solve_slot_bigm(
    inputs: SlotInputs,
    big: "float | None" = None,
    delta: float = DEFAULT_DELTA,
    lp_method: str = "highs",
    seed: int = 0,
) -> DispatchPlan:
    """Solve one slot through the paper's literal big-M nonlinear program.

    Pipeline: (1) optimize the nonlinear program over
    ``(lambda, Phi, U)`` with the big-M constraint series and the
    smooth delay expression ``R = M_l / (Phi C mu - Lambda)``;
    (2) snap each ``U_{k,l}`` to the nearest discrete level;
    (3) refine the snapped level vector by a short coordinate-descent
    pass with the fixed-level LP as oracle (the non-convex NLP can land
    in poor basins, especially with three or more levels);
    (4) re-solve the fixed-level LP at the refined levels for a clean,
    feasible plan.

    ``big=None`` (the default) adopts the data-driven tightened constant
    per request class
    (:func:`repro.analysis.model.bigm.recommended_big`) — the audit rule
    MD010 measured the old shared :data:`DEFAULT_BIG` as up to ~1e8x
    looser than necessary, which inflates the penalty surface the NLP
    descends.  Pass ``big=<float>`` (e.g. :data:`DEFAULT_BIG`) to pin
    one shared constant for every class, reproducing the historical
    behavior; both choices select the same levels on the paper's
    configurations (pinned in ``tests/test_bigm.py``), the tightened
    constants just condition the NLP better.
    """
    topo = inputs.topology
    K, S, L = topo.num_classes, topo.num_frontends, topo.num_datacenters
    layout = _Layout(K, S, L)
    M = topo.servers_per_datacenter.astype(float)
    mu = topo.service_rates
    cap = topo.server_capacities
    cost = inputs.cost_per_request()
    T = inputs.slot_duration

    if big is None:
        from repro.analysis.model.bigm import recommended_big

        bigs = []
        for rc in topo.request_classes:
            tightened = recommended_big(rc.tuf.values, rc.tuf.deadlines, delta)
            # One-level TUFs report 0 (their series never uses BIG).
            bigs.append(tightened if tightened > 0.0 else 1.0)
    else:
        bigs = [float(big)] * K
    series = [
        bigm_constraint_series(
            rc.tuf.values, rc.tuf.deadlines, big=bigs[k], delta=delta
        )
        for k, rc in enumerate(topo.request_classes)
    ]
    u_min = np.array([rc.tuf.values.min() for rc in topo.request_classes])
    u_max = np.array([rc.tuf.values.max() for rc in topo.request_classes])
    final_deadlines = np.array([rc.deadline for rc in topo.request_classes])

    def delays(x: np.ndarray) -> np.ndarray:
        lam = layout.lam(x).sum(axis=1)  # (K, L)
        phi = layout.phi(x)
        headroom = phi * cap[None, :] * mu - lam  # (K, L)
        return np.where(
            headroom > STRICT_TOL,
            M[None, :] / np.maximum(headroom, STRICT_TOL),
            1e6,
        )

    def objective(x: np.ndarray) -> float:
        lam = layout.lam(x)
        u = layout.u(x)
        revenue = float(np.sum(u * lam.sum(axis=1)))
        costs = float(np.sum(cost * lam))
        return -T * (revenue - costs)

    def ineq(x: np.ndarray) -> np.ndarray:
        lam = layout.lam(x)
        phi = layout.phi(x)
        u = layout.u(x)
        r = delays(x)
        out: List[float] = []
        # Stability / final deadline: R <= D_k (keeps headroom positive).
        out.extend((r - final_deadlines[:, None]).ravel())
        # Share budget per DC.
        out.extend(phi.sum(axis=0) - M)
        # Arrival caps.
        out.extend((lam.sum(axis=2) - inputs.arrivals).ravel())
        # Big-M series per (k, l).
        for k in range(K):
            for l in range(L):
                for con in series[k]:
                    out.append(con(float(r[k, l]), float(u[k, l])))
        return np.asarray(out)

    lower = np.zeros(layout.n_vars)
    upper = np.full(layout.n_vars, np.inf)
    for k in range(K):
        for l in range(L):
            upper[layout.n_lam + k * L + l] = M[l]
    lower[layout.n_lam + layout.n_phi:] = np.repeat(u_min, L)
    upper[layout.n_lam + layout.n_phi:] = np.repeat(u_max, L)

    nlp = NonlinearProgram(objective=objective, lower=lower, upper=upper, ineq=ineq)

    # Warm start: feasible zero-load point with minimum shares and top
    # utilities (consistent when R is at its minimum-share value).
    x0 = np.zeros(layout.n_vars)
    for k in range(K):
        for l in range(L):
            x0[layout.n_lam + k * L + l] = min(
                M[l], M[l] / (final_deadlines[k] * cap[l] * mu[k, l]) * 1.5
            )
    x0[layout.n_lam + layout.n_phi:] = np.repeat(u_min, L)

    solution = PenaltySolver(seed=seed, feasibility_tol=1e-4).solve(nlp, x0=x0)
    if solution.ok:
        u_star = layout.u(solution.x)
        levels = np.zeros((K, L), dtype=int)
        for k, rc in enumerate(topo.request_classes):
            values = rc.tuf.values
            for l in range(L):
                levels[k, l] = int(np.argmin(np.abs(values - u_star[k, l])))
    else:
        # NLP found nothing usable: fall back to the top level everywhere.
        levels = np.zeros((K, L), dtype=int)

    # Local refinement of the snapped levels (one short sweep).
    from repro.solvers.levels import coordinate_descent_levels

    sizes = []
    for k in range(K):
        sizes.extend([topo.request_classes[k].tuf.num_levels] * L)

    def lp_objective(levels_flat: Sequence[int]) -> float:
        lp_trial, _ = fixed_level_lp(
            inputs, levels=np.asarray(levels_flat, dtype=int).reshape(K, L)
        )
        trial = solve_lp(lp_trial, method=lp_method)
        return -trial.objective if trial.ok else -np.inf

    refined, _, _ = coordinate_descent_levels(
        sizes, lp_objective, initial=levels.ravel().tolist(), max_sweeps=2
    )
    levels = np.asarray(refined, dtype=int).reshape(K, L)

    lp, decoder = fixed_level_lp(inputs, levels=levels)
    lp_solution = solve_lp(lp, method=lp_method)
    if not lp_solution.ok:
        raise SolverError(
            f"big-M repair LP failed: {lp_solution.status.value} "
            f"{lp_solution.message}"
        )
    return decoder(lp_solution.x)
