"""Net-profit evaluation of a dispatch plan (the paper's Eq. 4/5).

``evaluate_plan`` is the *ground truth* used by every experiment: given
a plan, the slot's arrivals, and the slot's electricity prices, it
computes realized utilities from realized M/M/1 delays (not from the
optimizer's targeted TUF levels) and subtracts the realized energy and
transfer dollar costs.  Both the optimizer and the baselines are scored
by this same function.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cloud.energy import EnergyModel
from repro.core.plan import DispatchPlan
from repro.solvers.tolerances import FEASIBILITY_TOL
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["NetProfitBreakdown", "evaluate_plan"]


@dataclass(frozen=True)
class NetProfitBreakdown:
    """Itemized slot outcome.

    All dollar figures are totals over the slot.  Rates are per time
    unit; multiply by ``slot_duration`` for counts.
    """

    revenue: float
    energy_cost: float
    transfer_cost: float
    served_rates: np.ndarray = field(repr=False)
    offered_rates: np.ndarray = field(repr=False)
    dc_loads: np.ndarray = field(repr=False)
    energy_kwh: float = 0.0
    slot_duration: float = 1.0
    #: Idle-power dollars (0 under the paper's per-request-only model).
    idle_cost: float = 0.0

    @property
    def total_cost(self) -> float:
        """Processing + transfer + idle dollars."""
        return self.energy_cost + self.transfer_cost + self.idle_cost

    @property
    def net_profit(self) -> float:
        """Revenue minus total cost (the paper's objective)."""
        return self.revenue - self.total_cost

    @property
    def dropped_rates(self) -> np.ndarray:
        """``(K,)`` offered-but-not-dispatched rates; float64."""
        return np.clip(self.offered_rates - self.served_rates, 0.0, None)

    @property
    def completion_fractions(self) -> np.ndarray:
        """``(K,)`` fraction of offered requests dispatched (1.0 if none offered); float64."""
        offered = self.offered_rates
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(offered > 0, self.served_rates / offered, 1.0)
        return np.clip(frac, 0.0, 1.0)

    @property
    def served_requests(self) -> float:
        """Total requests processed during the slot."""
        return float(self.served_rates.sum() * self.slot_duration)


def evaluate_plan(
    plan: DispatchPlan,
    arrivals: np.ndarray,
    prices: np.ndarray,
    slot_duration: float = 1.0,
    apply_pue: bool = False,
) -> NetProfitBreakdown:
    """Score ``plan`` for one slot.

    Parameters
    ----------
    plan:
        The dispatch/allocation decision.
    arrivals:
        ``(K, S)`` offered arrival rates; dispatching more than offered
        is rejected with ``ValueError``.
    prices:
        ``(L,)`` electricity prices in $/kWh for the slot.
    slot_duration:
        Slot length ``T`` in the rate time unit.
    apply_pue:
        Multiply processing energy by each data center's PUE.
    """
    topo = plan.topology
    arrivals = check_nonnegative(arrivals, "arrivals")
    prices = check_nonnegative(prices, "prices")
    check_positive(slot_duration, "slot_duration")
    if arrivals.shape != (topo.num_classes, topo.num_frontends):
        raise ValueError(
            f"arrivals must have shape {(topo.num_classes, topo.num_frontends)}, "
            f"got {arrivals.shape}"
        )
    if prices.shape != (topo.num_datacenters,):
        raise ValueError(
            f"prices must have shape {(topo.num_datacenters,)}, got {prices.shape}"
        )
    dispatched_per_source = plan.rates.sum(axis=2)  # (K, S)
    excess = dispatched_per_source - arrivals
    if np.any(excess > FEASIBILITY_TOL * np.maximum(1.0, arrivals)):
        raise ValueError("plan dispatches more than the offered arrivals")

    # Revenue from realized delays: utility is per request, earned at the
    # expected delay of the (class, server) queue actually serving it.
    delays = plan.delays()  # (K, N), nan where no load
    loads = plan.server_loads()  # (K, N)
    revenue = 0.0
    for k, rc in enumerate(topo.request_classes):
        row_delays = delays[k]
        row_loads = loads[k]
        loaded = row_loads > 0
        if not np.any(loaded):
            continue
        # inf delay (overload) earns zero utility via the TUF deadline cut.
        util = rc.tuf.utility(np.nan_to_num(row_delays[loaded], nan=0.0,
                                            posinf=np.inf))
        util = np.where(np.isfinite(row_delays[loaded]), util, 0.0)
        revenue += float(np.sum(util * row_loads[loaded]) * slot_duration)

    energy_model = EnergyModel(topo.datacenters, apply_pue=apply_pue)
    dc_loads = plan.dc_loads()  # (K, L)
    energy_cost = energy_model.slot_cost(dc_loads, prices, slot_duration)
    energy_kwh = energy_model.slot_energy_kwh(dc_loads, slot_duration)
    transfer_cost = topo.transfer_model().slot_cost(plan.dc_rates(), slot_duration)

    # Idle power of powered-on servers (an extension; 0 kW by default
    # reproduces the paper's per-request-only accounting).  Idle energy
    # respects PUE like any other draw when apply_pue is set.
    idle_cost = 0.0
    idle_kwh = 0.0
    powered = plan.powered_on_per_dc()
    for l, dc in enumerate(topo.datacenters):
        if dc.idle_power_kw <= 0.0 or powered[l] == 0:
            continue
        pue = dc.pue if apply_pue else 1.0
        kwh = dc.idle_power_kw * pue * powered[l] * slot_duration
        idle_kwh += kwh
        idle_cost += kwh * float(prices[l])

    return NetProfitBreakdown(
        revenue=revenue,
        energy_cost=energy_cost,
        transfer_cost=transfer_cost,
        served_rates=plan.served_rates(),
        offered_rates=arrivals.sum(axis=1),
        dc_loads=dc_loads,
        energy_kwh=energy_kwh + idle_kwh,
        slot_duration=slot_duration,
        idle_cost=idle_cost,
    )
