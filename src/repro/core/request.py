"""The unified task model.

The paper abstracts requests from every cloud layer (SaaS/PaaS/IaaS)
into *request classes* (type ``k``): all requests of the same class share
one TUF, one transfer unit cost, and per-data-center service rates and
energy attributions (stored on :class:`repro.cloud.datacenter.DataCenter`
because the paper's Tables III/IV/VI make them location-dependent).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.tuf import StepDownwardTUF
from repro.utils.validation import check_nonnegative

__all__ = ["RequestClass"]


@dataclass(frozen=True)
class RequestClass:
    """One type of service request (index ``k``).

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"request1"``.
    tuf:
        The step-downward TUF giving per-request profit as a function of
        the expected delay.  Multi-level TUFs make the slot problem a
        MILP; one-level TUFs keep it an LP (paper §IV).
    transfer_unit_cost:
        ``TranCost_k`` in $/(mile · request) (paper Eq. 3); reflects the
        request's size/characteristics.
    """

    name: str
    tuf: StepDownwardTUF
    transfer_unit_cost: float = 0.0
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("name must be non-empty")
        if not isinstance(self.tuf, StepDownwardTUF):
            raise TypeError(
                "tuf must be a StepDownwardTUF (use MonotonicTUF.discretize() "
                "for continuous utility functions)"
            )
        check_nonnegative(self.transfer_unit_cost, "transfer_unit_cost")

    @property
    def deadline(self) -> float:
        """Final deadline ``D_k`` of the request class."""
        return self.tuf.deadline

    @property
    def num_levels(self) -> int:
        """Number of TUF steps (1 for constant-value TUFs)."""
        return self.tuf.num_levels
