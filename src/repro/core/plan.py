"""Dispatch and resource-allocation decisions for one time slot.

A :class:`DispatchPlan` is the output of both the optimizer and the
baselines: per-server dispatched rates ``lambda_{k,s,i,l}`` and CPU
shares ``phi_{k,i,l}``.  Servers are flattened to a global index ``n``
(use :meth:`repro.cloud.topology.CloudTopology.flat_server_index`);
since servers within a data center are homogeneous, aggregated solvers
expand their symmetric solutions over this flat axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cloud.topology import CloudTopology
from repro.queueing.mm1 import mm1_mean_delay
from repro.solvers.tolerances import FEASIBILITY_TOL, ZERO_TOL
from repro.utils.validation import check_nonnegative

__all__ = ["DispatchPlan"]

_LOAD_TOL = ZERO_TOL


@dataclass(frozen=True)
class DispatchPlan:
    """Per-slot dispatching + allocation decision.

    Attributes
    ----------
    topology:
        The static system the plan is for.
    rates:
        ``(K, S, N)`` array; ``rates[k, s, n]`` is the rate of class-``k``
        requests sent from front-end ``s`` to (flat) server ``n``.
    shares:
        ``(K, N)`` array of CPU shares ``phi``; each server's column must
        sum to at most 1.
    """

    topology: CloudTopology
    rates: np.ndarray = field(repr=False)
    shares: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        topo = self.topology
        k, s, n = topo.num_classes, topo.num_frontends, topo.num_servers
        rates = check_nonnegative(self.rates, "rates")
        shares = check_nonnegative(self.shares, "shares")
        if rates.shape != (k, s, n):
            raise ValueError(f"rates must have shape {(k, s, n)}, got {rates.shape}")
        if shares.shape != (k, n):
            raise ValueError(f"shares must have shape {(k, n)}, got {shares.shape}")
        if np.any(shares.sum(axis=0) > 1.0 + FEASIBILITY_TOL):
            worst = float(shares.sum(axis=0).max())
            raise ValueError(f"CPU shares exceed 1 on some server (max {worst:.6f})")
        object.__setattr__(self, "rates", rates)
        object.__setattr__(self, "shares", shares)

    # ------------------------------------------------------------ geometry

    def _dc_of_server(self) -> np.ndarray:
        """``(N,)`` data-center index of each flat server."""
        topo = self.topology
        out = np.empty(topo.num_servers, dtype=int)
        for l, dc in enumerate(topo.datacenters):
            offset = topo.server_offsets()[l]
            out[offset:offset + dc.num_servers] = l
        return out

    def server_service_rates(self) -> np.ndarray:
        """``(K, N)`` full-capacity service rates ``C_l * mu_{k,l}``; float64."""
        topo = self.topology
        dc_idx = self._dc_of_server()
        mu = topo.service_rates  # (K, L)
        capacity = topo.server_capacities  # (L,)
        return mu[:, dc_idx] * capacity[dc_idx][None, :]

    # ------------------------------------------------------------- loads

    def server_loads(self) -> np.ndarray:
        """``(K, N)`` aggregate load per class per server (summed over s); float64."""
        return self.rates.sum(axis=1)

    def dc_rates(self) -> np.ndarray:
        """``(K, S, L)`` rates aggregated to data-center granularity; float64."""
        topo = self.topology
        out = np.zeros((topo.num_classes, topo.num_frontends, topo.num_datacenters))
        offsets = topo.server_offsets()
        for l in range(topo.num_datacenters):
            out[:, :, l] = self.rates[:, :, offsets[l]:offsets[l + 1]].sum(axis=2)
        return out

    def dc_loads(self) -> np.ndarray:
        """``(K, L)`` aggregate load per class per data center; float64."""
        return self.dc_rates().sum(axis=1)

    def served_rates(self) -> np.ndarray:
        """``(K,)`` total dispatched rate per class; float64."""
        return self.rates.sum(axis=(1, 2))

    # ------------------------------------------------------------- delays

    def delays(self) -> np.ndarray:
        """``(K, N)`` expected M/M/1 delays (Eq. 1); ``inf`` if unstable.

        Entries for (class, server) pairs with zero load are ``nan`` —
        no request experiences them.  dtype float64.
        """
        loads = self.server_loads()
        effective = self.shares * self.server_service_rates()
        delays = mm1_mean_delay(effective, loads)
        return np.where(loads > _LOAD_TOL, delays, np.nan)

    # ----------------------------------------------------------- servers

    def active_server_mask(self) -> np.ndarray:
        """``(N,)`` True where the server carries any load; dtype bool."""
        return self.server_loads().sum(axis=0) > _LOAD_TOL

    def powered_on_per_dc(self) -> np.ndarray:
        """``(L,)`` number of powered-on servers per data center; dtype int."""
        topo = self.topology
        mask = self.active_server_mask()
        offsets = topo.server_offsets()
        return np.array([
            int(mask[offsets[l]:offsets[l + 1]].sum())
            for l in range(topo.num_datacenters)
        ])

    # ------------------------------------------------------------ algebra

    def with_spare_capacity_distributed(self) -> "DispatchPlan":
        """Hand each server's unused CPU to its loaded VMs.

        The slot LP has no incentive to allocate more than the minimum
        feasible shares, leaving optima sitting exactly on the delay
        constraints — where finite-horizon stochastic delays straddle
        the TUF cliff.  Unused CPU is free under the paper's per-request
        energy model, so scaling the loaded classes' shares to fill each
        active server strictly improves every delay without changing any
        cost.  Shares of unloaded classes are released to zero.
        """
        loads = self.server_loads()
        shares = np.where(loads > _LOAD_TOL, self.shares, 0.0)
        totals = shares.sum(axis=0)
        scale = np.where(totals > _LOAD_TOL, 1.0 / np.maximum(totals, _LOAD_TOL), 1.0)
        return DispatchPlan(
            topology=self.topology,
            rates=self.rates,
            shares=shares * scale[None, :],
        )

    def meets_deadlines(self, tol: float = FEASIBILITY_TOL) -> bool:
        """True if every loaded (class, server) delay is within ``D_k``."""
        delays = self.delays()
        for k, rc in enumerate(self.topology.request_classes):
            row = delays[k]
            loaded = ~np.isnan(row)
            if np.any(row[loaded] > rc.deadline + tol):
                return False
        return True

    @staticmethod
    def empty(topology: CloudTopology) -> "DispatchPlan":
        """The all-zero plan (everything dropped, all servers off)."""
        return DispatchPlan(
            topology=topology,
            rates=np.zeros(
                (topology.num_classes, topology.num_frontends, topology.num_servers)
            ),
            shares=np.zeros((topology.num_classes, topology.num_servers)),
        )
