"""The time-slotted control loop (paper §III).

The approach "periodically runs at the beginning of each time slot T
based on the average arrival rates during a slot".
:class:`SlottedController` wires a dispatcher (optimizer or baseline),
the workload trace, and the electricity market into that loop, scoring
every slot with :func:`~repro.core.objective.evaluate_plan`.  An
optional predictor forecasts arrivals instead of using the oracle rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Iterator,
    List,
    Optional,
    Protocol,
    runtime_checkable,
)

import numpy as np

from repro.core.objective import NetProfitBreakdown, evaluate_plan
from repro.core.plan import DispatchPlan
from repro.market.market import MultiElectricityMarket
from repro.obs.collectors import NULL_COLLECTOR, Collector
from repro.workload.traces import WorkloadTrace

__all__ = ["Dispatcher", "SlotRecord", "SlottedController"]


@runtime_checkable
class Dispatcher(Protocol):
    """The public planning interface every control loop drives.

    A dispatcher turns one slot's inputs into a
    :class:`~repro.core.plan.DispatchPlan`:

    * ``arrivals`` — ``(K, S)`` class × front-end arrival rates to plan
      for (slot averages in the slotted loop, admitted estimates in the
      streaming loop);
    * ``prices`` — ``(L,)`` per-data-center electricity prices;
    * ``slot_duration`` — planning-horizon length in the trace's time
      unit.

    ``name`` labels results in comparisons and telemetry.  Shipped
    implementations: :class:`~repro.core.optimizer.ProfitAwareOptimizer`
    ("optimized"), :class:`~repro.core.baselines.BalancedDispatcher`
    ("balanced") and :class:`~repro.core.baselines.EvenSplitDispatcher`
    ("even_split").  Both :class:`SlottedController` and the streaming
    :class:`~repro.stream.controller.StreamingController` accept any
    conforming object — the protocol is ``runtime_checkable``, so
    ``isinstance(obj, Dispatcher)`` verifies conformance (see
    ``tests/test_dispatcher_protocol.py``).

    Optional hooks controllers use when present (not part of the
    protocol): ``reset_warm_state()`` clears cross-slot solver state at
    the start of a run; ``last_stats`` exposes per-solve diagnostics;
    ``collector`` receives telemetry; ``topology`` describes the
    static system (the streaming loop derives admission capacity from
    it).
    """

    name: str

    def plan_slot(
        self, arrivals: np.ndarray, prices: np.ndarray, slot_duration: float = 1.0
    ) -> DispatchPlan:
        ...


@dataclass(frozen=True)
class SlotRecord:
    """One slot's decision and outcome."""

    slot: int
    plan: DispatchPlan = field(repr=False)
    outcome: NetProfitBreakdown
    prices: np.ndarray = field(repr=False)
    arrivals: np.ndarray = field(repr=False)


class SlottedController:
    """Run a dispatcher over a workload trace and electricity market.

    Parameters
    ----------
    dispatcher:
        The per-slot decision maker.
    trace:
        Workload; its ``(K, S)`` shape must match the dispatcher's
        topology.
    market:
        Electricity prices, one trace per data center.
    predictor_factory:
        Optional callable returning a fresh one-stream predictor (e.g.
        ``lambda: KalmanFilterPredictor()``); when given, the controller
        plans each slot on *predicted* arrivals (one predictor per
        ``(k, s)`` stream) while outcomes are still evaluated on the
        true rates.
    collector:
        Optional telemetry sink (see :mod:`repro.obs`); receives the
        loop-level slot counter and planning/evaluation timings.  This
        is the *controller's* collector — the dispatcher keeps its own
        (usually the same instance, wired by ``run_simulation``).
    """

    def __init__(
        self,
        dispatcher: Dispatcher,
        trace: WorkloadTrace,
        market: MultiElectricityMarket,
        predictor_factory: Optional[Callable[[], Any]] = None,
        apply_pue: bool = False,
        collector: Optional[Collector] = None,
    ) -> None:
        self.dispatcher = dispatcher
        self.trace = trace
        self.market = market
        self.apply_pue = apply_pue
        self.collector = collector if collector is not None else NULL_COLLECTOR
        self._predictor_factory = predictor_factory
        if predictor_factory is not None:
            self._predictors = [
                [predictor_factory() for _ in range(trace.num_frontends)]
                for _ in range(trace.num_classes)
            ]
        else:
            self._predictors = None

    def _planned_arrivals(self, actual: np.ndarray) -> np.ndarray:
        if self._predictors is None:
            return actual
        predicted = np.empty_like(actual)
        for k in range(actual.shape[0]):
            for s in range(actual.shape[1]):
                predictor = self._predictors[k][s]
                predicted[k, s] = predictor.predict()
                predictor.observe(float(actual[k, s]))
        return predicted

    def iter_slots(self, num_slots: Optional[int] = None) -> Iterator[SlotRecord]:
        """Yield one :class:`SlotRecord` per slot."""
        total = num_slots if num_slots is not None else self.trace.num_slots
        collector = self.collector
        for t in range(total):
            actual = self.trace.arrivals_at(t)
            prices = self.market.prices_at(t)
            planned = self._planned_arrivals(actual)
            with collector.timer("controller.plan_slot"):
                plan = self.dispatcher.plan_slot(
                    planned, prices, slot_duration=self.trace.slot_duration
                )
            # Surface degraded slots at the loop level too, so a run's
            # robustness shows up next to its timings.
            stats = getattr(self.dispatcher, "last_stats", None)
            if stats is not None and getattr(stats, "fallback_level", 0) > 0:
                collector.increment("controller.fallback_slots")
            # A predictive plan may overshoot the true arrivals; cap the
            # dispatched rates at what actually arrived before scoring.
            if self._predictors is not None:
                plan = _cap_to_arrivals(plan, actual)
            with collector.timer("controller.evaluate"):
                outcome = evaluate_plan(
                    plan, actual, prices,
                    slot_duration=self.trace.slot_duration,
                    apply_pue=self.apply_pue,
                )
            collector.increment("controller.slots")
            yield SlotRecord(
                slot=t, plan=plan, outcome=outcome, prices=prices, arrivals=actual
            )

    def run(self, num_slots: Optional[int] = None) -> List[SlotRecord]:
        """Run all slots and return the records."""
        return list(self.iter_slots(num_slots))


def _cap_to_arrivals(plan: DispatchPlan, arrivals: np.ndarray) -> DispatchPlan:
    """Scale down per-(k,s) dispatch that exceeds the true arrivals."""
    dispatched = plan.rates.sum(axis=2)  # (K, S)
    with np.errstate(divide="ignore", invalid="ignore"):
        scale = np.where(
            dispatched > arrivals, arrivals / np.maximum(dispatched, 1e-300), 1.0
        )
    scale = np.clip(scale, 0.0, 1.0)
    return DispatchPlan(
        topology=plan.topology,
        rates=plan.rates * scale[:, :, None],
        shares=plan.shares,
    )
