"""Core algorithm package: the paper's primary contribution.

Contents:

* :mod:`repro.core.tuf` — time utility functions (constant, multi-level
  step-downward, monotonic) representing SLA profit (paper §III-B1);
* :mod:`repro.core.request` — the unified task model abstracting
  SaaS/PaaS/IaaS request types;
* :mod:`repro.core.plan` — dispatch/allocation decision containers
  (``lambda_{k,s,i,l}`` and ``phi_{k,i,l}``);
* :mod:`repro.core.objective` — net-profit evaluation of a plan;
* :mod:`repro.core.formulation` — the slot optimization problem builder
  (LP for one-level TUFs, MILP for multi-level);
* :mod:`repro.core.bigm` — the paper's big-M constraint transformation
  of step-downward TUFs (Eqs. 11-13, 17, 25-26);
* :mod:`repro.core.optimizer` — ``ProfitAwareOptimizer`` ("Optimized");
* :mod:`repro.core.baselines` — ``BalancedDispatcher`` ("Balanced") and
  friends;
* :mod:`repro.core.rightsizing` — powered-on server derivation and load
  consolidation;
* :mod:`repro.core.controller` — the time-slotted control loop.
"""

from repro.core.tuf import (
    ConstantTUF,
    MonotonicTUF,
    StepDownwardTUF,
    TimeUtilityFunction,
    UtilityLevel,
)
from repro.core.request import RequestClass
from repro.core.plan import DispatchPlan
from repro.core.objective import NetProfitBreakdown, evaluate_plan
from repro.core.config import OptimizerConfig
from repro.core.optimizer import ProfitAwareOptimizer
from repro.core.baselines import BalancedDispatcher, EvenSplitDispatcher
from repro.core.controller import Dispatcher, SlotRecord, SlottedController
from repro.core.rightsizing import consolidate_plan, powered_on_servers
from repro.core.sensitivity import SlotSensitivity, slot_sensitivity

__all__ = [
    "SlotSensitivity",
    "slot_sensitivity",
    "TimeUtilityFunction",
    "UtilityLevel",
    "ConstantTUF",
    "StepDownwardTUF",
    "MonotonicTUF",
    "RequestClass",
    "DispatchPlan",
    "NetProfitBreakdown",
    "evaluate_plan",
    "OptimizerConfig",
    "ProfitAwareOptimizer",
    "BalancedDispatcher",
    "EvenSplitDispatcher",
    "Dispatcher",
    "SlotRecord",
    "SlottedController",
    "powered_on_servers",
    "consolidate_plan",
]
