"""Consolidated optimizer configuration.

:class:`OptimizerConfig` gathers every knob of
:class:`~repro.core.optimizer.ProfitAwareOptimizer` into one frozen,
validated, picklable value — the primary constructor signature is
``ProfitAwareOptimizer(topology, config=OptimizerConfig(...))``.  The
old flat keyword arguments still work through a deprecation shim on the
optimizer itself.

Keeping the configuration a value (rather than loose kwargs) means it
can be stored on experiment bundles, shipped across the process-pool
boundary of :mod:`repro.sim.parallel`, compared for equality, and
varied with :meth:`OptimizerConfig.replace`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.obs.collectors import Collector, NullCollector

__all__ = ["OptimizerConfig"]

LEVEL_METHODS = ("auto", "lp", "milp", "bigm", "greedy")
FORMULATIONS = ("aggregated", "per_server")
LP_METHODS = ("highs", "simplex", "ipm")
MILP_METHODS = ("highs", "bb")
AUDIT_MODES = ("off", "warn", "error")
CERTIFY_MODES = ("off", "warn", "error")


@dataclass(frozen=True)
class OptimizerConfig:
    """All :class:`ProfitAwareOptimizer` knobs, validated on construction.

    Parameters
    ----------
    level_method:
        ``"auto"``, ``"lp"``, ``"milp"``, ``"bigm"``, or ``"greedy"``.
    formulation:
        ``"aggregated"`` or ``"per_server"``.
    lp_method:
        LP backend: ``"highs"``, ``"simplex"``, or ``"ipm"``.
    milp_method:
        MILP backend: ``"highs"`` or ``"bb"``.
    consolidate:
        Run the right-sizing consolidation pass on every plan.
    apply_pue:
        Include PUE in the processing-energy cost.
    use_spare_capacity:
        Distribute unused CPU to loaded VMs after solving (free under
        the per-request energy model; strictly improves delays).
    deadline_margin:
        Plan against deadlines scaled by this factor in (0, 1].
    percentile_sla:
        When set to ``eps`` in (0, 1), plan for the tail SLA
        ``P(sojourn > D) <= eps`` instead of the mean-delay SLA.
    warm_start:
        Reuse formulation caches and solver state across slots.
    sparse:
        Route fixed-level slot LPs through the sparse/decomposed solve
        path (:mod:`repro.solvers.sparse`): CSR constraint matrices,
        symmetry collapse of identical servers (per-server plans are
        solved on the aggregated formulation and expanded afterwards),
        per-class block decomposition, and a dual-simplex RHS-only
        re-solve for slot-to-slot price/arrival changes.  Produces the
        same plans and objectives as the dense path (pinned at 1e-6 in
        the property suite); MILP/big-M/greedy level methods and the
        fallback chain's alternate backends keep using the dense
        solvers.
    sparse_block_workers:
        Process-pool size for solving decomposed per-class blocks
        (``None`` or ``1`` solves blocks serially in-process, which is
        fastest below roughly a thousand servers).  Only meaningful
        with ``sparse=True``.
    collector:
        Telemetry sink (see :mod:`repro.obs`); the default
        :class:`~repro.obs.collectors.NullCollector` disables all
        instrumentation at (near) zero cost.
    fallback:
        Run the fault-tolerant solve chain when the requested solver
        fails a slot (infeasible / numerical error / budget exhausted):
        the primary method is retried, then an alternate backend is
        tried, then the greedy level search, and finally the always-
        feasible :class:`~repro.core.baselines.BalancedDispatcher` plan.
        ``False`` restores the raise-on-failure behavior.
    fallback_retries:
        Extra attempts per fallback stage (>= 0).  Retries run with the
        warm-start state cleared, since a stale state is a common cause
        of a failed solve.
    solver_iteration_budget:
        Iteration cap handed to the *primary* solve (simplex pivots /
        IPM iterations / HiGHS iterations; B&B and HiGHS-MILP node
        counts).  Fallback stages run with their default budgets so the
        chain can actually rescue the slot.  ``None`` means the solver
        defaults; a tiny value is the standard way to inject solver
        failures in tests and CI.
    fallback_time_budget:
        Wall-second budget for one ``plan_slot`` call.  Once a failed
        stage leaves the call over budget, intermediate stages are
        skipped and the chain jumps straight to the baseline plan.
        ``None`` disables the time check.
    audit:
        Run the static formulation auditor
        (:func:`repro.analysis.model.audit_slot`) on every slot before
        solving.  ``"off"`` (default) skips it; ``"warn"`` records the
        findings on the emitted :class:`~repro.obs.trace.SlotTrace` and
        the collector's ``optimizer.audit_*`` counters but never blocks
        the solve; ``"error"`` additionally raises
        :class:`~repro.solvers.base.SolverError` when the audit reports
        an error-severity finding (statically infeasible or mis-scaled
        slot problem), before any solver time is spent.
    certify:
        Run the optimality-certificate verifier
        (:func:`repro.analysis.certify.certify_solution`) on every
        successful solve.  ``"off"`` (default) skips it; ``"warn"``
        records the findings on the emitted
        :class:`~repro.obs.trace.SlotTrace` and the collector's
        ``optimizer.certify_*`` counters but never blocks the plan;
        ``"error"`` additionally raises
        :class:`~repro.solvers.base.SolverError` when a certificate
        check reports an error-severity finding (the claimed-optimal
        solution fails an independent recomputation), before the plan
        is returned.
    """

    level_method: str = "auto"
    formulation: str = "aggregated"
    lp_method: str = "highs"
    milp_method: str = "highs"
    consolidate: bool = False
    apply_pue: bool = False
    use_spare_capacity: bool = True
    deadline_margin: float = 1.0
    percentile_sla: Optional[float] = None
    warm_start: bool = True
    sparse: bool = False
    sparse_block_workers: Optional[int] = None
    collector: Collector = field(default_factory=NullCollector, compare=False)
    fallback: bool = True
    fallback_retries: int = 1
    solver_iteration_budget: Optional[int] = None
    fallback_time_budget: Optional[float] = None
    audit: str = "off"
    certify: str = "off"

    def __post_init__(self) -> None:
        if self.audit not in AUDIT_MODES:
            raise ValueError(
                f"unknown audit mode {self.audit!r}; "
                f"choose from {AUDIT_MODES}"
            )
        if self.certify not in CERTIFY_MODES:
            raise ValueError(
                f"unknown certify mode {self.certify!r}; "
                f"choose from {CERTIFY_MODES}"
            )
        if self.level_method not in LEVEL_METHODS:
            raise ValueError(
                f"unknown level_method {self.level_method!r}; "
                f"choose from {LEVEL_METHODS}"
            )
        if self.formulation not in FORMULATIONS:
            raise ValueError(
                f"unknown formulation {self.formulation!r}; "
                f"choose from {FORMULATIONS}"
            )
        if self.lp_method not in LP_METHODS:
            raise ValueError(
                f"unknown lp_method {self.lp_method!r}; "
                f"choose from {LP_METHODS}"
            )
        if self.milp_method not in MILP_METHODS:
            raise ValueError(
                f"unknown milp_method {self.milp_method!r}; "
                f"choose from {MILP_METHODS}"
            )
        object.__setattr__(self, "deadline_margin", float(self.deadline_margin))
        if not 0.0 < self.deadline_margin <= 1.0:
            raise ValueError(
                f"deadline_margin must be in (0, 1], got {self.deadline_margin}"
            )
        if self.percentile_sla is not None:
            object.__setattr__(
                self, "percentile_sla", float(self.percentile_sla)
            )
            if not 0.0 < self.percentile_sla < 1.0:
                raise ValueError(
                    f"percentile_sla must be in (0, 1), got {self.percentile_sla}"
                )
        object.__setattr__(self, "consolidate", bool(self.consolidate))
        object.__setattr__(self, "apply_pue", bool(self.apply_pue))
        object.__setattr__(
            self, "use_spare_capacity", bool(self.use_spare_capacity)
        )
        object.__setattr__(self, "warm_start", bool(self.warm_start))
        object.__setattr__(self, "sparse", bool(self.sparse))
        if self.sparse_block_workers is not None:
            object.__setattr__(
                self, "sparse_block_workers", int(self.sparse_block_workers)
            )
            if self.sparse_block_workers < 1:
                raise ValueError(
                    "sparse_block_workers must be >= 1, got "
                    f"{self.sparse_block_workers}"
                )
        object.__setattr__(self, "fallback", bool(self.fallback))
        object.__setattr__(self, "fallback_retries", int(self.fallback_retries))
        if self.fallback_retries < 0:
            raise ValueError(
                f"fallback_retries must be >= 0, got {self.fallback_retries}"
            )
        if self.solver_iteration_budget is not None:
            object.__setattr__(
                self, "solver_iteration_budget",
                int(self.solver_iteration_budget),
            )
            if self.solver_iteration_budget < 1:
                raise ValueError(
                    "solver_iteration_budget must be >= 1, got "
                    f"{self.solver_iteration_budget}"
                )
        if self.fallback_time_budget is not None:
            object.__setattr__(
                self, "fallback_time_budget", float(self.fallback_time_budget)
            )
            if not self.fallback_time_budget > 0.0:
                raise ValueError(
                    "fallback_time_budget must be positive, got "
                    f"{self.fallback_time_budget}"
                )

    @property
    def delay_factor(self) -> float:
        """Headroom multiplier implied by ``percentile_sla`` (>= 1)."""
        if self.percentile_sla is None:
            return 1.0
        # eps > 1/e would *weaken* the mean constraint; floor at the
        # paper's mean-delay requirement.
        return max(1.0, float(np.log(1.0 / self.percentile_sla)))

    def replace(self, **changes: object) -> "OptimizerConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)
