"""Server right-sizing: powering off idle servers and consolidating load.

The paper derives the powered-on server count from the dispatch solution
("when there is no workload on a server, the server should be powered
off", §IV) and assumes switching costs are negligible within a slot.

Because the aggregated solver returns *symmetric* solutions (every
server in a data center lightly loaded), a consolidation pass is useful:
it packs each data center's load onto the fewest servers that can still
meet every class's achieved TUF level.  Under the paper's per-request
energy model consolidation is profit-neutral — it only reduces the
powered-on count — which is why it is a separate, optional pass.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.plan import DispatchPlan
from repro.solvers.tolerances import STRICT_TOL

__all__ = ["powered_on_servers", "minimum_servers_for_load", "consolidate_plan"]


def powered_on_servers(plan: DispatchPlan) -> np.ndarray:
    """``(L,)`` powered-on server counts implied by ``plan``; dtype int."""
    return plan.powered_on_per_dc()


def minimum_servers_for_load(
    loads: np.ndarray,
    service_rates: np.ndarray,
    capacity: float,
    deadlines: np.ndarray,
    max_servers: int,
) -> Optional[int]:
    """Fewest homogeneous servers that can host ``loads`` within deadlines.

    Solves for the smallest ``m`` such that shares
    ``phi_k = (loads_k/m + 1/D_k) / (C mu_k)`` exist with
    ``sum_k phi_k <= 1`` (classes with zero load need no share).

    Returns ``None`` when even ``max_servers`` servers are insufficient.
    """
    loads = np.asarray(loads, dtype=float)
    mu = np.asarray(service_rates, dtype=float)
    deadlines = np.asarray(deadlines, dtype=float)
    active = loads > STRICT_TOL
    if not np.any(active):
        return 0
    # Fixed per-server overhead of active classes: sum_k 1/(D_k C mu_k).
    fixed = float(np.sum(1.0 / (deadlines[active] * capacity * mu[active])))
    # Load-dependent part shrinks as 1/m: sum_k loads_k / (C mu_k) / m.
    variable = float(np.sum(loads[active] / (capacity * mu[active])))
    if fixed >= 1.0:
        return None
    m = int(np.ceil(variable / (1.0 - fixed) - STRICT_TOL))
    m = max(m, 1)
    if m > max_servers:
        return None
    return m


def consolidate_plan(plan: DispatchPlan, safety: float = 0.999) -> DispatchPlan:
    """Pack each data center's load onto the fewest feasible servers.

    The consolidated plan preserves each class's *achieved TUF level* in
    every data center: the consolidation deadline per class is the
    sub-deadline of the level its realized delay currently meets, shrunk
    by ``safety`` to keep strict feasibility under float arithmetic.
    Profit is unchanged (per-request energy model); only the powered-on
    server count drops.
    """
    topo = plan.topology
    K, S = topo.num_classes, topo.num_frontends
    N = topo.num_servers
    offsets = topo.server_offsets()
    new_rates = np.zeros((K, S, N))
    new_shares = np.zeros((K, N))
    dc_rates = plan.dc_rates()  # (K, S, L)
    delays = plan.delays()  # (K, N)

    for l, dc in enumerate(topo.datacenters):
        sl = slice(offsets[l], offsets[l + 1])
        loads = dc_rates[:, :, l].sum(axis=1)  # (K,)
        # Deadline each class must keep: the sub-deadline of the level its
        # current worst realized delay achieves in this data center.
        deadlines = np.empty(K)
        for k, rc in enumerate(topo.request_classes):
            dc_delays = delays[k, sl]
            loaded = ~np.isnan(dc_delays)
            if loads[k] <= STRICT_TOL or not np.any(loaded):
                deadlines[k] = rc.deadline
                continue
            worst = float(np.max(dc_delays[loaded]))
            level = rc.tuf.level_for_delay(worst)
            if level < 0:
                # Plan already misses the final deadline here; keep it.
                deadlines[k] = rc.deadline
            else:
                deadlines[k] = float(rc.tuf.deadlines[level])
        m = minimum_servers_for_load(
            loads=loads,
            service_rates=dc.service_rates,
            capacity=dc.server_capacity,
            deadlines=deadlines * safety,
            max_servers=dc.num_servers,
        )
        if m is None:
            # Cannot consolidate without degrading a level: keep as is.
            new_rates[:, :, sl] = plan.rates[:, :, sl]
            new_shares[:, sl] = plan.shares[:, sl]
            continue
        if m == 0:
            continue
        active = slice(offsets[l], offsets[l] + m)
        new_rates[:, :, active] = dc_rates[:, :, l][:, :, None] / m
        for k in range(K):
            if loads[k] <= STRICT_TOL:
                continue
            required = (loads[k] / m + 1.0 / (deadlines[k] * safety)) / (
                dc.server_capacity * dc.service_rates[k]
            )
            new_shares[k, active] = required
        # Hand any spare CPU to active classes proportionally (delays only
        # improve, so achieved levels are preserved).
        for n in range(offsets[l], offsets[l] + m):
            total = new_shares[:, n].sum()
            if 0 < total < 1.0:
                active_k = new_shares[:, n] > 0
                new_shares[active_k, n] *= 1.0 / total
    return DispatchPlan(topology=topo, rates=new_rates, shares=new_shares)
