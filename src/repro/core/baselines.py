"""Baseline dispatchers.

* :class:`BalancedDispatcher` — the paper's "Balanced" comparison
  (§V-A): static even resource allocation (each server's CPU split
  evenly across the ``K`` request types) and price-greedy dispatching —
  every front-end fills the data center with the lowest current
  electricity price first, then the next cheapest, until capacity runs
  out; leftovers are dropped.
* :class:`EvenSplitDispatcher` — a naive spread-everything baseline used
  in ablations: every front-end splits each class evenly over all
  servers, subject to the same admission cap.

Both produce :class:`~repro.core.plan.DispatchPlan` objects scored by
the same :func:`~repro.core.objective.evaluate_plan` as the optimizer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cloud.topology import CloudTopology
from repro.core.formulation import DEADLINE_SAFETY
from repro.core.plan import DispatchPlan
from repro.queueing.mm1 import mm1_max_rate
from repro.utils.validation import check_nonnegative

__all__ = ["BalancedDispatcher", "EvenSplitDispatcher"]


def _admission_deadlines(topology: CloudTopology, level: Optional[int]) -> np.ndarray:
    """Per-class deadline used as the admission cutoff.

    ``level=None`` uses each class's final deadline ``D_k`` (fill as much
    as possible — any met sub-level still earns utility); an explicit
    ``level`` targets that sub-deadline instead.  Deadlines carry the
    same tiny safety shrink as the optimizer's formulation so realized
    delays never float past the TUF cliff.
    """
    out = np.empty(topology.num_classes)
    for k, rc in enumerate(topology.request_classes):
        if level is None:
            out[k] = rc.deadline
        else:
            deadlines = rc.tuf.deadlines
            q = min(level, deadlines.size - 1)
            out[k] = float(deadlines[q])
    return out * (1.0 - DEADLINE_SAFETY)


class BalancedDispatcher:
    """The paper's static price-greedy baseline ("Balanced").

    Parameters
    ----------
    topology:
        The static system.
    admission_level:
        TUF level whose sub-deadline caps per-server admission
        (``None`` = the final deadline, the most permissive choice).
    """

    name = "balanced"

    def __init__(
        self, topology: CloudTopology, admission_level: Optional[int] = None
    ) -> None:
        self.topology = topology
        self._deadlines = _admission_deadlines(topology, admission_level)
        K = topology.num_classes
        # Static even allocation: phi = 1/K on every server.
        self._share = 1.0 / K
        # Admissible per-server rate per (k, l): max(0, (1/K) C mu - 1/D).
        mu = topology.service_rates  # (K, L)
        cap = topology.server_capacities  # (L,)
        self._per_server_cap = mm1_max_rate(
            self._share * cap[None, :] * mu, self._deadlines[:, None]
        )  # (K, L)

    def plan_slot(
        self,
        arrivals: np.ndarray,
        prices: np.ndarray,
        slot_duration: float = 1.0,
    ) -> DispatchPlan:
        """Build the Balanced plan for one slot.

        Front-ends are processed in index order; each fills data centers
        in ascending electricity-price order within the per-class
        admission capacity.  Loads assigned to a data center are spread
        evenly over its servers (the "balanced" allocation).
        """
        topo = self.topology
        arrivals = check_nonnegative(arrivals, "arrivals")
        prices = check_nonnegative(prices, "prices")
        K, S, L = topo.num_classes, topo.num_frontends, topo.num_datacenters
        if arrivals.shape != (K, S):
            raise ValueError(f"arrivals must have shape {(K, S)}")
        if prices.shape != (L,):
            raise ValueError(f"prices must have shape {(L,)}")

        M = topo.servers_per_datacenter
        remaining = self._per_server_cap * M[None, :]  # (K, L) DC capacity left
        assigned = np.zeros((K, S, L))
        order = np.argsort(prices, kind="stable")
        for s in range(S):
            for k in range(K):
                need = float(arrivals[k, s])
                for l in order:
                    if need <= 0:
                        break
                    take = min(need, float(remaining[k, l]))
                    if take > 0:
                        assigned[k, s, l] += take
                        remaining[k, l] -= take
                        need -= take
                # Any residual need is dropped.

        return self._expand(assigned)

    def _expand(self, assigned: np.ndarray) -> DispatchPlan:
        """Spread per-DC assignments evenly over each DC's servers."""
        topo = self.topology
        K, S = topo.num_classes, topo.num_frontends
        N = topo.num_servers
        rates = np.zeros((K, S, N))
        shares = np.full((K, N), self._share)
        offsets = topo.server_offsets()
        for l, dc in enumerate(topo.datacenters):
            sl = slice(offsets[l], offsets[l + 1])
            # A right-sized DC can hold zero servers; its slice is then
            # empty, so the max() floor never changes a written value.
            rates[:, :, sl] = (
                assigned[:, :, l][:, :, None] / max(dc.num_servers, 1)
            )
        return DispatchPlan(topology=topo, rates=rates, shares=shares)


class EvenSplitDispatcher:
    """Naive baseline: split every class evenly across all servers.

    Ignores prices entirely; subject to the same per-server admission
    cap as Balanced (excess is dropped proportionally).
    """

    name = "even_split"

    def __init__(
        self, topology: CloudTopology, admission_level: Optional[int] = None
    ) -> None:
        self.topology = topology
        self._deadlines = _admission_deadlines(topology, admission_level)
        K = topology.num_classes
        self._share = 1.0 / K
        mu = topology.service_rates
        cap = topology.server_capacities
        self._per_server_cap = mm1_max_rate(
            self._share * cap[None, :] * mu, self._deadlines[:, None]
        )  # (K, L)

    def plan_slot(
        self,
        arrivals: np.ndarray,
        prices: np.ndarray,
        slot_duration: float = 1.0,
    ) -> DispatchPlan:
        """Build the even-split plan (prices are ignored by design)."""
        topo = self.topology
        arrivals = check_nonnegative(arrivals, "arrivals")
        K, S, L = topo.num_classes, topo.num_frontends, topo.num_datacenters
        if arrivals.shape != (K, S):
            raise ValueError(f"arrivals must have shape {(K, S)}")
        N = topo.num_servers
        offsets = topo.server_offsets()
        dc_of = np.empty(N, dtype=int)
        for l in range(L):
            dc_of[offsets[l]:offsets[l + 1]] = l

        rates = np.zeros((K, S, N))
        shares = np.full((K, N), self._share)
        per_server_cap = self._per_server_cap[:, dc_of]  # (K, N)
        for k in range(K):
            total = float(arrivals[k].sum())
            if total <= 0:
                continue
            even = total / N
            server_loads = np.minimum(even, per_server_cap[k])  # (N,)
            admitted = float(server_loads.sum())
            if admitted <= 0:
                continue
            # Attribute admitted load back to front-ends proportionally.
            weights = arrivals[k] / total  # (S,)
            rates[k] = weights[:, None] * server_loads[None, :]
        return DispatchPlan(topology=topo, rates=rates, shares=shares)
