"""The pre-refactor object-based DES engine, kept as an oracle.

This is the engine exactly as it shipped before the array-backed heap
refactor in :mod:`repro.des.engine`: one ordered dataclass per event,
popped and compared through the dataclass dunders.  It is *not* used by
any production path — it exists so that

* the property suite (``tests/test_property_des.py``) can replay
  randomized schedule/cancel/step/run sequences against both engines
  and assert identical event ordering, clock values, and
  ``events_processed`` counts, and
* the ``des_million`` benchmark scenario can measure the refactor's
  speedup against the original implementation on the same workload and
  record it in ``BENCH_des_million.json``.

Behavioural contract (shared with :class:`repro.des.engine.Engine`):
events fire in ``(time, seq)`` order with ``seq`` assigned in schedule
order; cancelled events are skipped without counting as processed;
``run_until`` leaves the clock at the horizon unless ``max_events``
stops it early; ``pending`` counts cancelled-but-unpopped entries.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

__all__ = ["ReferenceEngine", "ReferenceEvent"]


@dataclass(order=True)
class ReferenceEvent:
    """A scheduled callback, ordered by ``(time, seq)`` (pre-refactor)."""

    time: float
    seq: int
    action: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; the engine will skip it."""
        self.cancelled = True


class ReferenceEngine:
    """Deterministic event-driven simulator core (pre-refactor)."""

    def __init__(self) -> None:
        self._heap: List[ReferenceEvent] = []
        self._now = 0.0
        self._seq = 0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still scheduled (including cancelled)."""
        return len(self._heap)

    def schedule(self, delay: float, action: Callable[[], Any]) -> ReferenceEvent:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = ReferenceEvent(time=self._now + delay, seq=self._seq, action=action)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def defer(self, delay: float, action: Callable[[], Any]) -> None:
        """Drop-in for :meth:`repro.des.engine.Engine.defer` (no fast path)."""
        self.schedule(delay, action)

    def schedule_at(self, time: float, action: Callable[[], Any]) -> ReferenceEvent:
        """Schedule ``action`` at absolute simulated time ``time``."""
        return self.schedule(time - self._now, action)

    def step(self) -> bool:
        """Execute the next non-cancelled event.  Returns False if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.action()
            self._processed += 1
            return True
        return False

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> None:
        """Run events with time <= ``end_time``.

        The clock is left at ``end_time`` (or at the last event if
        ``max_events`` stops the run early).
        """
        executed = 0
        while self._heap:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if event.time > end_time:
                break
            if max_events is not None and executed >= max_events:
                return
            heapq.heappop(self._heap)
            self._now = event.time
            event.action()
            self._processed += 1
            executed += 1
        self._now = max(self._now, end_time)

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the event heap drains (or ``max_events``)."""
        executed = 0
        while self.step():
            executed += 1
            if max_events is not None and executed >= max_events:
                return
